"""Quickstart: schema cast validation in five steps.

The scenario from the paper's introduction: a document is known valid
against one version of a purchase-order schema and must be checked
against another version whose ``billTo`` element is required instead of
optional.

Run:  python examples/quickstart.py
"""

from repro import CastValidator, SchemaPair, parse, parse_xsd

SOURCE_XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="Address"/>
      <xsd:element name="billTo" type="Address" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string"
                   minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

# The target schema differs in exactly one place: billTo is required.
TARGET_XSD = SOURCE_XSD.replace(' minOccurs="0"/>', "/>", 1)

DOCUMENT_WITH_BILLTO = """
<purchaseOrder>
  <shipTo><name>Alice</name><street>1 Main St</street></shipTo>
  <billTo><name>Bob</name><street>2 Oak Ave</street></billTo>
  <items><item>lawnmower</item><item>rake</item></items>
</purchaseOrder>
"""

DOCUMENT_WITHOUT_BILLTO = """
<purchaseOrder>
  <shipTo><name>Alice</name><street>1 Main St</street></shipTo>
  <items><item>lawnmower</item></items>
</purchaseOrder>
"""


def main() -> None:
    # 1. Parse both schemas (static, done once).
    source = parse_xsd(SOURCE_XSD, name="po-v1")
    target = parse_xsd(TARGET_XSD, name="po-v2")

    # 2. Preprocess the pair: subsumption + disjointness + automata.
    pair = SchemaPair(source, target)
    print(f"preprocessed pair: {pair}")
    print(f"  Address type unchanged -> subsumed: "
          f"{pair.is_subsumed('Address', 'Address')}")
    print(f"  POType changed        -> subsumed: "
          f"{pair.is_subsumed('POType', 'POType')}")

    # 3. Build the cast validator (reusable across documents).
    validator = CastValidator(pair)

    # 4. Revalidate documents known to conform to the source schema.
    for label, text in [
        ("with billTo", DOCUMENT_WITH_BILLTO),
        ("without billTo", DOCUMENT_WITHOUT_BILLTO),
    ]:
        report = validator.validate(parse(text))
        verdict = "VALID" if report.valid else f"INVALID ({report.reason})"
        print(f"\ndocument {label}: {verdict}")
        # 5. Inspect how little work the cast validator did.
        stats = report.stats
        print(f"  nodes visited:        {stats.nodes_visited}")
        print(f"  subtrees skipped:     {stats.subtrees_skipped}")
        print(f"  content symbols read: {stats.content_symbols_scanned}")


if __name__ == "__main__":
    main()
