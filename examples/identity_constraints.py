"""Identity constraints: keys and references across a schema cast.

An order document must satisfy structural validity *and* referential
integrity: every line item references a declared product SKU, and SKUs
are unique.  The structural cast validator handles the former; the
identity pass (the paper's Section 7 extension) the latter.

Run:  python examples/identity_constraints.py
"""

from repro import parse, parse_xsd
from repro.schema import check_identity, validate_with_constraints

SCHEMA = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="order" type="Order">
    <xsd:key name="productKey">
      <xsd:selector xpath="products/product"/>
      <xsd:field xpath="@sku"/>
    </xsd:key>
    <xsd:keyref name="lineProduct" refer="productKey">
      <xsd:selector xpath="lines/line"/>
      <xsd:field xpath="@product"/>
    </xsd:keyref>
  </xsd:element>
  <xsd:complexType name="Order"><xsd:sequence>
    <xsd:element name="products" type="Products"/>
    <xsd:element name="lines" type="Lines"/>
  </xsd:sequence></xsd:complexType>
  <xsd:complexType name="Products"><xsd:sequence>
    <xsd:element name="product" type="xsd:string"
                 minOccurs="1" maxOccurs="unbounded"/>
  </xsd:sequence></xsd:complexType>
  <xsd:complexType name="Lines"><xsd:sequence>
    <xsd:element name="line" type="xsd:string"
                 minOccurs="0" maxOccurs="unbounded"/>
  </xsd:sequence></xsd:complexType>
</xsd:schema>
"""

DOCUMENTS = {
    "consistent order": """
      <order>
        <products>
          <product sku="SKU-1">Lawnmower</product>
          <product sku="SKU-2">Rake</product>
        </products>
        <lines>
          <line product="SKU-1">2 units</line>
          <line product="SKU-2">1 unit</line>
        </lines>
      </order>
    """,
    "duplicate SKU": """
      <order>
        <products>
          <product sku="SKU-1">Lawnmower</product>
          <product sku="SKU-1">Rake</product>
        </products>
        <lines/>
      </order>
    """,
    "dangling reference": """
      <order>
        <products><product sku="SKU-1">Lawnmower</product></products>
        <lines><line product="SKU-9">ghost</line></lines>
      </order>
    """,
}


def main() -> None:
    schema = parse_xsd(SCHEMA, name="orders")
    declared = [
        f"{c.kind} {c.name}" for cs in schema.identity.values() for c in cs
    ]
    print(f"constraints declared on <order>: {declared}\n")

    for name, text in DOCUMENTS.items():
        document = parse(text)
        combined = validate_with_constraints(schema, document)
        print(f"{name}:")
        if combined.valid:
            print("  structurally valid, constraints satisfied")
        else:
            # Distinguish the failing layer for the log.
            identity_only = check_identity(schema.identity, document)
            layer = "identity" if not identity_only.valid else "structure"
            print(f"  REJECTED ({layer}): {combined.reason}")
        print()


if __name__ == "__main__":
    main()
