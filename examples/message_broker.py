"""Message-broker scenario (the paper's motivating deployment).

A broker receives order messages guaranteed valid against a partner's
published schema and must enforce its own internal schema before
forwarding.  The partner/internal schemas differ in two places:

* the internal schema requires ``billTo`` (partner: optional);
* the internal schema caps ``quantity`` below 100 (partner: below 200).

The broker preprocesses the schema pair once, then revalidates a stream
of messages, skipping everything the subsumption relation guarantees.
A Xerces-style full validator processes the same stream for comparison.

Run:  python examples/message_broker.py
"""

import random
import time

from repro import CastValidator, SchemaPair
from repro.baselines.full import FullValidator
from repro.workloads.purchase_orders import (
    make_purchase_order,
    purchase_order_schema,
)


def build_message_stream(count: int, seed: int = 7):
    """A mix of conforming and non-conforming partner messages."""
    rng = random.Random(seed)
    stream = []
    for i in range(count):
        kind = rng.random()
        if kind < 0.70:
            # Fine: billTo present, quantities < 100.
            doc = make_purchase_order(rng.randint(1, 30))
            expected = True
        elif kind < 0.85:
            # Partner-legal but violates our quantity cap.
            doc = make_purchase_order(
                rng.randint(1, 30),
                quantity_of=lambda i: rng.randint(100, 199),
            )
            expected = False
        else:
            # Partner-legal but no billTo.
            doc = make_purchase_order(rng.randint(1, 30),
                                      with_billto=False)
            expected = False
        stream.append((doc, expected))
    return stream


def main() -> None:
    partner = purchase_order_schema(
        billto_optional=True, quantity_max_exclusive=200, name="partner"
    )
    internal = purchase_order_schema(
        billto_optional=False, quantity_max_exclusive=100, name="internal"
    )

    print("preprocessing partner -> internal schema pair...")
    start = time.perf_counter()
    pair = SchemaPair(partner, internal)
    pair.warm()
    print(f"  done in {(time.perf_counter() - start) * 1e3:.1f} ms "
          f"(|R_sub|={len(pair.r_sub)}, |R_nondis|={len(pair.r_nondis)})")

    stream = build_message_stream(200)
    cast = CastValidator(pair)
    full = FullValidator(internal)

    for name, validator in [("schema cast", cast), ("full Xerces-style",
                                                    full)]:
        accepted = rejected = nodes = 0
        start = time.perf_counter()
        for doc, expected in stream:
            report = validator.validate(doc)
            assert report.valid == expected, report.reason
            nodes += report.stats.nodes_visited
            if report.valid:
                accepted += 1
            else:
                rejected += 1
        elapsed = (time.perf_counter() - start) * 1e3
        print(
            f"\n{name} validator: {accepted} forwarded, "
            f"{rejected} bounced"
        )
        print(f"  total time:    {elapsed:8.1f} ms")
        print(f"  nodes visited: {nodes:8d}")


if __name__ == "__main__":
    main()
