"""Section 4 standalone: revalidating strings against DFAs.

The content-model machinery is useful on its own — e.g. revalidating an
event sequence against a protocol grammar after edits.  This example
shows the immediate decision automaton deciding early, and the
forward/reverse strategy choice for modified strings.

Run:  python examples/string_revalidation.py
"""

from repro import StringCastValidator, StringUpdateRevalidator, Strategy
from repro.remodel import compile_dfa, parse_content_model


def show(result, label):
    verdict = "ACCEPT" if result.accepted else "REJECT"
    print(f"  {label:34s} {verdict:6s} after {result.symbols_scanned:4d} "
          f"symbols ({result.decision.value}, {result.strategy.value})")


def main() -> None:
    alphabet = frozenset("abcde")

    print("schema cast without modifications")
    print("  source grammar: a,(b|c)*,d    target grammar: a,(b|c)*,(d|e)")
    source = compile_dfa(parse_content_model("a,(b|c)*,d"), alphabet)
    target = compile_dfa(parse_content_model("a,(b|c)*,(d|e)"), alphabet)
    validator = StringCastValidator(source, target)
    word = ["a"] + ["b", "c"] * 500 + ["d"]
    result = validator.validate(word)
    show(result, f"{len(word)}-symbol source word")
    print("  (the target accepts every source word: decided instantly)")

    print("\nsingle-grammar update revalidation: a,(a|b)*,b")
    grammar = compile_dfa(parse_content_model("a,(a|b)*,b"), frozenset("ab"))
    revalidator = StringUpdateRevalidator(grammar)
    original = ["a"] + ["a", "b"] * 1000 + ["b"]

    edited_front = list(original)
    edited_front[1] = "b"
    show(revalidator.revalidate(original, edited_front), "flip near the front")

    edited_back = list(original)
    edited_back[-2] = "a"
    show(revalidator.revalidate(original, edited_back), "flip near the back")

    appended = original + ["a"]  # now ends in a: invalid
    show(revalidator.revalidate(original, appended), "append one symbol")

    truncated = original[:-1]
    show(revalidator.revalidate(original, truncated), "drop the last symbol")

    print("\nforcing strategies on the front flip:")
    for strategy in (Strategy.FORWARD, Strategy.REVERSE, Strategy.PLAIN):
        result = revalidator.validate_modified(
            original, edited_front, strategy=strategy
        )
        show(result, f"strategy={strategy.value}")


if __name__ == "__main__":
    main()
