"""Schema evolution audit: which archived documents survive a version
bump, and why do the failures fail?

A catalogue DTD evolves across three versions; the archive holds
documents valid under v1.  For each target version we preprocess the
(v1, vN) pair once and replay the archive through the cast validator,
classifying failures by reason.  The disjointness relation gives
fail-fast answers; the subsumption relation lets whole entries be
skipped.

Run:  python examples/schema_evolution.py
"""

import random

from repro import CastValidator, SchemaPair, parse_dtd
from repro.workloads.generators import sample_document

V1 = """
<!ELEMENT catalog (product*)>
<!ELEMENT product (title, price, description?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)>
"""

# v2: description becomes mandatory.
V2 = V1.replace("description?", "description")

# v3: products gain an optional sku, and at least one product required.
V3 = """
<!ELEMENT catalog (product+)>
<!ELEMENT product (title, price, description, sku?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT sku (#PCDATA)>
"""


def build_archive(schema, count: int = 60, seed: int = 5):
    rng = random.Random(seed)
    archive = []
    while len(archive) < count:
        doc = sample_document(rng, schema, max_depth=5)
        if doc is not None and doc.root.label == "catalog":
            archive.append(doc)
    return archive


def main() -> None:
    v1 = parse_dtd(V1, roots=["catalog"], name="catalog-v1")
    archive = build_archive(v1)
    print(f"archive: {len(archive)} documents valid under catalog-v1\n")

    for version, text in [("v2", V2), ("v3", V3)]:
        target = parse_dtd(text, roots=["catalog"], name=f"catalog-{version}")
        pair = SchemaPair(v1, target)
        validator = CastValidator(pair)
        survivors = 0
        reasons: dict[str, int] = {}
        nodes = 0
        for doc in archive:
            report = validator.validate(doc)
            nodes += report.stats.nodes_visited
            if report.valid:
                survivors += 1
            else:
                key = report.reason.split(" of type")[0]
                reasons[key] = reasons.get(key, 0) + 1
        print(f"migrating v1 -> {version}:")
        print(f"  unchanged-type pairs skipped outright: "
              f"{sorted(t for t, u in pair.r_sub if t == u)}")
        print(f"  {survivors}/{len(archive)} documents survive; "
              f"{nodes} nodes examined in total")
        for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
            print(f"    {count:3d} x {reason}")
        print()


if __name__ == "__main__":
    main()
