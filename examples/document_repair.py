"""Automatic document correction (the paper's Section 7 future work).

A batch of purchase orders valid under the old schema (billTo optional,
quantities < 200) must be migrated to the new one (billTo required,
quantities < 100).  Instead of merely rejecting non-conforming
documents, the repairer produces minimally edited conforming versions
and an audit trail of what it changed.

Run:  python examples/document_repair.py
"""

from repro import DocumentRepairer, SchemaPair, serialize, validate_document
from repro.workloads.purchase_orders import (
    make_purchase_order,
    purchase_order_schema,
)


def main() -> None:
    old = purchase_order_schema(
        billto_optional=True, quantity_max_exclusive=200, name="po-old"
    )
    new = purchase_order_schema(
        billto_optional=False, quantity_max_exclusive=100, name="po-new"
    )
    pair = SchemaPair(old, new)
    repairer = DocumentRepairer(pair)

    batch = {
        "conforming": make_purchase_order(3),
        "missing billTo": make_purchase_order(3, with_billto=False),
        "oversized quantities": make_purchase_order(
            3, quantity_of=lambda i: 120 + i * 10
        ),
        "both problems": make_purchase_order(
            2, with_billto=False, quantity_of=lambda i: 199
        ),
    }

    for name, document in batch.items():
        assert validate_document(old, document).valid
        result = repairer.repair(document)
        print(f"{name}:")
        if not result.changed:
            print("  no repairs needed")
        for action in result.actions:
            print(f"  {action}")
        assert result.verification.valid
        print(f"  -> target-valid: {result.verification.valid}\n")

    print("repaired 'both problems' document:")
    result = repairer.repair(batch["both problems"])
    print(serialize(result.document, indent="  "))


if __name__ == "__main__":
    main()
