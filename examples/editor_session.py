"""Schema cast with modifications: an XML editing session.

The XJ-compiler scenario from the paper: a program holds a document
valid against schema A, edits it, and must cast the result to schema B
without revalidating from scratch.  The update session records the Δ
encoding of Section 3.3; the validator revalidates only what the
``modified`` trie says changed, falling back to the plain schema cast
for untouched subtrees.

Run:  python examples/editor_session.py
"""

from repro import (
    CastWithModificationsValidator,
    SchemaPair,
    UpdateSession,
)
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment1,
    target_schema_experiment1,
)


def describe(session: UpdateSession) -> None:
    root = session.document.root
    deltas = []
    for element in root.iter():
        for node in [element, *element.children]:
            delta = session.delta(node)
            if delta is not None:
                old = delta.old if delta.old is not None else "ε"
                new = delta.new if delta.new is not None else "ε"
                deltas.append(f"    Δ^{old}_{new} at {node.dewey()}")
    print(f"  {session.update_count} updates recorded:")
    seen = set()
    for line in deltas:
        if line not in seen:
            seen.add(line)
            print(line)


def main() -> None:
    source = source_schema_experiment1()  # billTo optional
    target = target_schema_experiment1()  # billTo required
    pair = SchemaPair(source, target)
    validator = CastWithModificationsValidator(pair)

    # Start from a 50-item order with no billTo: valid under A only.
    doc = make_purchase_order(50, with_billto=False)
    session = UpdateSession(doc)

    print("cast before any edits:")
    report = validator.validate(session)
    print(f"  {'VALID' if report.valid else 'INVALID'} — {report.reason}")

    print("\nedit 1: insert an empty billTo after shipTo")
    billto = session.insert_after(doc.root.find("shipTo"), "billTo")
    report = validator.validate(session)
    print(f"  {'VALID' if report.valid else 'INVALID'} — {report.reason}")

    print("\nedit 2: fill in the billTo address")
    for label, value in [
        ("name", "Robert Smith"), ("street", "8 Oak Avenue"),
        ("city", "Old Town"), ("state", "PA"),
        ("zip", "95819"), ("country", "US"),
    ]:
        field = session.insert_element(billto, len(billto.children), label)
        session.insert_text(field, 0, value)
    report = validator.validate(session)
    print(f"  {'VALID' if report.valid else 'INVALID'}")
    print(f"  nodes visited: {report.stats.nodes_visited} "
          f"(document has {doc.size()} nodes — untouched items skipped)")
    describe(session)

    print("\nedit 3: delete the zip and recheck")
    zipcode = billto.find("zip")
    session.delete(zipcode.children[0])
    session.delete(zipcode)
    report = validator.validate(session)
    print(f"  {'VALID' if report.valid else 'INVALID'} — {report.reason}")

    print("\nmaterializing the final document (tombstones dropped):")
    result = session.result_document()
    labels = [child.label for child in result.root.find("billTo").children]
    print(f"  billTo children: {labels}")


if __name__ == "__main__":
    main()
