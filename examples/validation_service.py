"""The validation HTTP service end to end, from plain Python.

Boots ``repro.service`` in-process on an ephemeral port (the library
form of ``python -m repro serve --demo``) and walks the whole service
contract with a stdlib ``urllib`` client:

1. ``readyz`` flips once the schema pairs are warmed;
2. ``/pairs`` lists names, content fingerprints, and budgets;
3. ``/validate`` and ``/cast`` return verdicts with lint-style
   diagnostics — an *invalid* document is a 200 verdict, not an error;
4. ``/cast-with-mods`` applies a Dewey-addressed JSON edit script
   before the Section 3.3 revalidation;
5. adversarial requests get typed statuses (404, 400, 413), never a
   bare 500;
6. hot pair reload: a second pair registered through
   ``POST /admin/pairs`` on the *running* server serves traffic
   immediately, then is retired with ``DELETE`` — no restart;
7. a graceful drain finishes in-flight work and refuses the rest.

Run:  python examples/validation_service.py
"""

import json
import urllib.error
import urllib.request

from repro.service import (
    ServiceConfig,
    ServiceRegistry,
    ValidationService,
    demo_specs,
)
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize


def request(base, method, path, payload=None):
    """Tiny JSON client; returns (status, decoded body)."""
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main():
    # -- boot: registry of the paper's two purchase-order pairs --------
    registry = ServiceRegistry(demo_specs())
    service = ValidationService(registry, ServiceConfig(max_concurrent=4))
    host, port = service.start()          # port 0 -> ephemeral
    base = f"http://{host}:{port}"
    print(f"service listening on {base}")

    service.wait_ready(timeout=30.0)
    status, body = request(base, "GET", "/readyz")
    print(f"readyz -> {status}: {body['pairs']} pairs warmed")

    status, body = request(base, "GET", "/pairs")
    for pair in body["pairs"]:
        print(f"  pair {pair['name']}  fingerprint {pair['fingerprint'][:16]}…")

    # -- verdicts -------------------------------------------------------
    order = serialize(make_purchase_order(5))
    status, body = request(base, "POST", "/validate", {
        "pair": "po-exp1", "schema": "source", "xml": order,
    })
    print(f"validate -> {status}: valid={body['valid']} "
          f"({body['elapsed_ms']}ms)")

    # billTo missing: legal under exp1's source, rejected by its target.
    bad_order = serialize(make_purchase_order(5, with_billto=False))
    status, body = request(base, "POST", "/cast", {
        "pair": "po-exp1", "xml": bad_order,
    })
    print(f"cast (no billTo) -> {status}: valid={body['valid']}")
    for diagnostic in body["diagnostics"]:
        print(f"  [{diagnostic['code']}] {diagnostic['message']}")

    # -- cast with modifications ---------------------------------------
    # Dewey path 2.0.0.0: items -> first item -> productName -> text.
    status, body = request(base, "POST", "/cast-with-mods", {
        "pair": "po-exp2",
        "xml": order,
        "mods": [
            {"op": "replace-text", "path": "2.0.0.0",
             "value": "Lawnmower model 7"},
        ],
    })
    print(f"cast-with-mods -> {status}: valid={body['valid']}, "
          f"{body['mods_applied']} mod(s) applied")

    # -- typed errors ---------------------------------------------------
    for label, payload in [
        ("unknown pair", {"pair": "ghost", "xml": order}),
        ("broken XML", {"pair": "po-exp1", "xml": "<open"}),
        ("missing fields", {}),
    ]:
        status, body = request(base, "POST", "/validate", payload)
        print(f"{label} -> {status} [{body['error']['code']}]")

    # -- hot pair reload ------------------------------------------------
    # Register a brand-new pair on the RUNNING server: inline DTD text,
    # compiled on the spot, serving traffic the moment 201 comes back.
    note_dtd = "<!ELEMENT note (#PCDATA)>"
    memo_dtd = "<!ELEMENT note (line+)>\n<!ELEMENT line (#PCDATA)>"
    status, body = request(base, "POST", "/admin/pairs", {
        "name": "note-v1",
        "source_text": note_dtd, "source_kind": "dtd",
        "target_text": note_dtd, "target_kind": "dtd",
    })
    print(f"admin register -> {status}: created={body['created']} "
          f"generation={body['generation']}")
    hot_fingerprint = body["fingerprint"]

    status, body = request(base, "POST", "/validate", {
        "pair": "note-v1", "schema": "source",
        "xml": "<note>ship friday</note>",
    })
    print(f"validate against hot pair -> {status}: valid={body['valid']}")

    # Re-registering identical content is idempotent (200, not 409)…
    status, body = request(base, "POST", "/admin/pairs", {
        "name": "note-v1",
        "source_text": note_dtd, "source_kind": "dtd",
        "target_text": note_dtd, "target_kind": "dtd",
    })
    print(f"re-register same content -> {status}: created={body['created']}")

    # …but the same name with DIFFERENT content is a typed conflict.
    status, body = request(base, "POST", "/admin/pairs", {
        "name": "note-v1",
        "source_text": note_dtd, "source_kind": "dtd",
        "target_text": memo_dtd, "target_kind": "dtd",
    })
    print(f"conflicting register -> {status} [{body['error']['code']}]")

    # Retire by name or fingerprint; the pair vanishes from routing.
    status, body = request(
        base, "DELETE", f"/admin/pairs/{hot_fingerprint}"
    )
    print(f"admin retire -> {status}: retired={body['retired']}")
    status, body = request(base, "POST", "/validate", {
        "pair": "note-v1", "schema": "source", "xml": "<note>x</note>",
    })
    print(f"validate after retire -> {status} [{body['error']['code']}]")

    # -- graceful drain -------------------------------------------------
    service.begin_drain()
    service.drain(timeout=10.0)
    stats = service.admission.stats
    print(f"drained: admitted={stats.admitted} "
          f"completed={stats.completed} (zero lost)")


if __name__ == "__main__":
    main()
