"""Byte-level skip-scan: streaming-cast speedup from never tokenizing
subsumed subtrees.

Two corpora, both purchase orders (Section 6 of the paper):

1. **subsumption-heavy** — the Experiment-1 pair (billTo optional →
   required): every address and the whole ``items`` subtree sit under
   subsumed ``(τ, τ')`` pairs, so byte-skimming covers almost the whole
   document.  Gate: the skip-scan streaming cast must be **≥ 3×** the
   event-level streaming cast (``validate_text_events`` — the pipeline
   this gate was calibrated against when skip-scan landed; the fused
   kernel has its own gate in ``bench_parse.py``) end to end.  The
   fused kernel's no-skip time is measured alongside, so the *marginal*
   value of skipping stays visible: the hardened skim must still beat
   it, and the trusted byte-search variant (the paper's source-validity
   premise) must beat it **≥ 3×**.
2. **zero-subsumption** — the Experiment-2 source against a target
   whose every leaf simple type is strictly tightened
   (:func:`target_schema_zero_subsumption`), so ``R_sub`` is empty over
   the reachable pairs and *nothing* can be skipped.  Gate: the
   skip-scan path must stay within **10 %** of the event path (ratio
   ≥ 0.90) — the pull-parser channel may not tax corpora it cannot
   help.

Before timing anything, every benchmark document is cross-checked
against the char-level reference pipeline
(:mod:`repro.xmltree.reference`): token streams must match
token-for-token, and the DOM cast on the reference parse, the
event-level streaming cast, the skip-scan cast, and the trusted
skip-scan cast must all agree on the verdict.  The zero-subsumption
run additionally asserts ``subtrees_skipped == 0`` (the corpus really
is skip-free) and the heavy run asserts byte skips actually happened.

Records merge into ``BENCH_cast.json`` at the repo root via
:func:`repro.bench.reporting.update_bench_json`.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_stream_skip.py [--quick]

``--quick`` shrinks the corpora for CI and relaxes the floors to 1.5x
(heavy) / 0.80 (zero-subsumption); the full run enforces the
acceptance thresholds: heavy >= 3.0x, zero-subsumption ratio >= 0.90.
Exit status 1 if any check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.bench.reporting import update_bench_json
from repro.core.cast import CastValidator
from repro.core.streaming import StreamingCastValidator
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment1,
    source_schema_zero_subsumption,
    target_schema_experiment1,
    target_schema_zero_subsumption,
)
from repro.xmltree.lexer import iter_tokens
from repro.xmltree.reference import reference_parse, reference_tokens
from repro.xmltree.serializer import serialize

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(pair: SchemaPair, texts: list[str]) -> None:
    """Refuse to publish numbers for pipelines that disagree.

    Token streams must match the char-level reference lexer exactly,
    and the verdict must be identical across the DOM cast on the
    reference parse, the event-level streaming cast, the skip-scan
    cast, and the trusted skip-scan cast, for every corpus document.
    """
    dom = CastValidator(pair, collect_stats=False)
    streaming = StreamingCastValidator(pair)
    for text in texts:
        assert list(reference_tokens(text)) == list(iter_tokens(text)), (
            "token streams diverged from the reference lexer"
        )
        reference_verdict = dom.validate(reference_parse(text))
        event = streaming.validate_text(text)
        skim = streaming.validate_text(text, byte_skip=True)
        trusted = streaming.validate_text(text, byte_skip=True,
                                          trusted=True)
        verdicts = {
            report.valid
            for report in (reference_verdict, event, skim, trusted)
        }
        assert len(verdicts) == 1, "cast verdicts diverged across modes"
        assert (skim.valid, skim.reason, skim.path) == (
            event.valid,
            event.reason,
            event.path,
        ), "skip-scan report diverged from the event-level cast"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run with relaxed floors "
        "(heavy >= 1.5x, zero-subsumption ratio >= 0.80)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        items, reps = 150, 5
        heavy_floor, parity_floor = 1.5, 0.80
    else:
        items, reps = 800, 10
        heavy_floor, parity_floor = 3.0, 0.90

    heavy_pair = SchemaPair(
        source_schema_experiment1(), target_schema_experiment1()
    )
    heavy_pair.warm()
    zero_pair = SchemaPair(
        source_schema_zero_subsumption(), target_schema_zero_subsumption()
    )
    zero_pair.warm()

    text = serialize(make_purchase_order(items), indent="  ")
    small = serialize(make_purchase_order(max(2, items // 50)), indent="  ")
    corpus_bytes = len(text.encode("utf-8"))
    mb = corpus_bytes / 1e6
    check_equivalence(heavy_pair, [text, small])
    check_equivalence(zero_pair, [text, small])

    # The corpora must be what they claim: the heavy pair byte-skips
    # subtrees, the zero pair skips nothing at all.
    heavy_stats = StreamingCastValidator(heavy_pair).validate_text(
        text, byte_skip=True
    ).stats
    assert heavy_stats.subtrees_byte_skipped > 0, (
        "subsumption-heavy corpus produced no byte skips"
    )
    zero_stats = StreamingCastValidator(zero_pair).validate_text(
        text, byte_skip=True
    ).stats
    assert zero_stats.subtrees_skipped == 0, (
        "zero-subsumption corpus skipped subtrees"
    )

    # -- gate 1: subsumption-heavy speedup ----------------------------------
    heavy = StreamingCastValidator(heavy_pair)
    event_s = best_of(lambda: heavy.validate_text_events(text), reps)
    fused_s = best_of(lambda: heavy.validate_text(text), reps)
    skim_s = best_of(
        lambda: heavy.validate_text(text, byte_skip=True), reps
    )
    trusted_s = best_of(
        lambda: heavy.validate_text(text, byte_skip=True, trusted=True),
        reps,
    )
    heavy_speedup = event_s / skim_s
    trusted_speedup = event_s / trusted_s
    # Marginal value of skipping over the fused kernel's plain pass:
    # the hardened skim must not lose to just validating everything,
    # and the trusted byte search must clearly win.
    skim_vs_fused = fused_s / skim_s
    trusted_vs_fused = fused_s / trusted_s

    # -- gate 2: zero-subsumption parity ------------------------------------
    zero = StreamingCastValidator(zero_pair)
    zero_event_s = best_of(lambda: zero.validate_text(text), reps)
    zero_skim_s = best_of(
        lambda: zero.validate_text(text, byte_skip=True), reps
    )
    parity = zero_event_s / zero_skim_s

    skipped_fraction = heavy_stats.bytes_skipped / len(text)
    print(
        f"{'heavy (event pipeline)':<28} {event_s * 1e3:8.2f} ms"
    )
    print(
        f"{'heavy (fused, no skips)':<28} {fused_s * 1e3:8.2f} ms  "
        f"{event_s / fused_s:6.2f}x"
    )
    print(
        f"{'heavy (byte skim)':<28} {skim_s * 1e3:8.2f} ms  "
        f"{heavy_speedup:6.2f}x  ({mb * reps / skim_s:7.1f} MB/s, "
        f"{skipped_fraction:.0%} of bytes skimmed)"
    )
    print(
        f"{'heavy (trusted byte search)':<28} {trusted_s * 1e3:8.2f} ms  "
        f"{trusted_speedup:6.2f}x  ({mb * reps / trusted_s:7.1f} MB/s)"
    )
    print(
        f"{'zero-sub (event-level)':<28} {zero_event_s * 1e3:8.2f} ms"
    )
    print(
        f"{'zero-sub (byte skim)':<28} {zero_skim_s * 1e3:8.2f} ms  "
        f"ratio {parity:5.3f}"
    )

    update_bench_json(
        args.json,
        {
            "stream_skip_subsumption_heavy": {
                "corpus": "exp1-po",
                "corpus_items": items,
                "corpus_bytes": corpus_bytes,
                "reps": reps,
                "event_seconds": event_s,
                "fused_seconds": fused_s,
                "skim_seconds": skim_s,
                "trusted_seconds": trusted_s,
                "speedup": heavy_speedup,
                "trusted_speedup": trusted_speedup,
                "skim_speedup_vs_fused": skim_vs_fused,
                "trusted_speedup_vs_fused": trusted_vs_fused,
                "subtrees_byte_skipped": heavy_stats.subtrees_byte_skipped,
                "bytes_skipped": heavy_stats.bytes_skipped,
                "event_mb_per_s": mb * reps / event_s,
                "skim_mb_per_s": mb * reps / skim_s,
                "trusted_mb_per_s": mb * reps / trusted_s,
            },
            "stream_skip_zero_subsumption": {
                "corpus": "po-zero-subsumption",
                "corpus_items": items,
                "corpus_bytes": corpus_bytes,
                "reps": reps,
                "event_seconds": zero_event_s,
                "skim_seconds": zero_skim_s,
                "ratio": parity,
                "event_mb_per_s": mb * reps / zero_event_s,
                "skim_mb_per_s": mb * reps / zero_skim_s,
            },
        },
        source="bench_stream_skip.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    if heavy_speedup < heavy_floor:
        failures.append(
            f"subsumption-heavy speedup {heavy_speedup:.2f}x "
            f"< {heavy_floor}x"
        )
    if skim_vs_fused < 1.0:
        failures.append(
            f"hardened skim loses to the fused no-skip pass "
            f"({skim_vs_fused:.2f}x)"
        )
    if trusted_vs_fused < heavy_floor:
        failures.append(
            f"trusted skim speedup over the fused pass "
            f"{trusted_vs_fused:.2f}x < {heavy_floor}x"
        )
    if parity < parity_floor:
        failures.append(
            f"zero-subsumption ratio {parity:.3f} < {parity_floor}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: skip-scan meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
