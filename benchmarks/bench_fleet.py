"""Resident worker fleet: scaling curve, warm reuse, zero-copy, resume.

Benchmarks the :class:`~repro.core.fleet.WorkerFleet` scheduler behind
``validate_batch`` on an Experiment-2 purchase-order corpus:

1. **scaling curve** — batch throughput at ``jobs`` ∈ {1, 2, 4, 8}
   over one resident fleet per point (documents/second, speedup over
   the ``jobs=1`` serial baseline).  Parallel speedup is bounded by the
   machine, so the scaling gate is enforced only when ``os.cpu_count()``
   provides the cores to scale onto — but the whole curve is always
   recorded, stamped with ``cpu_count``, so numbers from a 1-core CI
   runner can never masquerade as a 8-core result.
2. **warm vs cold pool** — a short batch validated over one resident
   fleet (pool and transported pair paid for once) versus spinning up
   a fresh pool for every call.  This is the amortization the fleet
   exists for and it holds on any hardware, so it is always gated.
3. **zero-copy transport** — a ``spawn`` fleet (the route that cannot
   inherit the pair by fork) runs several batches; the pair must have
   been pickled at most once for the whole fleet
   (:attr:`~repro.core.fleet.PairTransport.pickle_count`), regardless
   of worker count or batch count.
4. **resume identity** — a checkpointed run interrupted halfway and
   resumed must produce verdicts and merged stats identical to an
   uninterrupted run.

Every record lands in ``BENCH_cast.json`` at the repo root via
:func:`repro.bench.reporting.update_bench_json` (which stamps
``cpu_count``); scaling records also carry their ``jobs`` metadata.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]

``--quick`` shrinks the corpus for CI, limits the curve to
``jobs`` ∈ {1, 2}, and gates only warm reuse (>= 1.0x), zero-copy, and
resume identity; the full run additionally requires >= 2.5x at
``jobs=4`` when the machine has >= 4 CPUs.  Exit status 1 if any
enforced check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.bench.reporting import update_bench_json
from repro.core.batch import validate_batch
from repro.core.fleet import FleetConfig, WorkerFleet
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.serializer import write_file

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)


def build_corpus(directory: str, docs: int, items: int) -> list[str]:
    """Write ``docs`` purchase orders and return their sorted paths."""
    paths = []
    for index in range(docs):
        path = os.path.join(directory, f"po_{index:05d}.xml")
        write_file(make_purchase_order(items), path)
        paths.append(path)
    return paths


def make_pair() -> SchemaPair:
    pair = SchemaPair(
        source_schema_experiment2(), target_schema_experiment2()
    )
    pair.warm()
    return pair


def timed_batch(pair, paths, *, jobs, fleet=None, rounds=3) -> float:
    """Best-of-``rounds`` wall-clock seconds for one full batch."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = validate_batch(pair, paths, jobs=jobs, fleet=fleet)
        best = min(best, time.perf_counter() - start)
        assert result.all_valid, "bench corpus must validate cleanly"
    return best


def bench_scaling(
    pair, paths, jobs_curve, rounds
) -> dict[int, float]:
    """``jobs -> best seconds`` over one resident fleet per point.

    Each fleet gets an untimed warm-up batch first, so the curve
    measures steady-state throughput, not pool spin-up (that cost is
    measured — not hidden — by the warm-vs-cold record).
    """
    curve: dict[int, float] = {}
    for jobs in jobs_curve:
        if jobs == 1:
            timed_batch(pair, paths, jobs=1, rounds=1)  # warm-up
            curve[1] = timed_batch(pair, paths, jobs=1, rounds=rounds)
            continue
        with WorkerFleet(pair, jobs, warm=False) as fleet:
            timed_batch(pair, paths, jobs=jobs, fleet=fleet, rounds=1)
            curve[jobs] = timed_batch(
                pair, paths, jobs=jobs, fleet=fleet, rounds=rounds
            )
    return curve


def bench_warm_vs_cold(pair, paths, jobs, rounds) -> tuple[float, float]:
    """``(cold_seconds, warm_seconds)`` for one short batch.

    Cold pays pool spin-up and pair transport on every call (what
    ``validate_batch`` without a fleet does); warm pays them once and
    reuses the resident pool.
    """
    def cold() -> float:
        start = time.perf_counter()
        result = validate_batch(pair, paths, jobs=jobs)
        assert result.all_valid
        return time.perf_counter() - start

    cold_best = min(cold() for _ in range(rounds))
    with WorkerFleet(pair, jobs, warm=False) as fleet:
        timed_batch(pair, paths, jobs=jobs, fleet=fleet, rounds=1)
        warm_best = timed_batch(
            pair, paths, jobs=jobs, fleet=fleet, rounds=rounds
        )
    return cold_best, warm_best


def bench_zero_copy(pair, paths, jobs) -> dict[str, object]:
    """Run several batches over a ``spawn`` fleet and report transport
    accounting.  Spawn is the route with no fork copy-on-write shortcut,
    so it exercises the shared-memory path on every platform."""
    with WorkerFleet(pair, jobs, start_method="spawn",
                     warm=False) as fleet:
        for _ in range(2):
            result = validate_batch(pair, paths, jobs=jobs, fleet=fleet)
            assert result.all_valid
        return {
            "start_method": "spawn",
            "transport_kind": fleet.transport.kind,
            "pickle_count": fleet.transport.pickle_count,
            "blob_bytes": fleet.transport.blob_bytes,
            "batches_run": fleet.batches_run,
        }


def bench_resume(pair, paths, checkpoint_dir) -> dict[str, object]:
    """Interrupt a checkpointed run halfway, resume, and compare to an
    uninterrupted run."""
    journal = os.path.join(checkpoint_dir, "bench_fleet.ckpt.jsonl")
    half = paths[: len(paths) // 2]
    validate_batch(pair, half, collect_stats=True, checkpoint=journal)
    resumed = validate_batch(
        pair, paths, collect_stats=True, checkpoint=journal, resume=True
    )
    baseline = validate_batch(pair, paths, collect_stats=True)
    identical = (
        resumed.results == baseline.results
        and resumed.stats == baseline.stats
    )
    return {
        "documents": len(paths),
        "restored": resumed.resumed,
        "identical_to_uninterrupted": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run: jobs in {1, 2}, conservative gates",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    if args.quick:
        docs, items, rounds = 60, 4, 2
        short_docs = 20
        jobs_curve = [1, 2]
        warm_floor = 1.0
        scaling_floor = None  # smoke: record, don't gate scaling
    else:
        docs, items, rounds = 400, 6, 3
        short_docs = 40
        jobs_curve = [1, 2, 4, 8]
        warm_floor = 1.2
        # The jobs=4 gate needs 4 cores to be physically meaningful.
        scaling_floor = (4, 2.5) if cpu_count >= 4 else None

    pair = make_pair()
    with tempfile.TemporaryDirectory(prefix="bench_fleet") as corpus_dir:
        paths = build_corpus(corpus_dir, docs, items)
        short = paths[:short_docs]

        curve = bench_scaling(pair, paths, jobs_curve, rounds)
        cold_time, warm_time = bench_warm_vs_cold(pair, short, 2, rounds)
        zero_copy = bench_zero_copy(pair, short, 2)
        resume = bench_resume(pair, short, corpus_dir)

    serial = curve[1]
    print(f"fleet scaling curve ({docs} docs, cpu_count={cpu_count}):")
    for jobs, seconds in sorted(curve.items()):
        print(
            f"  jobs={jobs}: {seconds * 1e3:8.1f} ms  "
            f"{docs / seconds:8.1f} docs/s  "
            f"{serial / seconds:5.2f}x vs serial"
        )
    warm_speedup = cold_time / warm_time
    print(
        f"warm vs cold pool ({short_docs} docs, jobs=2): "
        f"cold {cold_time * 1e3:.1f} ms, warm {warm_time * 1e3:.1f} ms, "
        f"{warm_speedup:.2f}x"
    )
    print(
        f"zero-copy transport: kind={zero_copy['transport_kind']}, "
        f"pickles={zero_copy['pickle_count']}, "
        f"blob={zero_copy['blob_bytes']} bytes over "
        f"{zero_copy['batches_run']} batches"
    )
    print(
        f"resume identity: {resume['restored']}/{resume['documents']} "
        f"restored, identical={resume['identical_to_uninterrupted']}"
    )

    update_bench_json(
        args.json,
        {
            "fleet_scaling": {
                "corpus": "exp2-po-batch",
                "corpus_docs": docs,
                "corpus_items": items,
                "rounds": rounds,
                "jobs": sorted(curve),
                "seconds": {str(j): curve[j] for j in sorted(curve)},
                "docs_per_second": {
                    str(j): docs / curve[j] for j in sorted(curve)
                },
                "speedup_vs_serial": {
                    str(j): serial / curve[j] for j in sorted(curve)
                },
            },
            "fleet_warm_reuse": {
                "corpus": "exp2-po-batch-short",
                "corpus_docs": short_docs,
                "jobs": 2,
                "rounds": rounds,
                "cold_seconds": cold_time,
                "warm_seconds": warm_time,
                "speedup": warm_speedup,
            },
            "fleet_zero_copy": {
                "corpus": "exp2-po-batch-short",
                "jobs": 2,
                **zero_copy,
            },
            "fleet_resume": {
                "corpus": "exp2-po-batch-short",
                "jobs": 1,
                **resume,
            },
        },
        source="bench_fleet.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    if scaling_floor is not None:
        gate_jobs, floor = scaling_floor
        speedup = serial / curve[gate_jobs]
        if speedup < floor:
            failures.append(
                f"jobs={gate_jobs} speedup {speedup:.2f}x < {floor}x "
                f"(cpu_count={cpu_count})"
            )
    if warm_speedup < warm_floor:
        failures.append(
            f"warm-pool speedup {warm_speedup:.2f}x < {warm_floor}x"
        )
    if zero_copy["pickle_count"] > 1:
        failures.append(
            f"pair pickled {zero_copy['pickle_count']} times on a "
            "spawn fleet (zero-copy contract allows at most 1)"
        )
    if not resume["identical_to_uninterrupted"]:
        failures.append("resumed run differs from uninterrupted run")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: fleet meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
