"""Table 2 — input document file sizes.

Regenerates the paper's table of serialized document sizes for the item
counts of Section 6.  Absolute bytes differ from the paper's by a
near-constant factor (address strings, indentation); the per-item growth
is linear in both.
"""

import pytest

from repro.workloads.purchase_orders import (
    PAPER_ITEM_COUNTS,
    PAPER_TABLE2_FILE_SIZES,
    document_size_bytes,
    make_purchase_order,
)


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_serialize_document(benchmark, items):
    doc = make_purchase_order(items)
    size = benchmark(document_size_bytes, doc)
    paper = PAPER_TABLE2_FILE_SIZES[items]
    # Same order of magnitude as the paper's file (0.5x – 2x).
    assert paper / 2 < size < paper * 2


def test_growth_is_linear(benchmark):
    def slope():
        small = document_size_bytes(make_purchase_order(100))
        large = document_size_bytes(make_purchase_order(1000))
        return (large - small) / 900

    per_item = benchmark(slope)
    paper_slope = (
        PAPER_TABLE2_FILE_SIZES[1000] - PAPER_TABLE2_FILE_SIZES[100]
    ) / 900
    assert per_item == pytest.approx(paper_slope, rel=0.5)


if __name__ == "__main__":
    from repro.bench.harness import report_table2, run_table2

    print(report_table2(run_table2()))
