"""A5 — tree cast with modifications vs full revalidation vs the
document-preprocessing incremental baseline.

Workload: a 200-item purchase order; k quantity values edited; the
document revalidated against the same schema.  Expected shape:
cast-with-modifications work grows with k (and stays far below full
revalidation for small k); the preprocessing baseline answers updates
quickly but holds per-node state proportional to the document, which the
schema-pair approach avoids (the paper's Section 1/2 argument).
"""

import random

import pytest

from repro.baselines.full import FullValidator
from repro.baselines.preprocessed import PreprocessedIncrementalValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.updates import UpdateSession
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    target_schema_experiment2,
)

ITEMS = 200
EDIT_COUNTS = (1, 10, 100)


@pytest.fixture(scope="module")
def schema():
    return target_schema_experiment2()


@pytest.fixture(scope="module")
def pair(schema):
    built = SchemaPair(schema, schema)
    built.warm()
    return built


def _edited_session(edits):
    rng = random.Random(42)
    session = UpdateSession(make_purchase_order(ITEMS))
    items = session.document.root.find("items")
    for _ in range(edits):
        item = items.children[rng.randrange(len(items.children))]
        session.replace_text(
            item.find("quantity").children[0], str(1 + rng.randrange(99))
        )
    return session


@pytest.mark.parametrize("edits", EDIT_COUNTS)
def test_cast_with_modifications(benchmark, pair, edits):
    session = _edited_session(edits)
    validator = CastWithModificationsValidator(pair)
    report = benchmark(validator.validate, session)
    assert report.valid
    # Work proportional to the edit count, not the document.
    assert report.stats.nodes_visited <= 4 * edits + 8


@pytest.mark.parametrize("edits", EDIT_COUNTS)
def test_full_revalidation(benchmark, schema, edits):
    session = _edited_session(edits)
    result = session.result_document()
    validator = FullValidator(schema)
    report = benchmark(validator.validate, result)
    assert report.valid
    assert report.stats.nodes_visited == result.size()


def test_preprocessing_baseline_memory(schema):
    """The related-work trade-off: per-document state vs per-schema
    state (no timing — the point is the memory column)."""
    validator = PreprocessedIncrementalValidator(schema)
    small = make_purchase_order(20)
    validator.preprocess(small)
    small_cells = validator.memory_cells()
    big_validator = PreprocessedIncrementalValidator(schema)
    big_validator.preprocess(make_purchase_order(ITEMS))
    assert big_validator.memory_cells() > small_cells * 5
    pair = SchemaPair(schema, schema)
    pair_state = len(pair.r_sub) + len(pair.r_nondis)
    assert pair_state < small_cells  # schema state beats even a tiny doc


@pytest.mark.parametrize("edits", (1, 10))
def test_preprocessing_baseline_updates(benchmark, schema, edits):
    rng = random.Random(7)

    def run():
        validator = PreprocessedIncrementalValidator(schema)
        doc = make_purchase_order(50)
        validator.preprocess(doc)
        items = doc.root.find("items")
        for _ in range(edits):
            item = items.children[rng.randrange(len(items.children))]
            position = item.find("quantity").index
            validator.insert_element(item, position, "productName")
            validator.delete(item.children[position])
        return validator

    benchmark(run)


if __name__ == "__main__":
    from repro.bench.harness import (
        report_tree_modifications,
        run_tree_modifications,
    )

    print(report_tree_modifications(run_tree_modifications()))
