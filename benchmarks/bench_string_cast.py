"""A1 — immediate decision automaton vs plain target rescan (strings).

Measures both the wall-clock and the symbols-scanned advantage of the
pair automaton ``c_immed`` over rescanning with the target automaton,
across schema-similarity regimes (identical / disjoint / subsumed /
late-diverging).  Expected shape: O(1) decisions whenever the residual
relationship settles early; never more symbols than the plain scan
(Proposition 3).
"""

import random

import pytest

from repro.automata.stringcast import StringCastValidator
from repro.bench.ablations import _A1_CASES, _a1_word
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model

LENGTH = 1000


def _validator(case):
    src, tgt = _A1_CASES[case]
    alphabet = frozenset("abcde")
    return StringCastValidator(
        compile_dfa(parse_content_model(src), alphabet),
        compile_dfa(parse_content_model(tgt), alphabet),
    )


@pytest.mark.parametrize("case", sorted(_A1_CASES))
def test_cast_scan(benchmark, case):
    validator = _validator(case)
    word = _a1_word(LENGTH, random.Random(1))
    result = benchmark(validator.validate, word)
    plain = validator.b_immed.scan(word)
    # Proposition 3: never scan more than the plain automaton.
    assert result.symbols_scanned <= plain.symbols_scanned


@pytest.mark.parametrize("case", sorted(_A1_CASES))
def test_plain_scan(benchmark, case):
    validator = _validator(case)
    word = _a1_word(LENGTH, random.Random(1))
    benchmark(validator.b_immed.scan, word)


def test_early_cases_scan_constant_symbols():
    word = _a1_word(LENGTH, random.Random(1))
    for case in ("identical", "disjoint", "subsumed-start",
                 "after-one-symbol"):
        result = _validator(case).validate(word)
        assert result.symbols_scanned <= 1, case


if __name__ == "__main__":
    from repro.bench.ablations import report_string_cast, run_string_cast

    print(report_string_cast(run_string_cast()))
