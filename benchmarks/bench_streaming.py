"""A7 — streaming validation vs parse-then-validate.

The paper's memory argument carried to its conclusion: the streaming
validator holds only a stack of open elements, so its peak memory is
O(document depth) while the DOM pipeline holds the whole tree.  This
bench measures wall-clock for both pipelines and peak allocations
(tracemalloc) as the document grows.  Expected shape: both linear in
time (parsing dominates); streaming peak memory flat, DOM peak linear.
"""

import tracemalloc

import pytest

from repro.core.streaming import StreamingValidator
from repro.core.validator import validate_document
from repro.workloads.purchase_orders import (
    make_purchase_order,
    target_schema_experiment2,
)
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

SIZES = (50, 200, 1000)

TEXTS = {}


def _text(count):
    if count not in TEXTS:
        TEXTS[count] = serialize(make_purchase_order(count), indent="  ")
    return TEXTS[count]


@pytest.fixture(scope="module")
def schema():
    return target_schema_experiment2()


@pytest.fixture(scope="module")
def streaming(schema):
    return StreamingValidator(schema)


@pytest.mark.parametrize("items", SIZES)
def test_streaming_pipeline(benchmark, streaming, items):
    text = _text(items)
    report = benchmark(streaming.validate_text, text)
    assert report.valid


@pytest.mark.parametrize("items", SIZES)
def test_dom_pipeline(benchmark, schema, items):
    text = _text(items)

    def run():
        return validate_document(schema, parse(text))

    report = benchmark(run)
    assert report.valid


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_streaming_memory_is_document_independent(streaming, schema):
    small, large = _text(50), _text(1000)
    stream_small = _peak_bytes(lambda: streaming.validate_text(small))
    stream_large = _peak_bytes(lambda: streaming.validate_text(large))
    dom_small = _peak_bytes(lambda: validate_document(schema, parse(small)))
    dom_large = _peak_bytes(lambda: validate_document(schema, parse(large)))
    # DOM peak grows roughly with the document; streaming stays flat
    # (both pipelines hold the input text itself, already allocated).
    assert dom_large > dom_small * 5
    assert stream_large < stream_small * 3


if __name__ == "__main__":
    schema_ = target_schema_experiment2()
    validator = StreamingValidator(schema_)
    from repro.bench.harness import time_call
    from repro.bench.reporting import render_table

    rows = []
    for items in SIZES:
        text = _text(items)
        rows.append(
            [
                items,
                time_call(lambda: validator.validate_text(text),
                          repeat=3) * 1e3,
                time_call(
                    lambda: validate_document(schema_, parse(text)),
                    repeat=3,
                ) * 1e3,
                _peak_bytes(lambda: validator.validate_text(text)),
                _peak_bytes(
                    lambda: validate_document(schema_, parse(text))
                ),
            ]
        )
    print(
        render_table(
            "A7 — streaming vs parse-then-validate",
            ["items", "stream ms", "dom ms", "stream peak B",
             "dom peak B"],
            rows,
            note="streaming peak is O(depth); DOM peak grows with the tree",
        )
    )
