"""Load-test harness for the validation HTTP service.

Boots :class:`~repro.service.server.ValidationService` in-process on an
ephemeral port with the paper's purchase-order pairs and drives it with
concurrent ``urllib`` clients through three phases:

1. **capacity** — clients matched to worker slots measure the service's
   sustainable throughput and p50/p99 latency with no shedding.
2. **overload** — 2× capacity clients hammer the same endpoint.  The
   gates are the admission-control contract: the service *must* shed
   (bounded queue, not unbounded latency), every shed response must be
   a 503/429 carrying ``Retry-After``, every request must be answered
   (no hangs, no bare 500s), and the p99 of *accepted* requests must
   stay within the per-pair deadline budget — overload degrades
   throughput, never accepted-request latency.
3. **drain** — SIGTERM semantics under load: ``begin_drain`` fires
   while clients are mid-flight; afterwards the admission counters must
   show every admitted request completed (zero accepted-but-unanswered)
   and the listener must have stopped within the grace window.
4. **scaling** — real ``repro serve`` subprocesses at 1 and N
   processes (SO_REUSEPORT pre-fork), driven by keep-alive clients over
   persistent connections.  Mid-run a hot pair is registered through
   ``POST /admin/pairs``, validated against, and retired — reload under
   live traffic is part of the measured workload.  The speedup gate
   (>= 2.5x at 4 processes) is enforced only when ``os.cpu_count()``
   can express it; every record is stamped with ``process_count`` so a
   throughput number can never be read without its topology.

Records land in ``BENCH_cast.json`` under ``service_load``,
``service_overload``, ``service_drain``, and ``service_scaling`` via
:func:`repro.bench.reporting.update_bench_json`.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

``--quick`` shrinks request counts for CI.  Exit status 1 if any gate
fails.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.bench.reporting import update_bench_json
from repro.guards import DEFAULT_LIMITS
from repro.service.registry import ServiceRegistry, demo_specs
from repro.service.server import ServiceConfig, ValidationService
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DRAIN_LINE = re.compile(
    r"drained: admitted=(\d+) completed=(\d+) lost=(\d+) processes=(\d+)"
)

#: The per-pair wall-clock budget registered for the benchmark pairs —
#: the overload gate holds accepted-request p99 under this.
PAIR_DEADLINE_SECONDS = 2.0


class ClientStats:
    """Thread-safe tally of responses by outcome."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_ok: list[float] = []
        self.shed = 0
        self.shed_with_retry_after = 0
        self.other: dict[int, int] = {}
        self.transport_errors = 0

    def record(self, status: int, latency: float,
               retry_after: bool) -> None:
        with self.lock:
            if status == 200:
                self.latencies_ok.append(latency)
            elif status in (429, 503):
                self.shed += 1
                if retry_after:
                    self.shed_with_retry_after += 1
            else:
                self.other[status] = self.other.get(status, 0) + 1

    def record_transport_error(self) -> None:
        with self.lock:
            self.transport_errors += 1

    @property
    def answered(self) -> int:
        return (
            len(self.latencies_ok)
            + self.shed
            + sum(self.other.values())
        )


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def post(base: str, path: str, payload: dict, stats: ClientStats,
         timeout: float = 30.0) -> None:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            stats.record(
                response.status, time.perf_counter() - started, False
            )
    except urllib.error.HTTPError as error:
        error.read()
        stats.record(
            error.code,
            time.perf_counter() - started,
            error.headers.get("Retry-After") is not None,
        )
    except (urllib.error.URLError, OSError):
        stats.record_transport_error()


def run_clients(base: str, payload: dict, *, clients: int,
                requests_each: int) -> ClientStats:
    stats = ClientStats()

    def worker() -> None:
        for _ in range(requests_each):
            post(base, "/validate", payload, stats)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats


def boot_service(
    max_concurrent: int, hold_seconds: float = 0.0
) -> tuple[ValidationService, str]:
    """Boot an in-process service on an ephemeral port.

    ``hold_seconds`` pins each admitted request for that long (a
    GIL-releasing sleep through the post-admission hook) — it stands in
    for the multi-core service time this single-GIL harness cannot
    generate with real validation work, and makes queue saturation at
    2x capacity deterministic.
    """
    limits = DEFAULT_LIMITS.with_overrides(
        deadline_seconds=PAIR_DEADLINE_SECONDS
    )
    registry = ServiceRegistry(demo_specs(limits=limits))
    # A queue the size of the worker pool and a wait budget of 0.25s:
    # at 2x capacity requests either overflow the queue or outwait the
    # budget, so shedding is observable from outside the process.
    config = ServiceConfig(
        max_concurrent=max_concurrent,
        max_queue=max_concurrent,
        queue_timeout=0.25,
        request_timeout=10.0,
        drain_grace=10.0,
    )
    hook = (
        (lambda route: time.sleep(hold_seconds)) if hold_seconds else None
    )
    service = ValidationService(registry, config, after_admit_hook=hook)
    host, port = service.start()
    if not service.wait_ready(60.0):
        raise RuntimeError(f"service failed to warm: {service.warm_error}")
    return service, f"http://{host}:{port}"


# -- multi-process scaling harness --------------------------------------------


def _serve_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def boot_prefork(processes: int):
    """``repro serve --demo --processes N`` as a real subprocess.

    Returns ``(proc, host, port)`` once the ready line is out.
    """
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--demo", "--port", "0",
            "--processes", str(processes),
            "--drain-grace", "15",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_serve_env(),
        cwd=REPO_ROOT,
    )
    boot_line = proc.stdout.readline().strip()
    if not boot_line.startswith("listening on http://"):
        proc.kill()
        raise RuntimeError(f"bad boot line: {boot_line!r}")
    address = boot_line.rsplit("/", 1)[-1]
    host, _, port_text = address.partition(":")
    ready_line = proc.stdout.readline().strip()
    if not ready_line.startswith("ready: "):
        proc.kill()
        raise RuntimeError(f"bad ready line: {ready_line!r}")
    return proc, host, int(port_text)


def keepalive_worker(host: str, port: int, payload: dict,
                     requests_each: int, stats: ClientStats) -> None:
    """One client: a persistent connection reused across requests."""
    body = json.dumps(payload).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        for _ in range(requests_each):
            started = time.perf_counter()
            try:
                conn.request("POST", "/validate", body, headers)
                response = conn.getresponse()
                response.read()
                stats.record(
                    response.status,
                    time.perf_counter() - started,
                    response.getheader("Retry-After") is not None,
                )
                if response.will_close:
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=30.0
                    )
            except (OSError, http.client.HTTPException):
                stats.record_transport_error()
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30.0)
    finally:
        conn.close()


def exercise_hot_reload(host: str, port: int,
                        failures: list) -> None:
    """Register, serve, and retire a hot pair while load is running."""
    base = f"http://{host}:{port}"
    reload_stats = ClientStats()
    note = "<!ELEMENT note (#PCDATA)>"
    body = {
        "name": "bench-hot-note",
        "source_text": note, "source_kind": "dtd",
        "target_text": note, "target_kind": "dtd",
    }
    request = urllib.request.Request(
        base + "/admin/pairs",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            response.read()
            if response.status != 201:
                failures.append(
                    f"scaling: hot register answered {response.status}"
                )
                return
    except (urllib.error.URLError, OSError) as error:
        failures.append(f"scaling: hot register failed: {error}")
        return

    # Every child must eventually serve the pair (journal propagation).
    probe = {"pair": "bench-hot-note", "xml": "<note>x</note>",
             "schema": "source"}
    deadline = time.monotonic() + 20.0
    streak = 0
    while streak < 10:
        post(base, "/validate", probe, reload_stats, timeout=10.0)
        if reload_stats.other.get(404):
            reload_stats.other.pop(404)
            streak = 0
            if time.monotonic() > deadline:
                failures.append(
                    "scaling: hot pair never propagated to every process"
                )
                return
            time.sleep(0.1)
        else:
            streak += 1

    request = urllib.request.Request(
        base + "/admin/pairs/bench-hot-note", method="DELETE"
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            response.read()
    except (urllib.error.URLError, OSError) as error:
        failures.append(f"scaling: hot retire failed: {error}")


def measure_prefork(processes: int, *, clients: int, requests_each: int,
                    payload: dict, failures: list,
                    hot_reload: bool = False) -> dict:
    """Throughput of one server topology under keep-alive load."""
    proc, host, port = boot_prefork(processes)
    stats = ClientStats()
    try:
        threads = [
            threading.Thread(
                target=keepalive_worker,
                args=(host, port, payload, requests_each, stats),
                daemon=True,
            )
            for _ in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if hot_reload:
            exercise_hot_reload(host, port, failures)
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.perf_counter() - started
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            exit_code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            exit_code = proc.wait(timeout=10)
        stdout, stderr = proc.communicate(timeout=10)

    total = clients * requests_each
    ok = len(stats.latencies_ok)
    point = {
        "process_count": processes,
        "clients": clients,
        "requests": total,
        "ok": ok,
        "shed": stats.shed,
        "rps": round(ok / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(percentile(stats.latencies_ok, 0.50) * 1000, 3),
        "p99_ms": round(percentile(stats.latencies_ok, 0.99) * 1000, 3),
        "exit_code": exit_code,
    }
    if exit_code != 0:
        failures.append(
            f"scaling: {processes}-process server exited "
            f"{exit_code}: {stderr[-500:]}"
        )
    if stats.answered + stats.transport_errors != total:
        failures.append(
            f"scaling: {total - stats.answered - stats.transport_errors} "
            f"of {total} requests vanished at {processes} processes"
        )
    if processes > 1:
        match = DRAIN_LINE.search(stdout)
        if not match:
            failures.append(
                f"scaling: no drain summary from the {processes}-process "
                "server"
            )
        else:
            admitted, completed, lost, procs = map(int, match.groups())
            point["drained"] = {
                "admitted": admitted, "completed": completed,
                "lost": lost, "processes": procs,
            }
            if lost != 0 or admitted != completed:
                failures.append(
                    f"scaling: fleet drain lost {lost} requests "
                    f"(admitted={admitted} completed={completed})"
                )
    return point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink request counts for a CI smoke run",
    )
    parser.add_argument("--json", default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    max_concurrent = 4
    requests_each = 8 if args.quick else 25
    items = 30 if args.quick else 60

    payload = {
        "pair": "po-exp2",
        "xml": serialize(make_purchase_order(items)),
        "schema": "source",
    }
    failures: list[str] = []
    entries: dict[str, dict] = {}

    # -- phase 1: capacity ---------------------------------------------------
    service, base = boot_service(max_concurrent)
    load = run_clients(
        base, payload, clients=max_concurrent, requests_each=requests_each
    )
    total = max_concurrent * requests_each
    elapsed = sum(load.latencies_ok) / max(max_concurrent, 1)
    entries["service_load"] = {
        "process_count": 1,
        "clients": max_concurrent,
        "requests": total,
        "ok": len(load.latencies_ok),
        "shed": load.shed,
        "p50_ms": round(percentile(load.latencies_ok, 0.50) * 1000, 3),
        "p99_ms": round(percentile(load.latencies_ok, 0.99) * 1000, 3),
        "rps": round(len(load.latencies_ok) / elapsed, 1)
        if elapsed > 0 else 0.0,
    }
    print(
        f"capacity: {len(load.latencies_ok)}/{total} ok, "
        f"p50 {entries['service_load']['p50_ms']}ms, "
        f"p99 {entries['service_load']['p99_ms']}ms"
    )
    if load.answered != total:
        failures.append(
            f"capacity: {total - load.answered} of {total} requests "
            "never answered"
        )
    if load.other:
        failures.append(f"capacity: unexpected statuses {load.other}")

    service.close()

    # -- phase 2: overload at 2x capacity ------------------------------------
    # A fresh service whose admitted requests are held for 50ms each
    # (see boot_service) — at 4x the worker count in clients, the
    # bounded queue must saturate and shed.
    service, base = boot_service(max_concurrent, hold_seconds=0.05)
    overload = run_clients(
        base, payload,
        clients=max_concurrent * 4,
        requests_each=requests_each,
    )
    total2 = (max_concurrent * 4) * requests_each
    p99_accepted = percentile(overload.latencies_ok, 0.99)
    entries["service_overload"] = {
        "process_count": 1,
        "clients": max_concurrent * 4,
        "requests": total2,
        "ok": len(overload.latencies_ok),
        "shed": overload.shed,
        "shed_with_retry_after": overload.shed_with_retry_after,
        "shed_rate": round(overload.shed / total2, 3),
        "p50_ms": round(
            percentile(overload.latencies_ok, 0.50) * 1000, 3
        ),
        "p99_accepted_ms": round(p99_accepted * 1000, 3),
        "deadline_budget_ms": PAIR_DEADLINE_SECONDS * 1000,
    }
    print(
        f"overload: {len(overload.latencies_ok)}/{total2} ok, "
        f"{overload.shed} shed "
        f"({entries['service_overload']['shed_rate']:.0%}), "
        f"accepted p99 {entries['service_overload']['p99_accepted_ms']}ms"
    )
    if overload.answered != total2:
        failures.append(
            f"overload: {total2 - overload.answered} of {total2} "
            "requests never answered"
        )
    if overload.shed == 0:
        failures.append(
            "overload: 2x capacity produced zero shed responses — "
            "the admission queue is not bounding load"
        )
    if overload.shed_with_retry_after != overload.shed:
        failures.append(
            f"overload: {overload.shed - overload.shed_with_retry_after} "
            "shed responses lacked a Retry-After header"
        )
    if overload.other:
        failures.append(f"overload: unexpected statuses {overload.other}")
    # Queue wait (bounded at 1s) + validation must fit the pair budget.
    # Latency gates need real parallelism to be meaningful: on a
    # starved 1-core box accepted requests time-slice against the whole
    # client herd, so the number is recorded but not enforced — same
    # policy as bench_fleet.py's scaling floor.
    cpu_count = os.cpu_count() or 1
    accepted_budget = PAIR_DEADLINE_SECONDS + 1.0
    entries["service_overload"]["p99_gate_enforced"] = cpu_count >= 2
    if cpu_count >= 2 and p99_accepted > accepted_budget:
        failures.append(
            f"overload: accepted p99 {p99_accepted * 1000:.0f}ms exceeds "
            f"the {accepted_budget * 1000:.0f}ms queue+deadline budget"
        )

    # -- phase 3: drain under load -------------------------------------------
    drain_stats = ClientStats()
    stop = threading.Event()

    def drain_worker() -> None:
        while not stop.is_set():
            post(base, "/validate", payload, drain_stats, timeout=15.0)

    threads = [
        threading.Thread(target=drain_worker, daemon=True)
        for _ in range(max_concurrent * 2)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.5 if args.quick else 1.0)
    drain_started = time.perf_counter()
    service.begin_drain()
    stopped = service._stopped.wait(service.config.drain_grace + 5.0)
    drain_seconds = time.perf_counter() - drain_started
    stop.set()
    for thread in threads:
        thread.join(timeout=20.0)
    admission = service.admission.stats
    lost = admission.admitted - admission.completed
    entries["service_drain"] = {
        "process_count": 1,
        "stopped_within_grace": stopped,
        "drain_seconds": round(drain_seconds, 3),
        "admitted": admission.admitted,
        "completed": admission.completed,
        "accepted_but_unanswered": lost,
        "shed_during_drain": admission.shed_draining,
    }
    print(
        f"drain: stopped={stopped} in {drain_seconds:.2f}s, "
        f"admitted={admission.admitted} completed={admission.completed} "
        f"lost={lost}"
    )
    if not stopped:
        failures.append(
            "drain: listener did not stop within the grace window"
        )
    if lost != 0:
        failures.append(
            f"drain: {lost} accepted requests were never answered"
        )

    # -- phase 4: multi-process scaling --------------------------------------
    # Real subprocess servers (SO_REUSEPORT pre-fork) at 1 and N
    # processes under identical keep-alive load; the N-process run also
    # hot-registers/retires a pair mid-flight.
    scale_to = 2 if args.quick else 4
    scale_requests = 10 if args.quick else 30
    scale_clients = scale_to * 2
    scaling_floor = (
        None if args.quick
        else ((4, 2.5) if cpu_count >= 4 else None)
    )
    curve = []
    for processes in (1, scale_to):
        point = measure_prefork(
            processes,
            clients=scale_clients,
            requests_each=scale_requests,
            payload=payload,
            failures=failures,
            hot_reload=processes > 1,
        )
        curve.append(point)
        print(
            f"scaling: {processes} processes -> {point['rps']} rps "
            f"({point['ok']}/{point['requests']} ok, "
            f"p99 {point['p99_ms']}ms)"
        )
    base_rps = curve[0]["rps"] or 1e-9
    speedup = round(curve[-1]["rps"] / base_rps, 2)
    entries["service_scaling"] = {
        "process_count": scale_to,
        "curve": curve,
        "speedup": speedup,
        "hot_reload_exercised": True,
        "gate_enforced": scaling_floor is not None,
    }
    print(
        f"scaling: speedup {speedup}x at {scale_to} processes "
        f"(cpu_count={cpu_count}, "
        f"gate {'enforced' if scaling_floor else 'recorded only'})"
    )
    if scaling_floor is not None:
        gate_processes, floor = scaling_floor
        if scale_to >= gate_processes and speedup < floor:
            failures.append(
                f"scaling: {speedup}x at {scale_to} processes is below "
                f"the {floor}x floor (cpu_count={cpu_count})"
            )

    update_bench_json(args.json, entries, source="bench_service.py")
    print(f"wrote {os.path.normpath(args.json)}")

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
