"""Memoized pair-validation: hash-consing + verdict-cache speedups.

Measures the :class:`~repro.core.memo.ValidationMemo` layer against the
PR-1 compiled fast path (``collect_stats=False``, no memo) on two
Experiment-2 purchase-order corpora:

1. **repetitive** — items cycle through K=8 distinct shapes, so over
   50% of the item subtrees are structural duplicates and the memo
   should collapse them to O(1) hash lookups;
2. **zero-dup** — the default generator gives every item a unique
   ``productName``, so the memo can only miss at the item level; the
   memoized run must stay within a few percent of the plain fast path
   (the overhead bound).

A third record times eager ``warm()`` against ``warm(eager_pairs=
False)`` — the lazy :class:`~repro.automata.compiled.LazyPairTable`
promotion of string-cast machines.

Every record lands in ``BENCH_cast.json`` at the repo root (see
``docs/PERFORMANCE.md`` for the format) via
:func:`repro.bench.reporting.update_bench_json`.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_memo_cast.py [--quick]

``--quick`` shrinks the corpora for CI and only requires the memoized
run to not be slower than the plain fast path on the repetitive corpus
(ratio >= 1.0); the full run enforces the acceptance thresholds:
repetitive >= 2.0x and zero-dup ratio >= 0.95.  Exit status 1 if any
check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.bench.reporting import update_bench_json
from repro.core.cast import CastValidator
from repro.core.memo import ValidationMemo
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_item,
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.dom import Document

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)

#: Distinct item shapes in the repetitive corpus; with hundreds of
#: items, all but K of the item subtrees are structural duplicates.
REPETITIVE_SHAPES = 8


def make_repetitive_po(item_count: int) -> Document:
    """A purchase order whose items cycle through K distinct shapes.

    ``make_item`` derives every field from its index, so reducing the
    index modulo K yields exactly K distinct item subtrees repeated
    ``item_count / K`` times each — the >= 50% duplicate-subtree corpus
    of the acceptance criteria.
    """
    base = make_purchase_order(0)
    items = base.root.find("items")
    assert items is not None
    for index in range(item_count):
        items.append(
            make_item(
                index % REPETITIVE_SHAPES,
                quantity=1 + (index % REPETITIVE_SHAPES),
            )
        )
    return base


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_corpus(
    pair: SchemaPair, document: Document, reps: int
) -> tuple[float, float, float, int]:
    """``(plain_time, memo_time, hit_rate, nodes)`` for one corpus.

    The memoized runner clears its memo before every repetition, so the
    measured speedup comes from duplication *within* the document — a
    rep-2 whole-document root hit would be trivially fast and dishonest.
    Structural hashes are sealed by the first validation and reused by
    all later reps in both configurations, mirroring a parsed document.
    """
    plain = CastValidator(pair, collect_stats=False)
    memo = ValidationMemo()
    memoized = CastValidator(pair, collect_stats=False, memo=memo)
    assert plain.validate(document).valid
    assert memoized.validate(document).valid

    def run_memoized() -> None:
        memo.clear()
        report = memoized.validate(document)
        assert report.valid

    plain_time = best_of(lambda: plain.validate(document), reps)
    base_hits, base_lookups = memo.hits, memo.lookups
    memo_time = best_of(run_memoized, reps)
    lookups = memo.lookups - base_lookups
    hits = memo.hits - base_hits
    hit_rate = hits / lookups if lookups else 0.0
    return plain_time, memo_time, hit_rate, document.size()


def bench_lazy_warm() -> tuple[float, float]:
    """Eager full-product ``warm()`` vs lazy first-touch promotion.

    The lazy figure includes one validation, so it measures what a
    single-document caller actually pays: per-target machines plus only
    the string-cast pairs that document touches.
    """
    document = make_purchase_order(20)

    def eager() -> None:
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        pair.warm()
        assert CastValidator(pair, collect_stats=False).validate(
            document
        ).valid

    def lazy() -> None:
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        pair.warm(eager_pairs=False)
        assert CastValidator(pair, collect_stats=False).validate(
            document
        ).valid

    return best_of(eager, 3), best_of(lazy, 3)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run; only requires memoized >= plain "
        "on the repetitive corpus",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        items, reps = 120, 5
        repetitive_floor, zero_dup_floor = 1.0, None
    else:
        items, reps = 600, 20
        repetitive_floor, zero_dup_floor = 2.0, 0.95

    pair = SchemaPair(
        source_schema_experiment2(), target_schema_experiment2()
    )
    pair.warm()

    repetitive = make_repetitive_po(items)
    zero_dup = make_purchase_order(items)
    rep_plain, rep_memo, rep_hit_rate, rep_nodes = bench_corpus(
        pair, repetitive, reps
    )
    zd_plain, zd_memo, zd_hit_rate, zd_nodes = bench_corpus(
        pair, zero_dup, reps
    )
    eager_time, lazy_time = bench_lazy_warm()

    def ns_per_node(total: float, nodes: int) -> float:
        return total / reps / nodes * 1e9

    rows = [
        (
            f"repetitive PO x{items} (K={REPETITIVE_SHAPES})",
            rep_plain,
            rep_memo,
            rep_hit_rate,
            rep_nodes,
        ),
        (f"zero-dup PO x{items}", zd_plain, zd_memo, zd_hit_rate, zd_nodes),
    ]
    for name, plain_time, memo_time, hit_rate, nodes in rows:
        print(
            f"{name:<34} plain {plain_time * 1e3:8.2f} ms  "
            f"memo {memo_time * 1e3:8.2f} ms  "
            f"{plain_time / memo_time:5.2f}x  "
            f"hit rate {hit_rate:6.1%}  "
            f"({ns_per_node(memo_time, nodes):6.0f} ns/node)"
        )
    print(
        f"{'warm: eager vs lazy pairs':<34} eager {eager_time * 1e3:8.2f} ms"
        f"  lazy {lazy_time * 1e3:8.2f} ms  "
        f"{eager_time / lazy_time:5.2f}x"
    )

    update_bench_json(
        args.json,
        {
            "memo_cast_repetitive": {
                "corpus": "exp2-po-repetitive",
                "corpus_items": items,
                "corpus_nodes": rep_nodes,
                "reps": reps,
                "plain_seconds": rep_plain,
                "memo_seconds": rep_memo,
                "speedup": rep_plain / rep_memo,
                "memo_hit_rate": rep_hit_rate,
                "plain_ns_per_node": ns_per_node(rep_plain, rep_nodes),
                "memo_ns_per_node": ns_per_node(rep_memo, rep_nodes),
            },
            "memo_cast_zero_dup": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_nodes": zd_nodes,
                "reps": reps,
                "plain_seconds": zd_plain,
                "memo_seconds": zd_memo,
                "speedup": zd_plain / zd_memo,
                "memo_hit_rate": zd_hit_rate,
                "plain_ns_per_node": ns_per_node(zd_plain, zd_nodes),
                "memo_ns_per_node": ns_per_node(zd_memo, zd_nodes),
            },
            "lazy_pair_warm": {
                "corpus": "exp2-pair",
                "eager_seconds": eager_time,
                "lazy_seconds": lazy_time,
                "speedup": eager_time / lazy_time,
            },
        },
        source="bench_memo_cast.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    rep_speedup = rep_plain / rep_memo
    zd_ratio = zd_plain / zd_memo
    if rep_speedup < repetitive_floor:
        failures.append(
            f"repetitive-corpus speedup {rep_speedup:.2f}x "
            f"< {repetitive_floor}x"
        )
    if zero_dup_floor is not None and zd_ratio < zero_dup_floor:
        failures.append(
            f"zero-dup corpus ratio {zd_ratio:.2f} < {zero_dup_floor} "
            "(memo overhead above the 5% budget)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: memoized cast meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
