"""Figure 3a — Experiment 1: billTo optional → required.

Regenerates the paper's first plot: validation time versus the number
of ``item`` elements, for the schema cast validator and the full
(Xerces-style) validator.  Expected shape: the cast validator's time is
**constant** in document size (it decides at the purchaseOrder content
model), the full validator's time is **linear**.

Run ``python benchmarks/bench_exp1_figure3a.py`` for the printed series,
or ``pytest benchmarks/bench_exp1_figure3a.py --benchmark-only`` for
statistics per point.
"""

import pytest

from repro.workloads.purchase_orders import PAPER_ITEM_COUNTS, make_purchase_order

DOCS = {}


def _doc(count):
    if count not in DOCS:
        DOCS[count] = make_purchase_order(count)
    return DOCS[count]


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_cast_validator(benchmark, exp1_cast, items):
    doc = _doc(items)
    report = benchmark(exp1_cast.validate, doc)
    assert report.valid
    # The headline claim: constant work regardless of document size.
    assert report.stats.nodes_visited <= 2


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_full_validator(benchmark, exp1_full, items):
    doc = _doc(items)
    report = benchmark(exp1_full.validate, doc)
    assert report.valid
    assert report.stats.nodes_visited == doc.size()


if __name__ == "__main__":
    from repro.bench.harness import report_experiment1, run_experiment1

    print(report_experiment1(run_experiment1()))
