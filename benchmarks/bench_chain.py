"""Evolution-chain composition: one fused cast for S₁→…→Sₙ, and the
static update-safety verdict that skips revalidation entirely.

Two gates, both over the k-hop purchase-order drift workload
(:mod:`repro.workloads.evolution`):

1. **composed vs sequential** — a 3-hop monotone tighten history
   (quantity bound 256→128→64→32).  The hop analysis absorbs the two
   intermediate checks into the final one, so the composed pair casts
   the document *once* where the baseline casts it n−1 = 3 times.
   Gate: the composed single pass must be **≥ 2×** the sequential
   per-hop pipeline end to end on premise-valid documents.
2. **always-safe skip** — a parametric update program (delete the
   optional ship-date element) statically classified ``always-safe``
   for its pair, so :func:`cast_text_with_program` answers without
   touching the document.  Gate: the zero-traversal verdict must be
   **≥ 100×** faster per call than applying the program and running
   the full cast-with-modifications revalidation.

Before timing anything, the composed cast and the sequential pipeline
are cross-checked document by document — verdict, reason, and error
position must match exactly on conforming documents *and* on documents
built to trip each individual hop — and the static always-safe verdict
is cross-checked against actually applying the program and
revalidating.  Numbers are refused if anything disagrees.

Records merge into ``BENCH_cast.json`` at the repo root via
:func:`repro.bench.reporting.update_bench_json`; chain records are
stamped with ``chain_length`` so a speedup is never read without n.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_chain.py [--quick]

``--quick`` shrinks the corpora for CI and relaxes the floors to 1.3x
(composed) / 20x (always-safe); the full run enforces the acceptance
thresholds: composed >= 2.0x, always-safe >= 100x.  Exit status 1 if
any check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.bench.reporting import update_bench_json
from repro.core.castmods import CastWithModificationsValidator
from repro.core.cast import cast_text
from repro.core.updateprog import (
    Classification,
    DeleteRule,
    UpdateProgram,
    apply_program,
    cast_text_with_program,
    classify,
)
from repro.core.updates import UpdateSession
from repro.schema.chain import SchemaChain
from repro.schema.registry import SchemaPair
from repro.workloads.evolution import (
    conforming_document,
    drift_chain,
    po_variant,
    violating_document,
)
from repro.xmltree.parser import parse

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_chain_equivalence(chain: SchemaChain, texts: list[str]) -> None:
    """Refuse to publish numbers for pipelines that disagree.

    ``chain.cast_text`` (fused composed pass with sequential fallback)
    must match ``chain.sequential_cast_text`` on verdict, reason, and
    error position for every corpus document, and a raw composed accept
    must imply a sequential accept (soundness of the composition).
    """
    for text in texts:
        fused = chain.cast_text(text)
        sequential = chain.sequential_cast_text(text)
        assert (fused.valid, fused.reason, fused.path) == (
            sequential.valid,
            sequential.reason,
            sequential.path,
        ), "composed chain cast diverged from the per-hop pipeline"
        composed = chain.cast_composed_text(text)
        assert not composed.valid or sequential.valid, (
            "raw composed pass accepted a document a hop rejects"
        )


def apply_and_revalidate(pair: SchemaPair, program: UpdateProgram,
                         text: str):
    """The baseline the always-safe verdict skips: parse, replay the
    program as instance deltas, run the full cast-with-modifications
    revalidation."""
    document = parse(text, symbols=pair.symbols)
    session = UpdateSession(document)
    apply_program(session, program)
    return CastWithModificationsValidator(
        pair, collect_stats=False
    ).validate(session)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run with relaxed floors "
        "(composed >= 1.3x, always-safe >= 20x)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        items, reps, static_reps = 60, 5, 500
        composed_floor, skip_floor = 1.3, 20.0
    else:
        items, reps, static_reps = 300, 10, 2000
        composed_floor, skip_floor = 2.0, 100.0

    # -- gate 1: composed single pass vs sequential 3-hop casts -------------
    schemas, kinds = drift_chain(3)
    chain = SchemaChain(schemas, name="po-tighten-3hop")
    chain.warm()
    for hop in chain.hops:
        hop.warm()
    analysis = chain.analysis()
    assert len(analysis["checked"]) == 1, (
        "monotone tighten history did not absorb to one residual check: "
        f"{analysis!r}"
    )

    text = conforming_document(schemas, item_count=items)
    corpus_bytes = len(text.encode("utf-8"))
    mb = corpus_bytes / 1e6
    trip_texts = [
        violating_document(schemas, kinds, hop, item_count=items)
        for hop in range(len(kinds))
    ]
    check_chain_equivalence(chain, [text] + trip_texts)
    assert chain.cast_text(text).valid, (
        "conforming corpus document rejected by the chain"
    )

    composed_s = best_of(lambda: chain.cast_text(text), reps)
    sequential_s = best_of(
        lambda: chain.sequential_cast_text(text), reps
    )
    composed_speedup = sequential_s / composed_s

    print(
        f"{'sequential (3 hop casts)':<28} {sequential_s * 1e3:8.2f} ms  "
        f"({mb * reps / sequential_s:7.1f} MB/s)"
    )
    print(
        f"{'composed (1 fused cast)':<28} {composed_s * 1e3:8.2f} ms  "
        f"{composed_speedup:6.2f}x  ({mb * reps / composed_s:7.1f} MB/s)"
    )

    # -- gate 2: always-safe classification vs full revalidation -----------
    schema = po_variant()
    pair = SchemaPair(schema, po_variant())
    pair.warm()
    program = UpdateProgram((DeleteRule("shipDate"),))
    classification = classify(pair, program)
    assert classification is Classification.ALWAYS_SAFE, (
        f"delete-optional program classified {classification.value!r}, "
        "not always-safe"
    )

    safe_text = conforming_document([schema], item_count=items)
    replayed = apply_and_revalidate(pair, program, safe_text)
    static_report, _ = cast_text_with_program(pair, program, safe_text)
    assert replayed.valid and static_report.valid, (
        "always-safe verdict diverged from apply-and-revalidate"
    )

    revalidate_s = best_of(
        lambda: apply_and_revalidate(pair, program, safe_text), reps
    )
    static_s = best_of(
        lambda: cast_text_with_program(pair, program, safe_text),
        static_reps,
    )
    revalidate_per_call = revalidate_s / reps
    static_per_call = static_s / static_reps
    skip_speedup = revalidate_per_call / static_per_call

    print(
        f"{'apply + full revalidation':<28} "
        f"{revalidate_per_call * 1e3:8.3f} ms/call"
    )
    print(
        f"{'always-safe static verdict':<28} "
        f"{static_per_call * 1e3:8.3f} ms/call  {skip_speedup:6.0f}x"
    )

    update_bench_json(
        args.json,
        {
            "chain_composed_vs_sequential": {
                "corpus": "po-drift-tighten",
                "corpus_items": items,
                "corpus_bytes": corpus_bytes,
                "reps": reps,
                "hops": chain.hop_count,
                "residual_checks": len(analysis["checked"]),
                "absorbed_checks": len(analysis["absorbed"]),
                "sequential_seconds": sequential_s,
                "composed_seconds": composed_s,
                "speedup": composed_speedup,
                "sequential_mb_per_s": mb * reps / sequential_s,
                "composed_mb_per_s": mb * reps / composed_s,
            },
        },
        source="bench_chain.py",
        chain_length=len(chain.schemas),
    )
    update_bench_json(
        args.json,
        {
            "chain_always_safe_skip": {
                "corpus": "po-drift-tighten",
                "corpus_items": items,
                "corpus_bytes": len(safe_text.encode("utf-8")),
                "program": "delete shipDate (optional)",
                "classification": classification.value,
                "revalidate_seconds_per_call": revalidate_per_call,
                "static_seconds_per_call": static_per_call,
                "speedup": skip_speedup,
            },
        },
        source="bench_chain.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    if composed_speedup < composed_floor:
        failures.append(
            f"composed-chain speedup {composed_speedup:.2f}x "
            f"< {composed_floor}x"
        )
    if skip_speedup < skip_floor:
        failures.append(
            f"always-safe skip speedup {skip_speedup:.0f}x "
            f"< {skip_floor:.0f}x"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: chain composition meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
