"""Shared fixtures for the benchmark suite.

Schema pairs are built once per session (they are the *static*
preprocessing of the paper's setup; their cost is measured separately in
``bench_precompute.py``).
"""

from __future__ import annotations

import pytest

from repro.baselines.full import FullValidator
from repro.core.cast import CastValidator
from repro.schema.registry import SchemaPair
from repro.workloads import purchase_orders as po


@pytest.fixture(scope="session")
def exp1_pair():
    pair = SchemaPair(
        po.source_schema_experiment1(), po.target_schema_experiment1()
    )
    pair.warm()
    return pair


@pytest.fixture(scope="session")
def exp2_pair():
    pair = SchemaPair(
        po.source_schema_experiment2(), po.target_schema_experiment2()
    )
    pair.warm()
    return pair


@pytest.fixture(scope="session")
def exp1_cast(exp1_pair):
    return CastValidator(exp1_pair)


@pytest.fixture(scope="session")
def exp2_cast(exp2_pair):
    return CastValidator(exp2_pair)


@pytest.fixture(scope="session")
def exp1_full(exp1_pair):
    return FullValidator(exp1_pair.target)


@pytest.fixture(scope="session")
def exp2_full(exp2_pair):
    return FullValidator(exp2_pair.target)
