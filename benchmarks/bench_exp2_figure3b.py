"""Figure 3b — Experiment 2: quantity ``maxExclusive`` 200 → 100.

Regenerates the paper's second plot: validation time versus item count
when every ``quantity`` value must be rechecked.  Expected shape: both
validators linear, the schema cast validator a constant factor faster
(the paper reports ≈30%; we skip more aggressively, see EXPERIMENTS.md).
"""

import pytest

from repro.workloads.purchase_orders import PAPER_ITEM_COUNTS, make_purchase_order

DOCS = {}


def _doc(count):
    if count not in DOCS:
        DOCS[count] = make_purchase_order(count)
    return DOCS[count]


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_cast_validator(benchmark, exp2_cast, items):
    doc = _doc(items)
    report = benchmark(exp2_cast.validate, doc)
    assert report.valid
    # Exactly one value check per item: work is linear in items.
    assert report.stats.simple_values_checked == items


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_full_validator(benchmark, exp2_full, items):
    doc = _doc(items)
    report = benchmark(exp2_full.validate, doc)
    assert report.valid


def test_cast_faster_than_full(exp2_cast, exp2_full):
    """The Figure 3b ordering, asserted on wall-clock directly."""
    from repro.bench.harness import time_call

    doc = _doc(500)
    cast_time = time_call(lambda: exp2_cast.validate(doc), repeat=3)
    full_time = time_call(lambda: exp2_full.validate(doc), repeat=3)
    assert cast_time < full_time


if __name__ == "__main__":
    from repro.bench.harness import report_experiment2, run_experiment2

    print(report_experiment2(run_experiment2()))
