"""A2 — with-modifications scanning strategies vs edit position.

The Section 4.3 discussion: forward scanning wins when edits cluster at
the front, the reverse-automaton variant wins for appends, and the AUTO
policy should track the minimum of the two.  Expected shape: symbols
scanned by FORWARD grows with the edit position, REVERSE shrinks, AUTO
follows the lower envelope.
"""

import random

import pytest

from repro.automata.stringcast import Strategy, StringUpdateRevalidator
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model

LENGTH = 2000


def _setup():
    dfa = compile_dfa(parse_content_model("a,(a|b)*,b"), frozenset("ab"))
    rng = random.Random(3)
    base = ["a"] + [rng.choice("ab") for _ in range(LENGTH - 2)] + ["b"]
    return StringUpdateRevalidator(dfa), base


def _edit_at(base, fraction):
    index = 1 + min(int(fraction * (LENGTH - 3)), LENGTH - 3)
    modified = list(base)
    modified[index] = "a" if modified[index] == "b" else "b"
    return modified


@pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
@pytest.mark.parametrize(
    "strategy", [Strategy.FORWARD, Strategy.REVERSE, Strategy.AUTO]
)
def test_strategy_at_position(benchmark, fraction, strategy):
    validator, base = _setup()
    modified = _edit_at(base, fraction)
    result = benchmark(
        validator.validate_modified, base, modified, strategy=strategy
    )
    assert result.accepted  # middle-region flips stay in the language


def test_auto_tracks_lower_envelope():
    validator, base = _setup()
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        modified = _edit_at(base, fraction)
        forward = validator.validate_modified(
            base, modified, strategy=Strategy.FORWARD
        )
        reverse = validator.validate_modified(
            base, modified, strategy=Strategy.REVERSE
        )
        auto = validator.validate_modified(
            base, modified, strategy=Strategy.AUTO
        )
        assert auto.symbols_scanned <= max(
            forward.symbols_scanned, reverse.symbols_scanned
        )
        # Within a small constant of the better direction.
        assert auto.symbols_scanned <= min(
            forward.symbols_scanned, reverse.symbols_scanned
        ) + 4


if __name__ == "__main__":
    from repro.bench.ablations import report_mods_position, run_mods_position

    print(report_mods_position(run_mods_position()))
