"""Compiled schema-pair artifacts: the numbers behind the optimisation.

Three measurements, printed as a small table and checked against
thresholds so CI can run this as a smoke test:

1. **micro** — immediate-decision content scans, dict rows
   (``transitions[q][label]``) versus compiled dense tuple rows
   (``rows[q][sid]``) on Experiment-2 content words;
2. **end-to-end** — the seed ``CastValidator`` (instrumented, dict
   rows) versus the stats-off compiled fast path on the Experiment-2
   purchase-order workload;
3. **artifacts** — cold ``SchemaPair`` construction + ``warm()``
   versus loading the pickled artifact back, on the A4 random-schema
   family used by ``bench_precompute.py``.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_compiled_pair.py [--quick]

``--quick`` shrinks the workloads for CI and only requires the
compiled path to not be *slower* than the dict path (ratio > 1.0);
the full run enforces the acceptance thresholds: end-to-end >= 1.5x
and artifact load >= 10x.  Exit status 1 if any check fails.

Results are also merged into ``BENCH_cast.json`` at the repo root
(``--json`` overrides), alongside the ``bench_memo_cast.py`` records.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import time
from typing import Callable

from repro.bench.reporting import update_bench_json
from repro.core.cast import CastValidator
from repro.schema import artifacts
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_micro(pair: SchemaPair, reps: int) -> tuple[float, float]:
    """Dict-row ``scan`` vs compiled ``decide`` on Items content."""
    word = ["item"] * 200
    immed = pair.target_immed("Items")
    compiled = pair.target_immed_compiled("Items")
    ids = pair.symbols.encode(word)
    assert immed.scan(word).accepted == compiled.decide(ids)
    dict_time = best_of(lambda: immed.scan(word), reps)
    compiled_time = best_of(lambda: compiled.decide(ids), reps)
    return dict_time, compiled_time


def bench_end_to_end(
    pair: SchemaPair, items: int, reps: int
) -> tuple[float, float]:
    """Seed (instrumented) validator vs compiled stats-off fast path."""
    document = make_purchase_order(items)
    seed = CastValidator(pair, collect_stats=True)
    fast = CastValidator(pair, collect_stats=False)
    assert seed.validate(document).valid
    assert fast.validate(document).valid
    seed_time = best_of(lambda: seed.validate(document), reps)
    fast_time = best_of(lambda: fast.validate(document), reps)
    return seed_time, fast_time


def bench_artifacts(
    sizes: list[int], seed: int = 5
) -> tuple[float, float]:
    """Cold build+warm vs artifact load over the A4 schema family."""
    rng = random.Random(seed)
    schema_pairs = []
    for size in sizes:
        while True:
            try:
                source = random_schema(
                    rng,
                    num_labels=size,
                    num_complex=size,
                    num_simple=max(2, size // 4),
                )
                target = random_schema(
                    rng,
                    num_labels=size,
                    num_complex=size,
                    num_simple=max(2, size // 4),
                )
            except Exception:
                continue
            schema_pairs.append((source, target))
            break
    cold_total = load_total = 0.0
    with tempfile.TemporaryDirectory() as cache_dir:
        for index, (source, target) in enumerate(schema_pairs):
            start = time.perf_counter()
            pair = SchemaPair(source, target)
            pair.warm()
            cold_total += time.perf_counter() - start
            path = os.path.join(cache_dir, f"pair{index}.pkl")
            artifacts.save(pair, path)
            load_total += best_of(lambda p=path: artifacts.load(p), 1)
    return cold_total, load_total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run; only requires compiled >= dict",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..",
            "BENCH_cast.json",
        ),
        help="where to merge the machine-readable results",
    )
    args = parser.parse_args(argv)

    if args.quick:
        micro_reps, e2e_items, e2e_reps = 200, 100, 10
        sizes = [6, 8]
        e2e_floor, artifact_floor = 1.0, 2.0
    else:
        micro_reps, e2e_items, e2e_reps = 2000, 200, 40
        sizes = [6, 8, 10, 12]
        e2e_floor, artifact_floor = 1.5, 10.0

    pair = SchemaPair(
        source_schema_experiment2(), target_schema_experiment2()
    )
    pair.warm()

    dict_time, compiled_time = bench_micro(pair, micro_reps)
    seed_time, fast_time = bench_end_to_end(pair, e2e_items, e2e_reps)
    cold_time, load_time = bench_artifacts(sizes)

    rows = [
        (
            "micro: Items content scan",
            f"dict {dict_time * 1e3:8.2f} ms",
            f"compiled {compiled_time * 1e3:8.2f} ms",
            dict_time / compiled_time,
        ),
        (
            f"end-to-end: exp2 PO x{e2e_items}",
            f"seed {seed_time * 1e3:8.2f} ms",
            f"fast {fast_time * 1e3:8.2f} ms",
            seed_time / fast_time,
        ),
        (
            f"artifacts: A4 sizes {sizes}",
            f"cold {cold_time * 1e3:8.2f} ms",
            f"load {load_time * 1e3:8.2f} ms",
            cold_time / load_time,
        ),
    ]
    for name, left, right, speedup in rows:
        print(f"{name:<34} {left}  {right}  {speedup:6.2f}x")

    update_bench_json(
        args.json,
        {
            "compiled_micro_scan": {
                "corpus": "exp2-items-word-x200",
                "reps": micro_reps,
                "dict_seconds": dict_time,
                "compiled_seconds": compiled_time,
                "speedup": dict_time / compiled_time,
            },
            "compiled_end_to_end": {
                "corpus": f"exp2-po-x{e2e_items}",
                "reps": e2e_reps,
                "seed_seconds": seed_time,
                "fast_seconds": fast_time,
                "speedup": seed_time / fast_time,
            },
            "artifact_load": {
                "corpus": f"a4-random-schemas-{sizes}",
                "cold_seconds": cold_time,
                "load_seconds": load_time,
                "speedup": cold_time / load_time,
            },
        },
        source="bench_compiled_pair.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    micro_speedup = dict_time / compiled_time
    e2e_speedup = seed_time / fast_time
    artifact_speedup = cold_time / load_time
    if micro_speedup <= 1.0:
        failures.append(
            f"compiled scan slower than dict rows ({micro_speedup:.2f}x)"
        )
    if e2e_speedup < e2e_floor:
        failures.append(
            f"end-to-end speedup {e2e_speedup:.2f}x < {e2e_floor}x"
        )
    if artifact_speedup < artifact_floor:
        failures.append(
            f"artifact load speedup {artifact_speedup:.2f}x "
            f"< {artifact_floor}x"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: compiled pair meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
