"""Parse-path speedups: regex-bulk lexer + lex-time symbol interning.

The paper's runtime is parse-dominated once the validators run on
compiled tables, so this benchmark gates the PR-4 parse-path work on
the Experiment-2 purchase-order corpus:

1. **lexer-level** — the master-regex token stream
   (:func:`repro.xmltree.lexer.iter_tokens`) against the retired
   char-at-a-time scanner, preserved verbatim as
   :func:`repro.xmltree.reference.reference_tokens`;
2. **end-to-end cast** — ``reference_parse`` + compiled cast against
   ``parse(symbols=pair.symbols)`` + the same cast, i.e. the whole
   revalidation pipeline a batch worker runs per document;
3. **fused kernel (hardened event path)** — the fused parse+validate
   loop of :mod:`repro.core.castkernel` (``validate_text``, no byte
   skips) against the retained event pipeline
   (``validate_text_events``), first on the pure-python backend, then —
   when the C extension builds — on the compiled backend as a separate
   record.

Before timing anything, the pipelines are cross-checked: token streams
must match element-for-element, the DOM and streaming cast verdicts on
the new parser must equal the verdicts on the reference parser, and
the fused kernel's full report (verdict, reason, path, stats) must be
byte-identical to the event pipeline's for every corpus document.

Every record lands in ``BENCH_cast.json`` at the repo root (see
``docs/PERFORMANCE.md``) via
:func:`repro.bench.reporting.update_bench_json`.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parse.py [--quick]

``--quick`` shrinks the corpus for CI and relaxes the floors to 1.5x
(lexer) / 1.1x (end-to-end) / 1.5x (kernel); the full run enforces the
acceptance thresholds: lexer >= 3.0x, end-to-end cast >= 1.5x, and
fused kernel >= 3.0x over the event pipeline on the pure-python
backend alone.  Exit status 1 if any check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro import kernel
from repro.bench.reporting import update_bench_json
from repro.core.cast import CastValidator
from repro.core.streaming import StreamingCastValidator
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.lexer import iter_tokens
from repro.xmltree.parser import parse
from repro.xmltree.reference import reference_parse, reference_tokens
from repro.xmltree.serializer import serialize

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def best_of_pair(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    reps: int,
    rounds: int = 5,
) -> tuple[float, float]:
    """Interleaved best-of for a speedup ratio.

    Measuring the two sides in separate blocks lets a CPU-frequency or
    scheduler epoch land entirely on one side and skew the ratio
    (visible on single-core VMs).  Alternating A/B each round samples
    the same epochs on both sides, so the per-side minima are
    comparable.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(reps):
            fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def check_equivalence(pair: SchemaPair, texts: list[str]) -> None:
    """Refuse to publish numbers for pipelines that disagree.

    Token streams must match exactly, and the cast verdict must be
    identical across (reference parse, new parse, streaming) for every
    corpus document.
    """
    validator = CastValidator(pair, collect_stats=False)
    streaming = StreamingCastValidator(pair)
    for text in texts:
        old_tokens = list(reference_tokens(text))
        new_tokens = list(iter_tokens(text))
        assert old_tokens == new_tokens, "token streams diverged"
        old_report = validator.validate(reference_parse(text))
        new_report = validator.validate(parse(text, symbols=pair.symbols))
        stream_report = streaming.validate_text(text)
        assert (old_report.valid, old_report.reason) == (
            new_report.valid,
            new_report.reason,
        ), "DOM cast verdict diverged between parsers"
        assert old_report.valid == stream_report.valid, (
            "streaming cast verdict diverged"
        )
        event_report = streaming.validate_text_events(text)
        assert (
            stream_report.valid,
            stream_report.reason,
            stream_report.path,
            stream_report.stats,
        ) == (
            event_report.valid,
            event_report.reason,
            event_report.path,
            event_report.stats,
        ), "fused kernel report diverged from the event pipeline"


def drain(tokens) -> None:
    for _ in tokens:
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run with relaxed floors "
        "(lexer >= 1.5x, end-to-end >= 1.1x)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        items, reps = 150, 5
        lexer_floor, cast_floor, kernel_floor = 1.5, 1.1, 1.5
    else:
        items, reps = 800, 10
        lexer_floor, cast_floor, kernel_floor = 3.0, 1.5, 3.0

    pair = SchemaPair(
        source_schema_experiment2(), target_schema_experiment2()
    )
    pair.warm()

    document = make_purchase_order(items)
    text = serialize(document, indent="  ")
    small = serialize(make_purchase_order(max(2, items // 50)), indent="  ")
    check_equivalence(pair, [text, small])

    # -- gate 1: lexer-level ------------------------------------------------
    old_lex, new_lex = best_of_pair(
        lambda: drain(reference_tokens(text)),
        lambda: drain(iter_tokens(text)),
        reps,
    )
    lexer_speedup = old_lex / new_lex

    # -- gate 2: end-to-end cast (parse + validate) -------------------------
    validator = CastValidator(pair, collect_stats=False)

    def old_pipeline() -> None:
        report = validator.validate(reference_parse(text))
        assert report.valid

    def new_pipeline() -> None:
        report = validator.validate(parse(text, symbols=pair.symbols))
        assert report.valid

    old_e2e, new_e2e = best_of_pair(old_pipeline, new_pipeline, reps)
    cast_speedup = old_e2e / new_e2e

    # -- gate 3: fused kernel vs the event pipeline -------------------------
    # The pure-python kernel alone must clear the floor; the compiled
    # backend, when it builds, is measured as a further gain on top.
    streaming = StreamingCastValidator(pair)
    prior_backend = kernel.backend_name()
    kernel.activate("py")
    try:
        event_kernel, fused_py = best_of_pair(
            lambda: streaming.validate_text_events(text),
            lambda: streaming.validate_text(text),
            reps,
        )
    finally:
        kernel.activate(prior_backend)
    kernel_speedup = event_kernel / fused_py

    fused_compiled = None
    try:
        kernel.activate("compiled")
    except Exception as error:
        print(f"compiled kernel unavailable, skipping: {error}")
    else:
        try:
            fused_compiled = best_of(
                lambda: streaming.validate_text(text), reps
            )
        finally:
            kernel.activate(prior_backend)

    mb = len(text.encode("utf-8")) / 1e6
    print(
        f"{'lexer (tokens only)':<28} ref {old_lex * 1e3:8.2f} ms  "
        f"bulk {new_lex * 1e3:8.2f} ms  {lexer_speedup:5.2f}x  "
        f"({mb * reps / new_lex:6.1f} MB/s)"
    )
    print(
        f"{'cast end-to-end':<28} ref {old_e2e * 1e3:8.2f} ms  "
        f"new {new_e2e * 1e3:8.2f} ms  {cast_speedup:5.2f}x  "
        f"({mb * reps / new_e2e:6.1f} MB/s)"
    )
    print(
        f"{'fused kernel (py)':<28} evt {event_kernel * 1e3:8.2f} ms  "
        f"fus {fused_py * 1e3:8.2f} ms  {kernel_speedup:5.2f}x  "
        f"({mb * reps / fused_py:6.1f} MB/s)"
    )
    if fused_compiled is not None:
        print(
            f"{'fused kernel (compiled)':<28} evt "
            f"{event_kernel * 1e3:8.2f} ms  "
            f"fus {fused_compiled * 1e3:8.2f} ms  "
            f"{event_kernel / fused_compiled:5.2f}x  "
            f"({mb * reps / fused_compiled:6.1f} MB/s)"
        )

    update_bench_json(
        args.json,
        {
            "parse_lexer_bulk": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_bytes": len(text.encode("utf-8")),
                "reps": reps,
                "reference_seconds": old_lex,
                "bulk_seconds": new_lex,
                "speedup": lexer_speedup,
                "bulk_mb_per_s": mb * reps / new_lex,
            },
            "parse_cast_end_to_end": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_bytes": len(text.encode("utf-8")),
                "reps": reps,
                "reference_seconds": old_e2e,
                "new_seconds": new_e2e,
                "speedup": cast_speedup,
                "new_mb_per_s": mb * reps / new_e2e,
            },
            "kernel_fused_hardened": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_bytes": len(text.encode("utf-8")),
                "reps": reps,
                "event_seconds": event_kernel,
                "fused_py_seconds": fused_py,
                "speedup": kernel_speedup,
                "event_mb_per_s": mb * reps / event_kernel,
                "fused_py_mb_per_s": mb * reps / fused_py,
                **(
                    {
                        "fused_compiled_seconds": fused_compiled,
                        "compiled_speedup": event_kernel / fused_compiled,
                        "fused_compiled_mb_per_s": mb * reps
                        / fused_compiled,
                    }
                    if fused_compiled is not None
                    else {"compiled_backend": "unavailable"}
                ),
            },
        },
        source="bench_parse.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    if lexer_speedup < lexer_floor:
        failures.append(
            f"lexer speedup {lexer_speedup:.2f}x < {lexer_floor}x"
        )
    if cast_speedup < cast_floor:
        failures.append(
            f"end-to-end cast speedup {cast_speedup:.2f}x < {cast_floor}x"
        )
    if kernel_speedup < kernel_floor:
        failures.append(
            f"fused kernel speedup {kernel_speedup:.2f}x "
            f"< {kernel_floor}x (pure-python backend)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: parse path meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
