"""Parse-path speedups: regex-bulk lexer + lex-time symbol interning.

The paper's runtime is parse-dominated once the validators run on
compiled tables, so this benchmark gates the PR-4 parse-path work on
the Experiment-2 purchase-order corpus:

1. **lexer-level** — the master-regex token stream
   (:func:`repro.xmltree.lexer.iter_tokens`) against the retired
   char-at-a-time scanner, preserved verbatim as
   :func:`repro.xmltree.reference.reference_tokens`;
2. **end-to-end cast** — ``reference_parse`` + compiled cast against
   ``parse(symbols=pair.symbols)`` + the same cast, i.e. the whole
   revalidation pipeline a batch worker runs per document.

Before timing anything, the two pipelines are cross-checked: token
streams must match element-for-element, and the DOM and streaming cast
verdicts on the new parser must equal the verdicts on the reference
parser for every corpus document.

Every record lands in ``BENCH_cast.json`` at the repo root (see
``docs/PERFORMANCE.md``) via
:func:`repro.bench.reporting.update_bench_json`.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parse.py [--quick]

``--quick`` shrinks the corpus for CI and relaxes the floors to 1.5x
(lexer) / 1.1x (end-to-end); the full run enforces the acceptance
thresholds: lexer >= 3.0x and end-to-end cast >= 1.5x.  Exit status 1
if any check fails.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.bench.reporting import update_bench_json
from repro.core.cast import CastValidator
from repro.core.streaming import StreamingCastValidator
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.lexer import iter_tokens
from repro.xmltree.parser import parse
from repro.xmltree.reference import reference_parse, reference_tokens
from repro.xmltree.serializer import serialize

DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cast.json"
)


def best_of(fn: Callable[[], object], reps: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` wall-clock for ``reps`` calls (noise floor)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(pair: SchemaPair, texts: list[str]) -> None:
    """Refuse to publish numbers for pipelines that disagree.

    Token streams must match exactly, and the cast verdict must be
    identical across (reference parse, new parse, streaming) for every
    corpus document.
    """
    validator = CastValidator(pair, collect_stats=False)
    streaming = StreamingCastValidator(pair)
    for text in texts:
        old_tokens = list(reference_tokens(text))
        new_tokens = list(iter_tokens(text))
        assert old_tokens == new_tokens, "token streams diverged"
        old_report = validator.validate(reference_parse(text))
        new_report = validator.validate(parse(text, symbols=pair.symbols))
        stream_report = streaming.validate_text(text)
        assert (old_report.valid, old_report.reason) == (
            new_report.valid,
            new_report.reason,
        ), "DOM cast verdict diverged between parsers"
        assert old_report.valid == stream_report.valid, (
            "streaming cast verdict diverged"
        )


def drain(tokens) -> None:
    for _ in tokens:
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI smoke run with relaxed floors "
        "(lexer >= 1.5x, end-to-end >= 1.1x)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="where to write the machine-readable results "
        "(default: BENCH_cast.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        items, reps = 150, 5
        lexer_floor, cast_floor = 1.5, 1.1
    else:
        items, reps = 800, 10
        lexer_floor, cast_floor = 3.0, 1.5

    pair = SchemaPair(
        source_schema_experiment2(), target_schema_experiment2()
    )
    pair.warm()

    document = make_purchase_order(items)
    text = serialize(document, indent="  ")
    small = serialize(make_purchase_order(max(2, items // 50)), indent="  ")
    check_equivalence(pair, [text, small])

    # -- gate 1: lexer-level ------------------------------------------------
    old_lex = best_of(lambda: drain(reference_tokens(text)), reps)
    new_lex = best_of(lambda: drain(iter_tokens(text)), reps)
    lexer_speedup = old_lex / new_lex

    # -- gate 2: end-to-end cast (parse + validate) -------------------------
    validator = CastValidator(pair, collect_stats=False)

    def old_pipeline() -> None:
        report = validator.validate(reference_parse(text))
        assert report.valid

    def new_pipeline() -> None:
        report = validator.validate(parse(text, symbols=pair.symbols))
        assert report.valid

    old_e2e = best_of(old_pipeline, reps)
    new_e2e = best_of(new_pipeline, reps)
    cast_speedup = old_e2e / new_e2e

    mb = len(text.encode("utf-8")) / 1e6
    print(
        f"{'lexer (tokens only)':<28} ref {old_lex * 1e3:8.2f} ms  "
        f"bulk {new_lex * 1e3:8.2f} ms  {lexer_speedup:5.2f}x  "
        f"({mb * reps / new_lex:6.1f} MB/s)"
    )
    print(
        f"{'cast end-to-end':<28} ref {old_e2e * 1e3:8.2f} ms  "
        f"new {new_e2e * 1e3:8.2f} ms  {cast_speedup:5.2f}x"
    )

    update_bench_json(
        args.json,
        {
            "parse_lexer_bulk": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_bytes": len(text.encode("utf-8")),
                "reps": reps,
                "reference_seconds": old_lex,
                "bulk_seconds": new_lex,
                "speedup": lexer_speedup,
                "bulk_mb_per_s": mb * reps / new_lex,
            },
            "parse_cast_end_to_end": {
                "corpus": "exp2-po-unique",
                "corpus_items": items,
                "corpus_bytes": len(text.encode("utf-8")),
                "reps": reps,
                "reference_seconds": old_e2e,
                "new_seconds": new_e2e,
                "speedup": cast_speedup,
            },
        },
        source="bench_parse.py",
    )
    print(f"wrote {os.path.normpath(args.json)}")

    failures = []
    if lexer_speedup < lexer_floor:
        failures.append(
            f"lexer speedup {lexer_speedup:.2f}x < {lexer_floor}x"
        )
    if cast_speedup < cast_floor:
        failures.append(
            f"end-to-end cast speedup {cast_speedup:.2f}x < {cast_floor}x"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: parse path meets thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
