"""Table 3 — nodes traversed during validation in Experiment 2.

Regenerates the paper's node-count table: for each document size, how
many nodes the schema cast validator touches versus the full validator.
Expected shape: both linear in item count; cast strictly below full for
every size; the per-item delta constant.  (The paper's absolute counts
include DOM-navigation nodes Xerces touches; our counters count
validation visits only, so our ratio is lower — see EXPERIMENTS.md.)
"""

import pytest

from repro.workloads.purchase_orders import (
    PAPER_ITEM_COUNTS,
    PAPER_TABLE3_NODES,
    make_purchase_order,
)


@pytest.mark.parametrize("items", PAPER_ITEM_COUNTS)
def test_node_counts(benchmark, exp2_cast, exp2_full, items):
    doc = make_purchase_order(items)

    def both():
        return (
            exp2_cast.validate(doc).stats.nodes_visited,
            exp2_full.validate(doc).stats.nodes_visited,
        )

    cast_nodes, full_nodes = benchmark(both)
    paper_cast, paper_full = PAPER_TABLE3_NODES[items]
    assert cast_nodes < full_nodes                  # same ordering
    assert paper_cast < paper_full


def test_per_item_costs_are_constant(exp2_cast, exp2_full):
    """Linear-in-items shape: the per-item node cost must not drift."""

    def per_item(validator):
        small = validator.validate(make_purchase_order(100))
        large = validator.validate(make_purchase_order(1000))
        return (
            large.stats.nodes_visited - small.stats.nodes_visited
        ) / 900

    cast_slope = per_item(exp2_cast)
    full_slope = per_item(exp2_full)
    assert cast_slope == pytest.approx(round(cast_slope))
    assert full_slope == pytest.approx(round(full_slope))
    assert cast_slope < full_slope
    # Paper slopes: 12 cast nodes/item vs 15 Xerces nodes/item.
    paper_cast_slope = (12011 - 1211) / 900
    paper_full_slope = (15044 - 1544) / 900
    assert paper_cast_slope < paper_full_slope


if __name__ == "__main__":
    from repro.bench.harness import report_table3, run_table3

    print(report_table3(run_table3()))
