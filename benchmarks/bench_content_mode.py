"""A6 — tree-level content checking: Section 4 automata vs plain scans.

The paper's prototype checked content models by running the target
content DFA over all child labels ("we do not use the algorithms
mentioned in Section 4 ... to perform a fair comparison with Xerces").
This bench measures both configurations of our CastValidator on the
Experiment 2 workload.  Expected shape: identical verdicts, fewer
content symbols scanned with the pair automata, time advantage small on
this workload (content models are short) but never negative.
"""

import pytest

from repro.core.cast import CastValidator
from repro.workloads.purchase_orders import make_purchase_order

SIZES = (50, 200, 1000)


@pytest.mark.parametrize("items", SIZES)
def test_string_cast_mode(benchmark, exp2_pair, items):
    validator = CastValidator(exp2_pair, use_string_cast=True)
    doc = make_purchase_order(items)
    report = benchmark(validator.validate, doc)
    assert report.valid


@pytest.mark.parametrize("items", SIZES)
def test_plain_mode(benchmark, exp2_pair, items):
    validator = CastValidator(exp2_pair, use_string_cast=False)
    doc = make_purchase_order(items)
    report = benchmark(validator.validate, doc)
    assert report.valid


def test_modes_agree_and_cast_scans_fewer_symbols(exp2_pair):
    doc = make_purchase_order(300)
    cast = CastValidator(exp2_pair, use_string_cast=True).validate(doc)
    plain = CastValidator(exp2_pair, use_string_cast=False).validate(doc)
    assert cast.valid == plain.valid
    assert (
        cast.stats.content_symbols_scanned
        <= plain.stats.content_symbols_scanned
    )


if __name__ == "__main__":
    from repro.bench.ablations import report_content_mode, run_content_mode

    print(report_content_mode(run_content_mode()))
