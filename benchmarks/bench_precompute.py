"""A4 — static preprocessing cost (R_sub, R_nondis, cast machines).

The paper's approach front-loads all schema-dependent work; this bench
measures that cost as schema size grows.  Expected shape: polynomial in
the number of types (pairwise fixpoints over type products), and — the
paper's memory argument — completely independent of any document.
"""

import random

import pytest

from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema

SIZES = (4, 8, 16)


def _schemas(size):
    rng = random.Random(100 + size)
    for _ in range(30):
        try:
            source = random_schema(
                rng, num_labels=size, num_complex=size,
                num_simple=max(2, size // 4),
            )
            target = random_schema(
                rng, num_labels=size, num_complex=size,
                num_simple=max(2, size // 4),
            )
            return source, target
        except Exception:
            continue
    pytest.skip("schema generation failed")


@pytest.mark.parametrize("size", SIZES)
def test_build_schema_pair(benchmark, size):
    source, target = _schemas(size)

    def build():
        pair = SchemaPair(source, target)
        pair.warm()
        return pair

    pair = benchmark(build)
    assert pair.r_nondis is not None


@pytest.mark.parametrize("size", SIZES)
def test_relations_only(benchmark, size):
    """R_sub + R_nondis without warming the cast machines."""
    source, target = _schemas(size)
    pair = benchmark(SchemaPair, source, target)
    total_pairs = len(source.types) * len(target.types)
    assert len(pair.r_sub) <= total_pairs
    assert len(pair.r_nondis) <= total_pairs


def test_paper_schema_pair_is_cheap(benchmark):
    """The actual experiment pair must preprocess in milliseconds."""
    from repro.workloads import purchase_orders as po

    source = po.source_schema_experiment2()
    target = po.target_schema_experiment2()

    def build():
        pair = SchemaPair(source, target)
        pair.warm()
        return pair

    pair = benchmark(build)
    assert pair.is_subsumed("USAddress", "USAddress")


if __name__ == "__main__":
    from repro.bench.ablations import report_precompute, run_precompute

    print(report_precompute(run_precompute()))
