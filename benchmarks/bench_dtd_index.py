"""A3 — DTD label-index cast (Section 3.4) vs tree-walk cast vs full.

The DTD optimization: with direct access to label instances, only
labels whose type pair is neither subsumed nor disjoint are visited.
Workload: item value type narrowed, so every item needs a value check.
Expected shape: index ≈ tree-walk (both linear in items, small
constants), both well below full validation.
"""

import pytest

from repro.bench.harness import _dtd_index_pair
from repro.baselines.full import FullValidator
from repro.core.cast import CastValidator
from repro.core.dtdcast import DTDCastValidator
from repro.xmltree.dom import Document, element

SIZES = (10, 100, 1000)


def _doc(count):
    doc = Document(
        element(
            "po",
            element("shipTo", element("name", "a")),
            element("billTo", element("name", "b")),
            element("items", *(element("item", str(i + 1))
                               for i in range(count))),
        )
    )
    doc.elements_with_label("item")  # pre-build the index
    return doc


@pytest.fixture(scope="module")
def pair():
    return _dtd_index_pair()


@pytest.mark.parametrize("items", SIZES)
def test_label_index_cast(benchmark, pair, items):
    validator = DTDCastValidator(pair)
    doc = _doc(items)
    report = benchmark(validator.validate, doc)
    assert report.valid
    # Only item instances (plus po, items content checks) are visited.
    assert report.stats.simple_values_checked == items


@pytest.mark.parametrize("items", SIZES)
def test_tree_walk_cast(benchmark, pair, items):
    validator = CastValidator(pair)
    doc = _doc(items)
    report = benchmark(validator.validate, doc)
    assert report.valid


@pytest.mark.parametrize("items", SIZES)
def test_full_validation(benchmark, pair, items):
    validator = FullValidator(pair.target)
    doc = _doc(items)
    report = benchmark(validator.validate, doc)
    assert report.valid


def test_index_visits_fewer_nodes_than_full(pair):
    doc = _doc(500)
    index_nodes = DTDCastValidator(pair).validate(doc).stats.nodes_visited
    full_nodes = FullValidator(pair.target).validate(doc).stats.nodes_visited
    assert index_nodes < full_nodes


if __name__ == "__main__":
    from repro.bench.harness import report_dtd_index, run_dtd_index

    print(report_dtd_index(run_dtd_index()))
