"""Checkpoint journal: resumable batch runs with identical results.

The contract under test (:mod:`repro.core.checkpoint` plus the
``checkpoint=``/``resume=`` arguments of ``validate_batch``):

* a resumed run restores journaled verdicts without revalidating and
  its :class:`BatchResult` — verdicts, order, merged stats — equals an
  uninterrupted run's;
* restoration is keyed by path + mtime + size, so an edited document
  is revalidated, never served a stale verdict;
* a journal is bound to its schema pair and version; mismatches raise
  :class:`~repro.errors.BatchError`;
* a torn tail (interrupted mid-write) costs only the torn entry.
"""

import json
import os

import pytest

from repro.core.batch import validate_batch
from repro.core.checkpoint import (
    JOURNAL_MAGIC,
    JOURNAL_VERSION,
    CheckpointJournal,
)
from repro.errors import BatchError
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import write_file


@pytest.fixture()
def exp2_fresh_pair(exp2_source, exp2_target):
    return SchemaPair(exp2_source, exp2_target)


def write_corpus(directory, count):
    paths = []
    for index in range(count):
        path = os.path.join(str(directory), f"doc{index:03d}.xml")
        write_file(make_purchase_order(1 + index % 3), path)
        paths.append(path)
    return paths


def journal_lines(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read().splitlines()


class TestJournalFile:
    def test_fresh_writes_header(self, tmp_path):
        journal_path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.fresh(journal_path, "pairkey") as journal:
            assert journal.restored == {}
        header = json.loads(journal_lines(journal_path)[0])
        assert header["journal"] == JOURNAL_MAGIC
        assert header["version"] == JOURNAL_VERSION
        assert header["pair_key"] == "pairkey"

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        journal_path = str(tmp_path / "absent.jsonl")
        with CheckpointJournal.resume(journal_path, "pairkey") as journal:
            assert journal.restored == {}
        assert os.path.exists(journal_path)

    def test_resume_rejects_foreign_file(self, tmp_path):
        journal_path = tmp_path / "not_a_journal.jsonl"
        journal_path.write_text("<xml>definitely not</xml>\n")
        with pytest.raises(BatchError, match="not a batch journal"):
            CheckpointJournal.resume(str(journal_path), "pairkey")

    def test_resume_rejects_pair_mismatch(self, tmp_path):
        journal_path = str(tmp_path / "ck.jsonl")
        CheckpointJournal.fresh(journal_path, "key-A").close()
        with pytest.raises(BatchError, match="different schema pair"):
            CheckpointJournal.resume(journal_path, "key-B")

    def test_resume_rejects_version_mismatch(self, tmp_path):
        journal_path = tmp_path / "ck.jsonl"
        journal_path.write_text(
            json.dumps(
                {
                    "journal": JOURNAL_MAGIC,
                    "version": JOURNAL_VERSION + 1,
                    "pair_key": "pairkey",
                }
            )
            + "\n"
        )
        with pytest.raises(BatchError, match="version"):
            CheckpointJournal.resume(str(journal_path), "pairkey")

    def test_torn_tail_is_tolerated(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<a/>")
        journal_path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.fresh(journal_path, "pairkey") as journal:
            journal.record(str(doc), {"path": str(doc), "valid": True}, None)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"path": "torn-en')  # interrupted mid-write
        journal = CheckpointJournal.resume(journal_path, "pairkey")
        assert list(journal.restored) == [str(doc)]
        journal.close()

    def test_last_entry_wins(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<a/>")
        journal_path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.fresh(journal_path, "pairkey") as journal:
            journal.record(str(doc), {"valid": False}, None)
            journal.record(str(doc), {"valid": True}, None)
        journal = CheckpointJournal.resume(journal_path, "pairkey")
        assert journal.restored[str(doc)]["result"]["valid"] is True
        journal.close()

    def test_entry_for_edited_file_is_stale(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<a/>")
        journal_path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.fresh(journal_path, "pairkey") as journal:
            journal.record(str(doc), {"valid": True}, None)
        journal = CheckpointJournal.resume(journal_path, "pairkey")
        entry = journal.restored[str(doc)]
        assert journal.entry_is_current(entry)
        doc.write_text("<a>changed and longer</a>")
        assert not journal.entry_is_current(entry)
        journal.close()


class TestBatchResume:
    def test_resume_matches_uninterrupted_run(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 8)
        journal = str(tmp_path / "ck.jsonl")
        # "Interrupted" run: only half the corpus got validated.
        validate_batch(
            exp2_fresh_pair, paths[:4], collect_stats=True,
            checkpoint=journal,
        )
        resumed = validate_batch(
            exp2_fresh_pair, paths, collect_stats=True,
            checkpoint=journal, resume=True,
        )
        baseline = validate_batch(
            exp2_fresh_pair, paths, collect_stats=True
        )
        assert resumed.resumed == 4
        assert resumed.results == baseline.results
        assert resumed.stats == baseline.stats

    def test_resume_restores_error_verdicts_too(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 2)
        broken = str(tmp_path / "broken.xml")
        with open(broken, "w", encoding="utf-8") as handle:
            handle.write("<purchaseOrder><unclosed>")
        all_paths = sorted(paths + [broken])
        journal = str(tmp_path / "ck.jsonl")
        first = validate_batch(
            exp2_fresh_pair, all_paths, checkpoint=journal
        )
        again = validate_batch(
            exp2_fresh_pair, all_paths, checkpoint=journal, resume=True
        )
        assert again.resumed == 3
        assert again.results == first.results
        assert any(
            r.error_type == "XMLSyntaxError" for r in again.results
        )

    def test_edited_document_is_revalidated(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 3)
        journal = str(tmp_path / "ck.jsonl")
        validate_batch(exp2_fresh_pair, paths, checkpoint=journal)
        # Replace one document with new (still valid) content; force a
        # different size so the signature changes even on coarse mtime.
        write_file(make_purchase_order(7), paths[1])
        resumed = validate_batch(
            exp2_fresh_pair, paths, checkpoint=journal, resume=True
        )
        assert resumed.resumed == 2
        assert resumed.all_valid

    def test_without_resume_journal_starts_fresh(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 2)
        journal = str(tmp_path / "ck.jsonl")
        validate_batch(exp2_fresh_pair, paths, checkpoint=journal)
        rerun = validate_batch(exp2_fresh_pair, paths, checkpoint=journal)
        assert rerun.resumed == 0
        # Header + one line per document, no stale entries kept.
        assert len(journal_lines(journal)) == 1 + len(paths)

    def test_resume_requires_checkpoint(self, exp2_fresh_pair):
        with pytest.raises(ValueError, match="checkpoint"):
            validate_batch(exp2_fresh_pair, [], resume=True)

    def test_resume_with_parallel_completion(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 10)
        journal = str(tmp_path / "ck.jsonl")
        validate_batch(
            exp2_fresh_pair, paths[:5], collect_stats=True,
            checkpoint=journal,
        )
        resumed = validate_batch(
            exp2_fresh_pair, paths, jobs=3, collect_stats=True,
            checkpoint=journal, resume=True, chunk_size=1,
        )
        baseline = validate_batch(
            exp2_fresh_pair, paths, collect_stats=True
        )
        assert resumed.resumed == 5
        assert resumed.results == baseline.results
        assert resumed.stats == baseline.stats

    def test_journal_records_survive_for_next_resume(
        self, exp2_fresh_pair, tmp_path
    ):
        # Resume twice: entries restored by one resumed run are still
        # journaled for the next (restored entries are re-recorded or
        # retained — either way the journal stays complete).
        paths = write_corpus(tmp_path, 4)
        journal = str(tmp_path / "ck.jsonl")
        validate_batch(exp2_fresh_pair, paths[:2], checkpoint=journal)
        validate_batch(
            exp2_fresh_pair, paths, checkpoint=journal, resume=True
        )
        third = validate_batch(
            exp2_fresh_pair, paths, checkpoint=journal, resume=True
        )
        assert third.resumed == 4
