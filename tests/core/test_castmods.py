"""Tests for schema cast validation with modifications (Section 3.3)."""

import pytest

from repro.core.castmods import CastWithModificationsValidator
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document
from repro.schema.model import Schema, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin, restrict
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.parser import parse


@pytest.fixture()
def simple_pair():
    """Source: (a*, b?); target: (a+, b) with narrower leaf on b."""
    source = Schema(
        {
            "T": complex_type("T", "(a*,b?)", {"a": "Str", "b": "Num"}),
            "Str": builtin("string"),
            "Num": builtin("integer"),
        },
        {"t": "T"},
        name="src",
    )
    target = Schema(
        {
            "T": complex_type("T", "(a+,b)", {"a": "Str", "b": "Pos"}),
            "Str": builtin("string"),
            "Pos": builtin("positiveInteger"),
        },
        {"t": "T"},
        name="tgt",
    )
    return SchemaPair(source, target)


def check_against_full(validator, session, target_schema):
    """The with-modifications verdict must equal full validation of the
    materialized result document."""
    report = validator.validate(session)
    expected = validate_document(target_schema, session.result_document())
    assert report.valid == expected.valid, (
        report.reason, expected.reason,
    )
    return report


class TestUnmodifiedFallsBackToPlainCast:
    def test_no_edits_same_as_cast(self, exp1_pair):
        doc = make_purchase_order(10)
        session = UpdateSession(doc)
        validator = CastWithModificationsValidator(exp1_pair)
        report = validator.validate(session)
        assert report.valid
        # Root subtree unmodified: the plain cast path ran (it skips via
        # subsumption/early content decisions, so few nodes visited).
        assert report.stats.nodes_visited <= 2


class TestInsertions:
    def test_insert_makes_invalid_document_valid(self, exp1_pair, exp1_target):
        doc = make_purchase_order(5, with_billto=False)
        session = UpdateSession(doc)
        billto = session.insert_after(
            session.document.root.find("shipTo"), "billTo"
        )
        for label, text in [
            ("name", "B"), ("street", "S"), ("city", "C"),
            ("state", "ST"), ("zip", "1"), ("country", "US"),
        ]:
            child = session.insert_element(billto, len(billto.children), label)
            session.insert_text(child, 0, text)
        validator = CastWithModificationsValidator(exp1_pair)
        report = check_against_full(validator, session, exp1_target)
        assert report.valid

    def test_incomplete_insert_stays_invalid(self, exp1_pair, exp1_target):
        doc = make_purchase_order(5, with_billto=False)
        session = UpdateSession(doc)
        session.insert_after(session.document.root.find("shipTo"), "billTo")
        validator = CastWithModificationsValidator(exp1_pair)
        report = check_against_full(validator, session, exp1_target)
        assert not report.valid

    def test_inserted_subtree_fully_validated(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        new_a = session.insert_first(session.document.root, "a")
        session.insert_text(new_a, 0, "fresh")
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(
            validator, session, simple_pair.target
        )
        assert report.valid


class TestDeletions:
    def test_delete_required_child_invalidates(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        b = session.document.root.find("b")
        session.delete(b.children[0])
        session.delete(b)
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(validator, session, simple_pair.target)
        assert not report.valid

    def test_delete_optional_extra_stays_valid(self, simple_pair):
        doc = parse("<t><a>x</a><a>y</a><b>5</b></t>")
        session = UpdateSession(doc)
        second_a = session.document.root.find_all("a")[1]
        session.delete(second_a.children[0])
        session.delete(second_a)
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(validator, session, simple_pair.target)
        assert report.valid

    def test_tombstones_not_counted_in_content(self, simple_pair):
        doc = parse("<t><a>x</a><a>y</a><b>5</b></t>")
        session = UpdateSession(doc)
        for a in session.document.root.find_all("a"):
            session.delete(a.children[0])
            session.delete(a)
        validator = CastWithModificationsValidator(simple_pair)
        # a+ requires at least one a in the target.
        report = check_against_full(validator, session, simple_pair.target)
        assert not report.valid


class TestRenames:
    def test_rename_to_compatible_label(self, exp1_pair, exp1_target):
        # shipTo and billTo share the USAddress type.
        doc = make_purchase_order(3, with_billto=False)
        session = UpdateSession(doc)
        # Rename shipTo -> billTo, then insert a new shipTo... actually
        # make the PO invalid: billTo,shipTo order is wrong.
        session.rename(session.document.root.find("shipTo"), "billTo")
        validator = CastWithModificationsValidator(exp1_pair)
        report = check_against_full(validator, session, exp1_target)
        assert not report.valid

    def test_rename_root(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        session.rename(session.document.root, "zzz")
        validator = CastWithModificationsValidator(simple_pair)
        report = validator.validate(session)
        assert not report.valid
        assert "permitted root" in report.reason

    def test_rename_to_unknown_label(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        session.rename(session.document.root.find("a"), "mystery")
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(validator, session, simple_pair.target)
        assert not report.valid


class TestTextEdits:
    def test_text_change_rechecked_against_target(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        b_text = session.document.root.find("b").children[0]
        session.replace_text(b_text, "-3")  # integer ok, positive no
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(validator, session, simple_pair.target)
        assert not report.valid

    def test_text_change_to_valid_value(self, simple_pair):
        doc = parse("<t><a>x</a><b>5</b></t>")
        session = UpdateSession(doc)
        b_text = session.document.root.find("b").children[0]
        session.replace_text(b_text, "42")
        validator = CastWithModificationsValidator(simple_pair)
        report = check_against_full(validator, session, simple_pair.target)
        assert report.valid


class TestLocality:
    def test_untouched_siblings_not_traversed(self, exp2_pair):
        """Editing one item must not force re-walking its siblings
        (they go through the no-modifications cast, which skips or
        checks only quantities)."""
        doc = make_purchase_order(100)
        session = UpdateSession(doc)
        items = session.document.root.find("items")
        first_item = items.children[0]
        quantity_text = first_item.find("quantity").children[0]
        session.replace_text(quantity_text, "7")
        validator = CastWithModificationsValidator(exp2_pair)
        report = validator.validate(session)
        assert report.valid
        # Each untouched item still has its quantity checked (exp2), but
        # nothing beyond that: strictly fewer nodes than full validation.
        full = validate_document(
            exp2_pair.target, session.result_document()
        )
        assert report.stats.nodes_visited < full.stats.nodes_visited

    def test_single_schema_update_fast_path(self, exp2_source):
        pair = SchemaPair(exp2_source, exp2_source)
        doc = make_purchase_order(50)
        session = UpdateSession(doc)
        items = session.document.root.find("items")
        item = session.insert_element(items, 0, "item")
        for label, text in [("productName", "p"), ("quantity", "3"),
                            ("USPrice", "1.0")]:
            child = session.insert_element(item, len(item.children), label)
            session.insert_text(child, 0, text)
        validator = CastWithModificationsValidator(pair)
        report = validator.validate(session)
        assert report.valid
        # Only the edited path is re-examined; untouched items are
        # skipped wholesale via the identity subsumption.
        assert report.stats.nodes_visited <= 12
