"""Tests for the streaming schema cast validator."""

import random

import pytest

from repro.core.cast import CastValidator
from repro.core.streaming import StreamingCastValidator
from repro.core.validator import validate_document
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.mutations import perturb_schema
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize


class TestPaperExperiments:
    def test_experiment1_verdicts(self, exp1_pair):
        validator = StreamingCastValidator(exp1_pair)
        good = serialize(make_purchase_order(20), indent="  ")
        bad = serialize(make_purchase_order(20, with_billto=False))
        assert validator.validate_text(good).valid
        assert not validator.validate_text(bad).valid

    def test_experiment1_skips_subtrees(self, exp1_pair):
        validator = StreamingCastValidator(exp1_pair)
        text = serialize(make_purchase_order(50))
        report = validator.validate_text(text)
        assert report.valid
        # Same O(1) verification work as the DOM cast: subsumed
        # subtrees (addresses, items) contribute nothing.
        assert report.stats.elements_visited <= 2
        assert report.stats.subtrees_skipped >= 3

    def test_experiment2_value_checks(self, exp2_pair):
        validator = StreamingCastValidator(exp2_pair)
        good = serialize(make_purchase_order(10))
        report = validator.validate_text(good)
        assert report.valid
        assert report.stats.simple_values_checked == 10
        bad = serialize(
            make_purchase_order(10, quantity_of=lambda i: 150)
        )
        assert not validator.validate_text(bad).valid

    def test_disjoint_fails_fast(self):
        from repro.schema.model import Schema, complex_type
        from repro.schema.simple import builtin

        left = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Date"}),
                "Date": builtin("date"),
            },
            {"t": "T"},
        )
        right = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Int"}),
                "Int": builtin("integer"),
            },
            {"t": "T"},
        )
        validator = StreamingCastValidator(SchemaPair(left, right))
        report = validator.validate_text("<t><x>2004-01-01</x></t>")
        assert not report.valid
        assert report.stats.disjoint_rejections == 1

    def test_malformed_input(self, exp1_pair):
        validator = StreamingCastValidator(exp1_pair)
        assert not validator.validate_text("<purchaseOrder>").valid


class TestAgreementWithDomCast:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_agreement(self, seed):
        rng = random.Random(60_000 + seed)
        for _ in range(40):
            try:
                source = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, source, max_depth=6)
            if doc is None:
                continue
            try:
                target = (
                    perturb_schema(rng, source)
                    if rng.random() < 0.5
                    else random_schema(rng)
                )
                pair = SchemaPair(source, target)
            except Exception:
                continue
            text = serialize(doc, indent="  ")
            dom_verdict = CastValidator(pair).validate(parse(text))
            stream_verdict = StreamingCastValidator(pair).validate_text(
                text
            )
            assert dom_verdict.valid == stream_verdict.valid, (
                seed, dom_verdict.reason, stream_verdict.reason,
            )
            return
        pytest.skip("no usable pair")

    def test_identical_schemas_skip_everything(self, exp2_pair):
        pair = SchemaPair(exp2_pair.target, exp2_pair.target)
        validator = StreamingCastValidator(pair)
        report = validator.validate_text(
            serialize(make_purchase_order(100))
        )
        assert report.valid
        assert report.stats.elements_visited == 0
        assert report.stats.subtrees_skipped == 1


class TestMemory:
    def test_memory_document_independent(self, exp2_pair):
        import tracemalloc

        validator = StreamingCastValidator(exp2_pair)
        texts = {
            n: serialize(make_purchase_order(n), indent="  ")
            for n in (50, 1000)
        }

        def peak(text):
            tracemalloc.start()
            validator.validate_text(text)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return high

        small, large = peak(texts[50]), peak(texts[1000])
        assert large < small * 3
