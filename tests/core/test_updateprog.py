"""Parametric update programs: classification truth table, zero-traversal
verdicts, replay semantics, and the wire format."""

import pytest

from repro.core.updateprog import (
    Classification,
    DeleteRule,
    InsertRule,
    RenameRule,
    UpdateProgram,
    apply_program,
    cast_text_with_program,
    classify,
)
from repro.core.updates import UpdateSession
from repro.errors import UnsafeUpdateProgramError, UpdateError
from repro.schema.registry import SchemaPair
from repro.workloads.evolution import conforming_document, po_variant
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize


@pytest.fixture(scope="module")
def identity_pair():
    pair = SchemaPair(po_variant(), po_variant())
    return pair


@pytest.fixture(scope="module")
def require_billto_pair():
    return SchemaPair(po_variant(), po_variant(billto_optional=False))


@pytest.fixture(scope="module")
def rename_pair():
    return SchemaPair(
        po_variant(), po_variant(shipdate_label="deliveryDate")
    )


class TestClassificationTruthTable:
    def test_delete_optional_always_safe(self, identity_pair):
        program = UpdateProgram((DeleteRule("shipDate"),))
        assert classify(identity_pair, program) is (
            Classification.ALWAYS_SAFE
        )

    def test_rename_matching_the_drift_always_safe(self, rename_pair):
        program = UpdateProgram((RenameRule("shipDate", "deliveryDate"),))
        assert classify(rename_pair, program) is (
            Classification.ALWAYS_SAFE
        )

    def test_delete_required_leaf_instance_dependent(self, identity_pair):
        # Every purchaseOrder-rooted document breaks, but the schema's
        # second root (a bare comment) never carries a street — so the
        # verdict depends on the instance.
        program = UpdateProgram((DeleteRule("street"),))
        assert classify(identity_pair, program) is (
            Classification.INSTANCE_DEPENDENT
        )

    def test_delete_billto_against_requiring_target(
        self, require_billto_pair
    ):
        program = UpdateProgram((DeleteRule("billTo"),))
        assert classify(require_billto_pair, program) is (
            Classification.INSTANCE_DEPENDENT
        )

    def test_delete_every_root_never_safe(self, identity_pair):
        program = UpdateProgram(
            (DeleteRule("purchaseOrder"), DeleteRule("comment"))
        )
        assert classify(identity_pair, program) is (
            Classification.NEVER_SAFE
        )

    def test_rename_every_root_away_never_safe(self, identity_pair):
        program = UpdateProgram(
            (
                RenameRule("purchaseOrder", "bogusOrder"),
                RenameRule("comment", "bogusComment"),
            )
        )
        assert classify(identity_pair, program) is (
            Classification.NEVER_SAFE
        )

    def test_insert_non_empty_valid_element_not_always_safe(
        self, identity_pair
    ):
        # An inserted empty <item/> lacks its required children.
        program = UpdateProgram(
            (InsertRule("item", parent="items", position="last"),)
        )
        assert classify(identity_pair, program) is not (
            Classification.ALWAYS_SAFE
        )

    def test_insert_possibly_duplicating_instance_dependent(
        self, identity_pair
    ):
        # shipDate is optional but maxOccurs 1: appending one is safe
        # exactly when the item does not already carry one.
        program = UpdateProgram(
            (InsertRule("shipDate", parent="item", position="last"),)
        )
        assert classify(identity_pair, program) is (
            Classification.INSTANCE_DEPENDENT
        )

    def test_classification_memoized(self, identity_pair):
        program = UpdateProgram((DeleteRule("shipDate"),))
        first = classify(identity_pair, program)
        assert classify(identity_pair, program) is first
        assert program in identity_pair._program_classes


class TestZeroTraversalVerdicts:
    def test_always_safe_answers_without_a_document(self, identity_pair):
        program = UpdateProgram((DeleteRule("shipDate"),))
        report, classification = cast_text_with_program(
            identity_pair, program, None
        )
        assert report.valid
        assert classification is Classification.ALWAYS_SAFE

    def test_never_safe_answers_without_a_document(self, identity_pair):
        program = UpdateProgram(
            (DeleteRule("purchaseOrder"), DeleteRule("comment"))
        )
        report, classification = cast_text_with_program(
            identity_pair, program, None
        )
        assert not report.valid
        assert classification is Classification.NEVER_SAFE

    def test_instance_dependent_needs_a_document(self, identity_pair):
        program = UpdateProgram((DeleteRule("street"),))
        with pytest.raises(UpdateError):
            cast_text_with_program(identity_pair, program, None)

    def test_require_safe_raises_typed_error(self, identity_pair):
        program = UpdateProgram((DeleteRule("street"),))
        text = conforming_document([identity_pair.source])
        with pytest.raises(UnsafeUpdateProgramError) as info:
            cast_text_with_program(
                identity_pair, program, text, require_safe=True
            )
        assert info.value.code == "unsafe-update-program"
        assert info.value.classification == "instance-dependent"

    def test_instance_dependent_lowers_to_replay(
        self, require_billto_pair
    ):
        program = UpdateProgram((DeleteRule("billTo"),))
        text = conforming_document([require_billto_pair.source])
        report, classification = cast_text_with_program(
            require_billto_pair, program, text
        )
        assert classification is Classification.INSTANCE_DEPENDENT
        assert not report.valid  # billTo was present and is now gone

        keep = UpdateProgram((DeleteRule("shipDate"),))
        report, classification = cast_text_with_program(
            require_billto_pair, keep, text
        )
        assert classification is not Classification.NEVER_SAFE
        assert report.valid


class TestApplyProgram:
    def test_replay_matches_rule_semantics(self, identity_pair):
        text = conforming_document([identity_pair.source], item_count=3)
        document = parse(text, symbols=identity_pair.symbols)
        session = UpdateSession(document)
        program = UpdateProgram((DeleteRule("billTo"),))
        with pytest.raises(UpdateError):
            UpdateProgram((RenameRule("x", "y"), RenameRule("x", "z")))
        applied = apply_program(session, program)
        assert applied >= 1
        billto = session.document.root.find("billTo")
        assert session.is_deleted(billto)

    def test_insert_positions(self, identity_pair):
        text = conforming_document([identity_pair.source], item_count=1)
        document = parse(text, symbols=identity_pair.symbols)
        session = UpdateSession(document)
        program = UpdateProgram(
            (InsertRule("shipDate", parent="item", position="last"),)
        )
        apply_program(session, program)
        serialized = serialize(session.document)
        assert "<shipDate" in serialized


class TestWireFormat:
    def test_round_trip(self):
        program = UpdateProgram(
            (
                DeleteRule("shipDate"),
                RenameRule("comment", "note"),
                InsertRule("shipDate", parent="item", position="first"),
            )
        )
        assert UpdateProgram.from_wire(program.to_wire()) == program

    def test_malformed_is_typed(self):
        with pytest.raises(UpdateError):
            UpdateProgram.from_wire({"op": "delete"})
        with pytest.raises(UpdateError):
            UpdateProgram.from_wire([{"op": "explode", "label": "x"}])
        with pytest.raises(UpdateError):
            UpdateProgram.from_wire([{"op": "rename", "from": "a"}])

    def test_conflicting_rules_rejected(self):
        with pytest.raises(UpdateError):
            UpdateProgram(
                (DeleteRule("shipDate"), RenameRule("shipDate", "x"))
            )
