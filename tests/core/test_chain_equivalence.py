"""Randomized equivalence fuzzer for composed evolution-chain casts.

The composed chain cast (:meth:`SchemaChain.cast_text` — one fused
pass over the joined pair, sequential fallback on reject) is a pure
performance move: on every document it must produce the same verdict,
the same failure reason, and the same Dewey error position as casting
hop by hop through the n−1 individual pairs.  This fuzzer draws
randomized drift histories from :mod:`repro.workloads.evolution`
(tighten/loosen/rename per hop), generates premise-valid documents —
conforming ones and ones built to trip each specific hop — and asserts
exact report identity under both kernel backends.  It additionally
checks the soundness half the fallback relies on: a raw composed-pass
accept always implies a sequential accept.
"""

from __future__ import annotations

import random

import pytest

from repro import kernel
from repro.schema.chain import SchemaChain
from repro.workloads.evolution import (
    DRIFT_KINDS,
    conforming_document,
    drift_chain,
    violating_document,
)


@pytest.fixture(params=["py", "compiled"])
def backend(request):
    """Run the decorated test under each kernel backend, restoring the
    environment-selected backend afterwards; the compiled parametrization
    degrades to a skip where the extension cannot be built."""
    prior = kernel.backend_name()
    if request.param == "compiled":
        try:
            kernel.activate("compiled")
        except Exception as error:  # no toolchain: skip, don't fail
            pytest.skip(f"compiled kernel unavailable: {error}")
    else:
        kernel.activate("py")
    yield request.param
    kernel.activate(prior)


def assert_chain_equivalent(chain, text):
    fused = chain.cast_text(text)
    sequential = chain.sequential_cast_text(text)
    assert (fused.valid, fused.reason, fused.path) == (
        sequential.valid,
        sequential.reason,
        sequential.path,
    ), (
        f"chain[{kernel.backend_name()}] diverged from the per-hop "
        f"pipeline on {chain!r}\n"
        f"  fused:      {(fused.valid, fused.reason, fused.path)}\n"
        f"  sequential: "
        f"{(sequential.valid, sequential.reason, sequential.path)}\n"
        f"  doc: {text[:200]!r}"
    )
    if not chain.statically_safe:
        composed = chain.cast_composed_text(text)
        assert not composed.valid or sequential.valid, (
            "raw composed pass accepted a document a hop rejects"
        )


def chain_corpus(schemas, kinds):
    """Documents valid under revision 0: one conforming everywhere,
    one built to trip each hop's specific change."""
    texts = [conforming_document(schemas, item_count=4)]
    for hop in range(len(kinds)):
        texts.append(violating_document(schemas, kinds, hop,
                                        item_count=4))
    return texts


def test_fuzz_random_drift_histories(backend):
    rng = random.Random(0xC4A1)
    for _ in range(8):
        hops = rng.randint(2, 4)
        kinds = [rng.choice(DRIFT_KINDS) for _ in range(hops)]
        schemas, kinds = drift_chain(hops, kinds)
        chain = SchemaChain(schemas)
        for text in chain_corpus(schemas, kinds):
            assert_chain_equivalent(chain, text)


def test_monotone_tighten_chain(backend):
    schemas, kinds = drift_chain(3)
    chain = SchemaChain(schemas)
    for text in chain_corpus(schemas, kinds):
        assert_chain_equivalent(chain, text)


def test_mixed_chain_with_product_target(backend):
    # rename → tighten leaves two incomparable residual checks, so the
    # composed pair runs against a product schema.
    schemas, kinds = drift_chain(3, ["rename", "tighten", "rename"])
    chain = SchemaChain(schemas)
    assert len(chain.analysis()["checked"]) > 1
    for text in chain_corpus(schemas, kinds):
        assert_chain_equivalent(chain, text)


def test_skip_modes_agree(backend):
    schemas, kinds = drift_chain(3, ["tighten", "rename", "tighten"])
    chain = SchemaChain(schemas)
    for text in chain_corpus(schemas, kinds):
        plain = chain.cast_text(text, stream_skip=False)
        skim = chain.cast_text(text, stream_skip=True)
        assert (plain.valid, plain.reason, plain.path) == (
            skim.valid,
            skim.reason,
            skim.path,
        )
