"""Tests for the DTD label-index cast validator (Section 3.4)."""

import pytest

from repro.core.cast import CastValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.validator import validate_document
from repro.errors import SchemaError
from repro.schema.dtd import parse_dtd
from repro.schema.model import Schema, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin
from repro.xmltree.parser import parse

SOURCE_DTD = """
<!ELEMENT po (shipTo, billTo?, items)>
<!ELEMENT shipTo (name)>
<!ELEMENT billTo (name)>
<!ELEMENT items (item*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT name (#PCDATA)>
"""

TARGET_DTD = """
<!ELEMENT po (shipTo, billTo, items)>
<!ELEMENT shipTo (name)>
<!ELEMENT billTo (name)>
<!ELEMENT items (item+)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT name (#PCDATA)>
"""


@pytest.fixture()
def dtd_pair():
    return SchemaPair(
        parse_dtd(SOURCE_DTD, roots=["po"]),
        parse_dtd(TARGET_DTD, roots=["po"]),
    )


class TestClassification:
    def test_label_categories(self, dtd_pair):
        validator = DTDCastValidator(dtd_pair)
        # po changed (billTo now required), items changed (item+):
        assert "po" in validator.check_labels
        assert "items" in validator.check_labels
        # Unchanged element declarations are subsumed.
        assert "shipTo" in validator.skip_labels
        assert "item" in validator.skip_labels
        assert "name" in validator.skip_labels
        assert not validator.fatal_labels


class TestValidation:
    def test_valid_document(self, dtd_pair):
        doc = parse(
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo>"
            "<items><item>1</item></items></po>"
        )
        report = DTDCastValidator(dtd_pair).validate(doc)
        assert report.valid
        # Only the po and items instances were examined.
        assert report.stats.elements_visited == 2

    def test_missing_billto_rejected(self, dtd_pair):
        doc = parse(
            "<po><shipTo><name>a</name></shipTo>"
            "<items><item>1</item></items></po>"
        )
        assert not DTDCastValidator(dtd_pair).validate(doc).valid

    def test_empty_items_rejected(self, dtd_pair):
        doc = parse(
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo>"
            "<items/></po>"
        )
        assert not DTDCastValidator(dtd_pair).validate(doc).valid

    def test_agrees_with_tree_cast_validator(self, dtd_pair):
        tree_validator = CastValidator(dtd_pair)
        index_validator = DTDCastValidator(dtd_pair)
        docs = [
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo>"
            "<items><item>1</item><item>2</item></items></po>",
            "<po><shipTo><name>a</name></shipTo>"
            "<items><item>1</item></items></po>",
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo><items/></po>",
        ]
        for text in docs:
            doc = parse(text)
            assert (
                index_validator.validate(doc).valid
                == tree_validator.validate(doc).valid
            ), text

    def test_agrees_with_full_validation(self, dtd_pair):
        for text in (
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo>"
            "<items><item>1</item></items></po>",
            "<po><shipTo><name>a</name></shipTo>"
            "<items><item>1</item></items></po>",
        ):
            doc = parse(text)
            expected = validate_document(dtd_pair.target, doc).valid
            assert DTDCastValidator(dtd_pair).validate(doc).valid == expected

    def test_unknown_root_rejected(self, dtd_pair):
        assert not DTDCastValidator(dtd_pair).validate(parse("<x/>")).valid


class TestFatalLabels:
    def test_disjoint_label_occurrence_is_fatal(self):
        source = parse_dtd(
            "<!ELEMENT a (b*)><!ELEMENT b (c)><!ELEMENT c EMPTY>",
            roots=["a"],
        )
        target = parse_dtd(
            "<!ELEMENT a (b*)><!ELEMENT b (c,c)><!ELEMENT c EMPTY>",
            roots=["a"],
        )
        pair = SchemaPair(source, target)
        validator = DTDCastValidator(pair)
        assert "b" in validator.fatal_labels
        assert not validator.validate(
            parse("<a><b><c/></b></a>")
        ).valid
        # Without any b, the document is fine.
        assert validator.validate(parse("<a/>")).valid


class TestRequiresDtdSchemas:
    def test_non_dtd_schema_rejected(self):
        xsd_style = Schema(
            {
                "T1": complex_type("T1", "(x)", {"x": "A"}),
                "T2": complex_type("T2", "(x)", {"x": "B"}),
                "A": builtin("string"),
                "B": builtin("integer"),
            },
            {"t1": "T1", "t2": "T2"},
        )
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        with pytest.raises(SchemaError, match="DTD-style"):
            DTDCastValidator(SchemaPair(xsd_style, dtd))

    def test_simple_value_checks_in_dtd_mode(self):
        # DTD front-end gives strings; build a DTD-style schema by hand
        # with a narrower target leaf to force value checks.
        source = Schema(
            {
                "list": complex_type("list", "(v*)", {"v": "v"}),
                "v": builtin("integer"),
            },
            {"list": "list"},
        )
        target = Schema(
            {
                "list": complex_type("list", "(v*)", {"v": "v"}),
                "v": builtin("positiveInteger"),
            },
            {"list": "list"},
        )
        validator = DTDCastValidator(SchemaPair(source, target))
        assert validator.validate(
            parse("<list><v>1</v><v>2</v></list>")
        ).valid
        report = validator.validate(parse("<list><v>1</v><v>-2</v></list>"))
        assert not report.valid
        assert report.stats.simple_values_checked >= 1
