"""The stats-off compiled fast paths must agree with the instrumented
paths on every verdict — the counters are the only permitted difference."""

import random

import pytest

from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document
from repro.schema.dtd import parse_dtd
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.dom import Text
from repro.xmltree.parser import parse


def mutate_quantities(document, value):
    """Set every quantity leaf to ``value`` (drives facet failures)."""
    for item in document.root.find("items").children:
        for child in item.children:
            if child.label == "quantity":
                child.children[0].value = value
    return document


def sampled_pair_corpus(seed, pairs=4, docs_per_pair=4):
    """Random (pair, documents) workloads; documents are valid under the
    source schema, so the cast promise holds."""
    rng = random.Random(seed)
    corpus = []
    while len(corpus) < pairs:
        try:
            source = random_schema(rng, num_labels=5, num_complex=4)
            target = random_schema(rng, num_labels=5, num_complex=4)
        except Exception:
            continue
        documents = []
        for _ in range(docs_per_pair):
            document = sample_document(rng, source, max_depth=6)
            if document is not None:
                documents.append(document)
        if documents:
            corpus.append((SchemaPair(source, target), documents))
    return corpus


class TestCastFastPath:
    def test_po_workload_verdicts_match(self, exp2_pair):
        instrumented = CastValidator(exp2_pair, collect_stats=True)
        fast = CastValidator(exp2_pair, collect_stats=False)
        for items in (1, 5, 20):
            valid_doc = make_purchase_order(items)
            invalid_doc = mutate_quantities(
                make_purchase_order(items), "150"
            )
            for document in (valid_doc, invalid_doc):
                slow_report = instrumented.validate(document)
                fast_report = fast.validate(document)
                assert slow_report.valid == fast_report.valid
                if not fast_report.valid:
                    assert fast_report.reason

    @pytest.mark.parametrize("use_string_cast", [True, False])
    def test_random_pairs_verdicts_match(self, use_string_cast):
        for pair, documents in sampled_pair_corpus(seed=23):
            instrumented = CastValidator(
                pair, use_string_cast=use_string_cast, collect_stats=True
            )
            fast = CastValidator(
                pair, use_string_cast=use_string_cast, collect_stats=False
            )
            for document in documents:
                assert (
                    instrumented.validate(document).valid
                    == fast.validate(document).valid
                )

    def test_fast_failure_reports_carry_paths(self, exp2_pair):
        document = mutate_quantities(make_purchase_order(3), "150")
        report = CastValidator(exp2_pair, collect_stats=False).validate(
            document
        )
        assert not report.valid
        assert report.path  # Dewey path of the offending node


class TestValidatorFastPath:
    def test_full_validation_verdicts_match(self, exp1_source):
        for items in (1, 7):
            document = make_purchase_order(items)
            assert validate_document(
                exp1_source, document, collect_stats=False
            ).valid == validate_document(exp1_source, document).valid

    def test_random_schema_verdicts_match(self):
        rng = random.Random(41)
        checked = 0
        while checked < 8:
            try:
                schema = random_schema(rng, num_labels=5, num_complex=4)
            except Exception:
                continue
            document = sample_document(rng, schema, max_depth=6)
            if document is None:
                continue
            slow = validate_document(schema, document)
            fast = validate_document(schema, document, collect_stats=False)
            assert slow.valid == fast.valid
            assert slow.valid  # sampled documents are valid by design
            checked += 1

    def test_invalid_document_same_verdict(self, exp1_source):
        document = make_purchase_order(3)
        document.root.find("items").append(
            parse("<bogus/>").root
        )
        slow = validate_document(exp1_source, document)
        fast = validate_document(exp1_source, document, collect_stats=False)
        assert not slow.valid and not fast.valid


class TestDTDFastPath:
    SOURCE_DTD = """
    <!ELEMENT po (shipTo, billTo?, items)>
    <!ELEMENT shipTo (name)>
    <!ELEMENT billTo (name)>
    <!ELEMENT items (item*)>
    <!ELEMENT item (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    """
    TARGET_DTD = """
    <!ELEMENT po (shipTo, billTo, items)>
    <!ELEMENT shipTo (name)>
    <!ELEMENT billTo (name)>
    <!ELEMENT items (item+)>
    <!ELEMENT item (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    """

    DOCS = [
        "<po><shipTo><name>a</name></shipTo>"
        "<billTo><name>b</name></billTo>"
        "<items><item>1</item></items></po>",
        "<po><shipTo><name>a</name></shipTo>"
        "<items><item>1</item></items></po>",
        "<po><shipTo><name>a</name></shipTo>"
        "<billTo><name>b</name></billTo><items/></po>",
    ]

    @pytest.mark.parametrize("use_string_cast", [True, False])
    def test_verdicts_match(self, use_string_cast):
        pair = SchemaPair(
            parse_dtd(self.SOURCE_DTD, roots=["po"]),
            parse_dtd(self.TARGET_DTD, roots=["po"]),
        )
        instrumented = DTDCastValidator(
            pair, use_string_cast=use_string_cast, collect_stats=True
        )
        fast = DTDCastValidator(
            pair, use_string_cast=use_string_cast, collect_stats=False
        )
        for text in self.DOCS:
            document = parse(text)
            assert (
                instrumented.validate(document).valid
                == fast.validate(document).valid
            )


class TestCastModsFastPath:
    def make_session(self, with_billto):
        document = make_purchase_order(4, with_billto=with_billto)
        session = UpdateSession(document)
        # Touch a quantity so the modified walk actually runs.
        items = session.document.root.find("items")
        quantity = items.children[0].find("quantity")
        old_text = quantity.children[0]
        assert isinstance(old_text, Text)
        session.replace_text(old_text, "7")
        return session

    @pytest.mark.parametrize("with_billto", [True, False])
    def test_verdicts_match(self, exp1_pair, with_billto):
        instrumented = CastWithModificationsValidator(
            exp1_pair, collect_stats=True
        )
        fast = CastWithModificationsValidator(
            exp1_pair, collect_stats=False
        )
        slow_report = instrumented.validate(self.make_session(with_billto))
        fast_report = fast.validate(self.make_session(with_billto))
        assert slow_report.valid == fast_report.valid
