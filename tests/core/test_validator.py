"""Tests for the plain top-down validator (the paper's doValidate)."""

from repro.core.validator import (
    validate_document,
    validate_element,
    validate_root,
)
from repro.schema.model import Schema, complex_type
from repro.schema.simple import builtin, restrict
from repro.xmltree.dom import Document, element
from repro.xmltree.parser import parse


def list_schema():
    return Schema(
        {
            "List": complex_type("List", "(item*)", {"item": "Item"}),
            "Item": restrict(builtin("positiveInteger"), "Item",
                             max_exclusive=100),
        },
        {"list": "List"},
    )


class TestRootHandling:
    def test_valid_root(self):
        doc = parse("<list><item>5</item></list>")
        assert validate_document(list_schema(), doc).valid

    def test_unknown_root_label(self):
        report = validate_document(list_schema(), parse("<other/>"))
        assert not report.valid
        assert "not a permitted root" in report.reason


class TestComplexContent:
    def test_content_model_enforced(self):
        schema = Schema(
            {
                "T": complex_type("T", "(a,b)", {"a": "S", "b": "S"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        assert validate_document(schema, parse("<t><a/><b/></t>")).valid
        report = validate_document(schema, parse("<t><b/><a/></t>"))
        assert not report.valid
        assert "content model" in report.reason

    def test_unknown_child_label(self):
        report = validate_document(
            list_schema(), parse("<list><mystery/></list>")
        )
        assert not report.valid
        assert "unexpected element" in report.reason

    def test_character_data_in_element_content(self):
        report = validate_document(
            list_schema(), parse("<list>stray text</list>")
        )
        assert not report.valid
        assert "character data" in report.reason

    def test_whitespace_between_children_tolerated(self):
        doc = parse(
            "<list>\n  <item>1</item>\n  <item>2</item>\n</list>",
            keep_whitespace=True,
        )
        assert validate_document(list_schema(), doc).valid

    def test_failure_path_reported(self):
        report = validate_document(
            list_schema(), parse("<list><item>boom</item></list>")
        )
        assert not report.valid
        assert report.path == "0"


class TestSimpleContent:
    def test_value_facets_enforced(self):
        schema = list_schema()
        assert validate_document(
            schema, parse("<list><item>99</item></list>")
        ).valid
        report = validate_document(
            schema, parse("<list><item>100</item></list>")
        )
        assert not report.valid
        assert "does not conform" in report.reason

    def test_element_children_under_simple_type(self):
        report = validate_document(
            list_schema(), parse("<list><item><nested/></item></list>")
        )
        assert not report.valid
        assert "does not allow child elements" in report.reason

    def test_empty_element_is_empty_string(self):
        schema = Schema(
            {
                "T": complex_type("T", "(s)", {"s": "Str"}),
                "Str": builtin("string"),
            },
            {"t": "T"},
        )
        assert validate_document(schema, parse("<t><s/></t>")).valid
        int_schema = Schema(
            {
                "T": complex_type("T", "(s)", {"s": "Int"}),
                "Int": builtin("integer"),
            },
            {"t": "T"},
        )
        assert not validate_document(int_schema, parse("<t><s/></t>")).valid


class TestStats:
    def test_every_element_visited(self):
        doc = parse("<list><item>1</item><item>2</item></list>")
        report = validate_document(list_schema(), doc)
        assert report.stats.elements_visited == 3
        assert report.stats.text_nodes_visited == 2
        assert report.stats.nodes_visited == 5
        assert report.stats.content_symbols_scanned == 2
        assert report.stats.simple_values_checked == 2

    def test_stats_stop_at_failure(self):
        doc = parse(
            "<list><item>200</item><item>1</item><item>1</item></list>"
        )
        report = validate_document(list_schema(), doc)
        assert not report.valid
        # Content scan sees all 3 labels, but only the first item's
        # value is examined before failing.
        assert report.stats.simple_values_checked == 1


class TestValidateElement:
    def test_subtree_against_named_type(self):
        schema = list_schema()
        good = element("anything", "42")
        assert validate_element(schema, "Item", good).valid
        bad = element("anything", "142")
        assert not validate_element(schema, "Item", bad).valid

    def test_recursive_schema(self):
        schema = Schema(
            {"N": complex_type("N", "(n*)", {"n": "N"})},
            {"n": "N"},
        )
        doc = parse("<n><n><n/></n><n/></n>")
        assert validate_document(schema, doc).valid
