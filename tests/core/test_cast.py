"""Tests for schema cast validation without modifications (Section 3.2)."""

import pytest

from repro.core.cast import CastValidator
from repro.core.validator import validate_document
from repro.schema.model import Schema, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin, restrict
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.parser import parse


class TestPaperExperiment1:
    def test_document_with_billto_accepted_in_constant_work(self, exp1_pair):
        validator = CastValidator(exp1_pair)
        small = validator.validate(make_purchase_order(2))
        large = validator.validate(make_purchase_order(500))
        assert small.valid and large.valid
        # The headline property: work independent of document size.
        assert small.stats.nodes_visited == large.stats.nodes_visited
        assert large.stats.nodes_visited <= 2

    def test_document_without_billto_rejected(self, exp1_pair):
        validator = CastValidator(exp1_pair)
        report = validator.validate(
            make_purchase_order(50, with_billto=False)
        )
        assert not report.valid

    def test_subtrees_skipped_by_subsumption(self, exp1_pair):
        validator = CastValidator(exp1_pair)
        report = validator.validate(make_purchase_order(10))
        assert report.stats.subtrees_skipped >= 1


class TestPaperExperiment2:
    def test_quantities_rechecked(self, exp2_pair):
        validator = CastValidator(exp2_pair)
        report = validator.validate(make_purchase_order(20))
        assert report.valid
        assert report.stats.simple_values_checked == 20

    def test_out_of_range_quantity_rejected(self, exp2_pair):
        validator = CastValidator(exp2_pair)
        doc = make_purchase_order(
            10, quantity_of=lambda i: 150 if i == 7 else 5
        )
        report = validator.validate(doc)
        assert not report.valid
        assert "does not conform" in report.reason

    def test_work_scales_linearly_but_below_full(self, exp2_pair, exp2_target):
        validator = CastValidator(exp2_pair)
        for count in (10, 50):
            doc = make_purchase_order(count)
            cast = validator.validate(doc)
            full = validate_document(exp2_target, doc)
            assert cast.valid and full.valid
            assert cast.stats.nodes_visited < full.stats.nodes_visited


class TestDisjointFailFast:
    def test_disjoint_types_reject_without_descending(self):
        source = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Date"}),
                "Date": builtin("date"),
            },
            {"t": "T"},
        )
        target = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Int"}),
                "Int": builtin("integer"),
            },
            {"t": "T"},
        )
        validator = CastValidator(SchemaPair(source, target))
        report = validator.validate(parse("<t><x>2004-01-01</x></t>"))
        assert not report.valid
        assert report.stats.disjoint_rejections == 1
        assert report.stats.nodes_visited == 0


class TestRootHandling:
    def test_root_unknown_to_target(self, exp1_pair):
        report = CastValidator(exp1_pair).validate(parse("<unknown/>"))
        assert not report.valid
        assert "target schema" in report.reason

    def test_root_unknown_to_source_falls_back_to_full(self):
        source = Schema({"S": builtin("string")}, {"s": "S"})
        target = Schema(
            {
                "T": complex_type("T", "(s)", {"s": "Str"}),
                "Str": builtin("string"),
            },
            {"t": "T", "s": "Str"},
        )
        validator = CastValidator(SchemaPair(source, target))
        assert validator.validate(parse("<t><s>x</s></t>")).valid
        assert not validator.validate(parse("<t><t/></t>")).valid


class TestContentChecking:
    @pytest.fixture()
    def reorder_pair(self):
        source = Schema(
            {
                "T": complex_type("T", "((a,b)|(b,a))", {"a": "S", "b": "S"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        target = Schema(
            {
                "T": complex_type("T", "(a,b)", {"a": "S", "b": "S"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        return SchemaPair(source, target)

    def test_string_cast_mode_decides_early(self, reorder_pair):
        validator = CastValidator(reorder_pair, use_string_cast=True)
        report = validator.validate(parse("<t><b/><a/></t>"))
        assert not report.valid
        # Rejected after scanning the first child label only.
        assert report.stats.content_symbols_scanned == 1
        assert report.stats.early_content_decisions == 1

    def test_plain_mode_matches_paper_prototype(self, reorder_pair):
        validator = CastValidator(reorder_pair, use_string_cast=False)
        good = validator.validate(parse("<t><a/><b/></t>"))
        assert good.valid
        bad = validator.validate(parse("<t><b/><a/></t>"))
        assert not bad.valid

    def test_both_modes_agree(self, reorder_pair):
        fast = CastValidator(reorder_pair, use_string_cast=True)
        plain = CastValidator(reorder_pair, use_string_cast=False)
        for doc_text in ("<t><a/><b/></t>", "<t><b/><a/></t>"):
            doc = parse(doc_text)
            assert fast.validate(doc).valid == plain.validate(doc).valid


class TestSimpleComplexBoundary:
    def test_empty_element_crosses_kinds(self):
        source = Schema({"S": builtin("string")}, {"e": "S"})
        target = Schema({"C": complex_type("C", "()", {})}, {"e": "C"})
        validator = CastValidator(SchemaPair(source, target))
        assert validator.validate(parse("<e/>")).valid
        assert validator.validate(parse("<e></e>")).valid
        assert not validator.validate(parse("<e>text</e>")).valid

    def test_complex_to_simple(self):
        source = Schema({"C": complex_type("C", "()", {})}, {"e": "C"})
        target = Schema({"S": builtin("string")}, {"e": "S"})
        validator = CastValidator(SchemaPair(source, target))
        assert validator.validate(parse("<e/>")).valid

    def test_complex_to_integer_rejected(self):
        source = Schema({"C": complex_type("C", "()", {})}, {"e": "C"})
        target = Schema({"I": builtin("integer")}, {"e": "I"})
        validator = CastValidator(SchemaPair(source, target))
        assert not validator.validate(parse("<e/>")).valid


class TestIdenticalSchemas:
    def test_whole_document_skipped(self, exp2_target):
        pair = SchemaPair(exp2_target, exp2_target)
        validator = CastValidator(pair)
        report = validator.validate(make_purchase_order(100))
        assert report.valid
        assert report.stats.nodes_visited == 0
        assert report.stats.subtrees_skipped == 1
