"""Tests for the attribute-validation extension across the system."""

import random

import pytest

from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.repair import DocumentRepairer
from repro.core.updates import UpdateSession
from repro.core.validator import attribute_violation, validate_document
from repro.schema.dtd import parse_dtd
from repro.schema.model import Schema, attribute, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin, restrict
from repro.schema.synthesis import minimal_tree
from repro.schema.xsd import parse_xsd
from repro.xmltree.parser import parse


def schema_with_attrs(id_required=True, rank_type="xsd:positiveInteger"):
    return Schema(
        {
            "List": complex_type("List", "(item*)", {"item": "Item"}),
            "Item": complex_type(
                "Item", "()", {},
                {
                    "id": attribute("id", "xsd:string",
                                    required=id_required),
                    "rank": attribute("rank", rank_type),
                },
            ),
            "xsd:string": builtin("string"),
            "xsd:positiveInteger": builtin("positiveInteger"),
            "xsd:integer": builtin("integer"),
        },
        {"list": "List"},
        name=f"attrs-{id_required}-{rank_type}",
    )


class TestPlainValidation:
    def test_valid_attributes(self):
        schema = schema_with_attrs()
        doc = parse('<list><item id="a" rank="3"/></list>')
        assert validate_document(schema, doc).valid

    def test_missing_required(self):
        schema = schema_with_attrs()
        report = validate_document(schema, parse('<list><item rank="3"/></list>'))
        assert not report.valid
        assert "missing required attribute" in report.reason

    def test_undeclared_attribute(self):
        schema = schema_with_attrs()
        report = validate_document(
            schema, parse('<list><item id="a" bogus="1"/></list>')
        )
        assert not report.valid
        assert "undeclared attribute" in report.reason

    def test_value_conformance(self):
        schema = schema_with_attrs()
        report = validate_document(
            schema, parse('<list><item id="a" rank="-1"/></list>')
        )
        assert not report.valid
        assert "does not conform" in report.reason

    def test_reserved_names_ignored(self):
        schema = schema_with_attrs()
        doc = parse(
            '<list xmlns:x="urn:x" xsi:schemaLocation="u s">'
            '<item id="a" xml:lang="en"/></list>'
        )
        assert validate_document(schema, doc).valid

    def test_simple_typed_element_admits_no_attributes(self):
        schema = Schema(
            {
                "T": complex_type("T", "(v)", {"v": "Str"}),
                "Str": builtin("string"),
            },
            {"t": "T"},
        )
        report = validate_document(
            schema, parse('<t><v extra="1">x</v></t>')
        )
        assert not report.valid
        assert "does not allow attribute" in report.reason


class TestRelations:
    def test_required_vs_optional_subsumption(self):
        required = schema_with_attrs(id_required=True)
        optional = schema_with_attrs(id_required=False)
        forward = SchemaPair(required, optional)
        backward = SchemaPair(optional, required)
        assert forward.is_subsumed("Item", "Item")   # required ⊆ optional
        assert not backward.is_subsumed("Item", "Item")

    def test_value_type_narrowing(self):
        narrow = schema_with_attrs(rank_type="xsd:positiveInteger")
        wide = schema_with_attrs(rank_type="xsd:integer")
        assert SchemaPair(narrow, wide).is_subsumed("Item", "Item")
        assert not SchemaPair(wide, narrow).is_subsumed("Item", "Item")

    def test_missing_declaration_blocks_subsumption(self):
        with_attrs = schema_with_attrs(id_required=False)
        without = Schema(
            {
                "List": complex_type("List", "(item*)", {"item": "Item"}),
                "Item": complex_type("Item", "()", {}),
            },
            {"list": "List"},
        )
        pair = SchemaPair(with_attrs, without)
        assert not pair.is_subsumed("Item", "Item")
        # But an attribute-free Item is valid under both: non-disjoint.
        assert not pair.is_disjoint("Item", "Item")

    def test_required_attr_with_disjoint_values_is_disjoint(self):
        left = Schema(
            {
                "Item": complex_type("Item", "()", {}, {
                    "rank": attribute("rank", "Low", required=True),
                }),
                "Low": restrict(builtin("integer"), "Low", max_inclusive=5),
            },
            {"item": "Item"},
        )
        right = Schema(
            {
                "Item": complex_type("Item", "()", {}, {
                    "rank": attribute("rank", "High", required=True),
                }),
                "High": restrict(builtin("integer"), "High",
                                 min_inclusive=10),
            },
            {"item": "Item"},
        )
        assert SchemaPair(left, right).is_disjoint("Item", "Item")

    def test_required_attr_vs_undeclared_is_disjoint(self):
        left = Schema(
            {
                "Item": complex_type("Item", "()", {}, {
                    "id": attribute("id", "Str", required=True),
                }),
                "Str": builtin("string"),
            },
            {"item": "Item"},
        )
        right = Schema(
            {"Item": complex_type("Item", "()", {})},
            {"item": "Item"},
        )
        assert SchemaPair(left, right).is_disjoint("Item", "Item")

    def test_empty_element_not_shared_with_required_attr(self):
        complex_side = Schema(
            {
                "C": complex_type("C", "()", {}, {
                    "id": attribute("id", "Str", required=True),
                }),
                "Str": builtin("string"),
            },
            {"e": "C"},
        )
        simple_side = Schema({"S": builtin("string")}, {"e": "S"})
        assert SchemaPair(simple_side, complex_side).is_disjoint("S", "C")


class TestCastValidators:
    def test_cast_checks_attributes_on_visited_nodes(self):
        source = schema_with_attrs(rank_type="xsd:integer")
        target = schema_with_attrs(rank_type="xsd:positiveInteger")
        pair = SchemaPair(source, target)
        validator = CastValidator(pair)
        good = parse('<list><item id="a" rank="3"/></list>')
        bad = parse('<list><item id="a" rank="-3"/></list>')
        assert validator.validate(good).valid
        assert not validator.validate(bad).valid

    def test_cast_agrees_with_full(self):
        source = schema_with_attrs(id_required=False)
        target = schema_with_attrs(id_required=True)
        pair = SchemaPair(source, target)
        validator = CastValidator(pair)
        for text in (
            '<list><item id="a"/></list>',
            "<list><item/></list>",
        ):
            doc = parse(text)
            assert validate_document(source, doc).valid
            expected = validate_document(target, doc)
            assert validator.validate(doc).valid == expected.valid

    def test_castmods_attribute_edits(self):
        schema = schema_with_attrs()
        pair = SchemaPair(schema, schema)
        validator = CastWithModificationsValidator(pair)
        doc = parse('<list><item id="a" rank="1"/></list>')
        session = UpdateSession(doc)
        item = doc.root.children[0]
        session.set_attribute(item, "rank", "-5")
        report = validator.validate(session)
        assert not report.valid
        session.set_attribute(item, "rank", "7")
        assert validator.validate(session).valid

    def test_castmods_remove_required_attribute(self):
        schema = schema_with_attrs()
        pair = SchemaPair(schema, schema)
        validator = CastWithModificationsValidator(pair)
        doc = parse('<list><item id="a"/></list>')
        session = UpdateSession(doc)
        session.remove_attribute(doc.root.children[0], "id")
        assert not validator.validate(session).valid


class TestSynthesisAndRepair:
    def test_minimal_tree_carries_required_attributes(self):
        schema = schema_with_attrs()
        tree = minimal_tree(schema, "Item", "item")
        assert "id" in tree.attributes
        assert "rank" not in tree.attributes  # optional: omitted

    def test_repair_fixes_attributes(self):
        schema = schema_with_attrs()
        repairer = DocumentRepairer.for_schema(schema)
        doc = parse('<list><item rank="-2" bogus="x"/></list>')
        result = repairer.repair(doc)
        assert result.verification.valid
        kinds = sorted(a.kind for a in result.actions)
        assert "delattr" in kinds and "setattr" in kinds
        item = result.document.root.children[0]
        assert "id" in item.attributes
        assert "bogus" not in item.attributes

    def test_repair_strips_attributes_from_simple_elements(self):
        schema = Schema(
            {
                "T": complex_type("T", "(v)", {"v": "Str"}),
                "Str": builtin("string"),
            },
            {"t": "T"},
        )
        repairer = DocumentRepairer.for_schema(schema)
        result = repairer.repair(parse('<t><v extra="1">x</v></t>'))
        assert result.verification.valid
        assert any(a.kind == "delattr" for a in result.actions)


class TestDtdAttlist:
    DTD = """
    <!ELEMENT list (item*)>
    <!ELEMENT item EMPTY>
    <!ATTLIST item
      id CDATA #REQUIRED
      color (red|green|blue) "red"
      version CDATA #FIXED "1.0">
    """

    def test_declarations_parsed(self):
        schema = parse_dtd(self.DTD, roots=["list"])
        item = schema.type("item")
        assert item.attributes["id"].required
        assert not item.attributes["color"].required
        color_type = schema.type(item.attributes["color"].type_name)
        assert color_type.enumeration == {"red", "green", "blue"}

    def test_fixed_value_enforced(self):
        schema = parse_dtd(self.DTD, roots=["list"])
        good = parse('<list><item id="a" version="1.0"/></list>')
        bad = parse('<list><item id="a" version="2.0"/></list>')
        assert validate_document(schema, good).valid
        assert not validate_document(schema, bad).valid

    def test_attlist_on_pcdata_element_rejected(self):
        from repro.errors import UnsupportedFeatureError

        with pytest.raises(UnsupportedFeatureError, match="#PCDATA"):
            parse_dtd(
                "<!ELEMENT t (#PCDATA)><!ATTLIST t x CDATA #IMPLIED>"
            )

    def test_dtd_cast_with_attributes(self):
        from repro.core.dtdcast import DTDCastValidator

        source = parse_dtd(self.DTD, roots=["list"])
        target = parse_dtd(
            self.DTD.replace('color (red|green|blue) "red"',
                             'color (red|green) "red"'),
            roots=["list"],
        )
        pair = SchemaPair(source, target)
        validator = DTDCastValidator(pair)
        assert validator.validate(
            parse('<list><item id="a" color="red"/></list>')
        ).valid
        assert not validator.validate(
            parse('<list><item id="a" color="blue"/></list>')
        ).valid


class TestXsdAttributes:
    SCHEMA = """
    <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:element name="item" type="Item"/>
      <xsd:complexType name="Item">
        <xsd:sequence/>
        <xsd:attribute name="id" type="xsd:string" use="required"/>
        <xsd:attribute name="rank">
          <xsd:simpleType>
            <xsd:restriction base="xsd:positiveInteger">
              <xsd:maxExclusive value="10"/>
            </xsd:restriction>
          </xsd:simpleType>
        </xsd:attribute>
        <xsd:attribute name="legacy" type="xsd:string"
                       use="prohibited"/>
      </xsd:complexType>
    </xsd:schema>
    """

    def test_xsd_attributes_parsed(self):
        schema = parse_xsd(self.SCHEMA)
        item = schema.type("Item")
        assert item.attributes["id"].required
        assert "legacy" not in item.attributes  # prohibited
        rank_type = schema.type(item.attributes["rank"].type_name)
        assert rank_type.validate("9")
        assert not rank_type.validate("10")

    def test_validation(self):
        schema = parse_xsd(self.SCHEMA)
        assert validate_document(
            schema, parse('<item id="a" rank="3"/>')
        ).valid
        assert not validate_document(
            schema, parse('<item rank="3"/>')
        ).valid
        assert not validate_document(
            schema, parse('<item id="a" rank="99"/>')
        ).valid


class TestRandomizedWithAttributes:
    @pytest.mark.parametrize("seed", range(10))
    def test_sampled_documents_attribute_valid(self, seed):
        from repro.workloads.generators import (
            random_schema,
            sample_document,
        )

        rng = random.Random(7000 + seed)
        for _ in range(20):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, schema, max_depth=6)
            if doc is None:
                continue
            report = validate_document(schema, doc)
            assert report.valid, report.reason
            return
        pytest.skip("no schema/document produced")
