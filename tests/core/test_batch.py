"""Parallel batch validation: verdicts and stats must not depend on jobs."""

import os

import pytest

from repro.core.batch import validate_batch, validate_directory
from repro.core.cast import CastValidator
from repro.core.result import ValidationStats
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.parser import parse_file
from repro.xmltree.serializer import write_file


@pytest.fixture()
def po_corpus(tmp_path, exp2_source):
    """A directory of purchase orders, two of which are invalid."""
    paths = []
    for index, items in enumerate([1, 2, 3, 5, 8, 13]):
        document = make_purchase_order(items)
        path = str(tmp_path / f"po{index}.xml")
        write_file(document, path)
        paths.append(path)
    # Two broken documents: one violating the target quantity facet
    # (valid under the source schema — the interesting cast failure),
    # one not even well-formed.
    bad = make_purchase_order(2)
    for item in bad.root.children[-1].children:
        for child in item.children:
            if child.label == "quantity":
                child.children[0].value = "150"  # >= exp2 target bound
    bad_path = str(tmp_path / "po_bad.xml")
    write_file(bad, bad_path)
    paths.append(bad_path)
    broken_path = str(tmp_path / "po_broken.xml")
    with open(broken_path, "w", encoding="utf-8") as handle:
        handle.write("<purchaseOrder><unclosed>")
    paths.append(broken_path)
    return sorted(paths)


@pytest.fixture()
def exp2_fresh_pair(exp2_source, exp2_target):
    # A fresh pair per test: session-scoped fixtures must not leak
    # warmed caches between parallel and sequential runs.
    return SchemaPair(exp2_source, exp2_target)


class TestJobsEquivalence:
    def test_parallel_verdicts_match_sequential(
        self, exp2_fresh_pair, po_corpus
    ):
        sequential = validate_batch(exp2_fresh_pair, po_corpus, jobs=1)
        parallel = validate_batch(exp2_fresh_pair, po_corpus, jobs=4)
        assert [
            (result.path, result.valid, bool(result.error))
            for result in sequential.results
        ] == [
            (result.path, result.valid, bool(result.error))
            for result in parallel.results
        ]
        assert sequential.valid_count == parallel.valid_count == 6
        assert not sequential.all_valid

    def test_merged_stats_equal_sequential_sum(
        self, exp2_fresh_pair, po_corpus
    ):
        batch = validate_batch(
            exp2_fresh_pair, po_corpus, jobs=4, collect_stats=True
        )
        # The ground truth: validate each parseable document one at a
        # time with the instrumented validator and merge by hand.
        validator = CastValidator(exp2_fresh_pair, collect_stats=True)
        expected = ValidationStats()
        for path in po_corpus:
            try:
                document = parse_file(path)
            except Exception:
                continue
            expected.merge(validator.validate(document).stats)
        assert batch.stats == expected

    def test_stats_off_by_default(self, exp2_fresh_pair, po_corpus):
        batch = validate_batch(exp2_fresh_pair, po_corpus, jobs=1)
        assert batch.stats is None


class TestBatchSemantics:
    def test_parse_failure_is_reported_not_fatal(
        self, exp2_fresh_pair, po_corpus
    ):
        batch = validate_batch(exp2_fresh_pair, po_corpus, jobs=1)
        by_name = {
            os.path.basename(result.path): result for result in batch.results
        }
        assert by_name["po_broken.xml"].error
        assert not by_name["po_broken.xml"].ok
        assert by_name["po_bad.xml"].reason  # cast failure, not an error
        assert batch.total == len(po_corpus)

    def test_results_sorted_by_path(self, exp2_fresh_pair, po_corpus):
        batch = validate_batch(
            exp2_fresh_pair, list(reversed(po_corpus)), jobs=4
        )
        assert [result.path for result in batch.results] == po_corpus

    def test_validate_directory_filters_by_pattern(
        self, exp2_fresh_pair, po_corpus, tmp_path
    ):
        (tmp_path / "notes.txt").write_text("not xml")
        batch = validate_directory(
            exp2_fresh_pair, str(tmp_path), jobs=1
        )
        assert [result.path for result in batch.results] == po_corpus

    def test_jobs_must_be_positive(self, exp2_fresh_pair):
        with pytest.raises(ValueError):
            validate_batch(exp2_fresh_pair, [], jobs=0)

    def test_empty_batch(self, exp2_fresh_pair):
        batch = validate_batch(exp2_fresh_pair, [], jobs=4)
        assert batch.total == 0 and batch.all_valid


class TestRecursiveDiscovery:
    @pytest.fixture()
    def nested_corpus(self, tmp_path):
        """Documents sharded over nested directories, plus decoys."""
        layout = {
            "top.xml": 1,
            "shard_b/doc1.xml": 2,
            "shard_b/doc2.xml": 3,
            "shard_a/deep/leaf.xml": 2,
        }
        paths = []
        for relative, items in layout.items():
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            write_file(make_purchase_order(items), str(path))
            paths.append(str(path))
        (tmp_path / "shard_b" / "notes.txt").write_text("not xml")
        (tmp_path / "dir.xml").mkdir()  # directory with a matching name
        return sorted(paths)

    def test_default_stays_top_level(
        self, exp2_fresh_pair, nested_corpus, tmp_path
    ):
        batch = validate_directory(exp2_fresh_pair, str(tmp_path))
        assert [os.path.basename(r.path) for r in batch.results] == [
            "top.xml"
        ]

    def test_recursive_finds_the_whole_tree(
        self, exp2_fresh_pair, nested_corpus, tmp_path
    ):
        batch = validate_directory(
            exp2_fresh_pair, str(tmp_path), recursive=True
        )
        assert [r.path for r in batch.results] == nested_corpus
        assert batch.all_valid

    def test_recursive_ordering_is_deterministic(
        self, exp2_fresh_pair, nested_corpus, tmp_path
    ):
        from repro.core.batch import discover_documents

        first = discover_documents(str(tmp_path), recursive=True)
        second = discover_documents(str(tmp_path), recursive=True)
        assert first == second == nested_corpus

    def test_recursive_respects_pattern(
        self, exp2_fresh_pair, nested_corpus, tmp_path
    ):
        from repro.core.batch import discover_documents

        assert discover_documents(
            str(tmp_path), pattern="leaf.*", recursive=True
        ) == [str(tmp_path / "shard_a" / "deep" / "leaf.xml")]

    def test_recursive_parallel_matches_serial(
        self, exp2_fresh_pair, nested_corpus, tmp_path
    ):
        serial = validate_directory(
            exp2_fresh_pair, str(tmp_path), recursive=True, jobs=1
        )
        parallel = validate_directory(
            exp2_fresh_pair, str(tmp_path), recursive=True, jobs=3
        )
        assert serial.results == parallel.results
