"""Tests for streaming validation (O(depth) memory)."""

import random

import pytest

from repro.core.streaming import StreamingValidator, validate_stream
from repro.core.validator import validate_document
from repro.schema.model import Schema, attribute, complex_type
from repro.schema.simple import builtin, restrict
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.purchase_orders import (
    make_purchase_order,
    target_schema_experiment2,
)
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize


@pytest.fixture(scope="module")
def po_schema():
    return target_schema_experiment2()


class TestVerdicts:
    def test_valid_purchase_order(self, po_schema):
        text = serialize(make_purchase_order(10), indent="  ")
        report = validate_stream(po_schema, text)
        assert report.valid

    def test_structural_failure(self, po_schema):
        text = "<purchaseOrder><items/></purchaseOrder>"
        report = validate_stream(po_schema, text)
        assert not report.valid
        assert "content model" in report.reason

    def test_value_failure(self, po_schema):
        doc = make_purchase_order(3, quantity_of=lambda i: 500)
        report = validate_stream(po_schema, serialize(doc))
        assert not report.valid
        assert "does not conform" in report.reason

    def test_unknown_root(self, po_schema):
        assert not validate_stream(po_schema, "<mystery/>").valid

    def test_unexpected_element(self, po_schema):
        text = "<purchaseOrder><surprise/></purchaseOrder>"
        report = validate_stream(po_schema, text)
        assert not report.valid
        assert "unexpected element" in report.reason

    def test_malformed_input_reported(self, po_schema):
        report = validate_stream(po_schema, "<purchaseOrder><oops")
        assert not report.valid
        assert "not well-formed" in report.reason

    def test_character_data_in_element_content(self, po_schema):
        text = "<purchaseOrder>stray</purchaseOrder>"
        report = validate_stream(po_schema, text)
        assert not report.valid
        assert "character data" in report.reason


class TestAttributeChecks:
    def test_attributes_validated_at_start_tag(self):
        schema = Schema(
            {
                "T": complex_type("T", "()", {}, {
                    "id": attribute("id", "xsd:string", required=True),
                }),
                "xsd:string": builtin("string"),
            },
            {"t": "T"},
        )
        assert validate_stream(schema, '<t id="a"/>').valid
        report = validate_stream(schema, "<t/>")
        assert not report.valid
        assert "missing required" in report.reason


class TestAgreementWithDom:
    def test_failure_paths_match(self, po_schema):
        doc = make_purchase_order(5, quantity_of=lambda i: 500 if i == 3
                                  else 7)
        text = serialize(doc, indent="  ")
        streamed = validate_stream(po_schema, text)
        dom = validate_document(po_schema, parse(text))
        assert streamed.valid == dom.valid is False
        assert streamed.path == dom.path

    @pytest.mark.parametrize("seed", range(12))
    def test_random_agreement(self, seed):
        rng = random.Random(4242 + seed)
        schema = None
        for _ in range(20):
            try:
                schema = random_schema(rng)
                break
            except Exception:
                continue
        if schema is None:
            pytest.skip("no schema")
        validator = StreamingValidator(schema)
        for _ in range(4):
            doc = sample_document(rng, schema, max_depth=6)
            if doc is None:
                continue
            text = serialize(doc, indent="  ")
            streamed = validator.validate_text(text)
            dom = validate_document(schema, parse(text))
            assert streamed.valid == dom.valid
            assert streamed.valid  # sampled docs are valid

    @pytest.mark.parametrize("seed", range(8))
    def test_random_agreement_on_corrupted_documents(self, seed):
        """Mutate serialized text-level values/labels and compare."""
        rng = random.Random(8800 + seed)
        schema = None
        doc = None
        for _ in range(30):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, schema, max_depth=5)
            if doc is not None:
                break
        if doc is None:
            pytest.skip("no document")
        validator = StreamingValidator(schema)
        from repro.core.updates import UpdateSession
        from repro.workloads.mutations import random_edits

        session = UpdateSession(doc)
        random_edits(rng, session, 4, labels=sorted(schema.alphabet))
        text = serialize(session.result_document(), indent="  ")
        streamed = validator.validate_text(text)
        dom = validate_document(schema, parse(text))
        assert streamed.valid == dom.valid, (streamed.reason, dom.reason)


class TestCounters:
    def test_stats_match_dom_validator(self, po_schema):
        doc = make_purchase_order(8)
        text = serialize(doc)
        streamed = validate_stream(po_schema, text)
        dom = validate_document(po_schema, parse(text))
        assert streamed.stats.elements_visited == dom.stats.elements_visited
        assert (
            streamed.stats.simple_values_checked
            == dom.stats.simple_values_checked
        )
        assert (
            streamed.stats.content_symbols_scanned
            == dom.stats.content_symbols_scanned
        )
