"""Fault-injection: the batch contract under adversarial inputs and
worker faults.

Every test drives :func:`repro.core.batch.validate_batch` through the
harness in ``tests/faultinject.py``: adversarial documents must surface
as their specific typed error in ``DocumentResult.error_type`` (never an
unhandled exception), and injected worker faults — hard crashes,
unexpected exceptions, transient IO errors — must cost at most the one
document they hit.
"""

import os

import pytest

from tests.faultinject import (
    ADVERSARIAL_CASES,
    CORPUS_LIMITS,
    arm_fuse,
    bug_hook,
    crash_hook,
    expected_error,
    fuse_oserror_hook,
    midchunk_crash_hook,
    write_corpus,
)
from repro.core.batch import validate_batch, validate_directory
from repro.core.streaming import StreamingCastValidator
from repro.errors import BatchError, DocumentTooLargeError
from repro.guards import Limits
from repro.schema.registry import SchemaPair
from repro.workloads.adversarial import oversized_document
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import write_file


@pytest.fixture()
def exp2_fresh_pair(exp2_source, exp2_target):
    return SchemaPair(exp2_source, exp2_target)


def write_valid_pos(directory, names):
    """Write small, valid purchase orders; returns ``name -> path``."""
    paths = {}
    for index, name in enumerate(names):
        path = os.path.join(str(directory), f"{name}.xml")
        write_file(make_purchase_order(1 + index % 2), path)
        paths[name] = path
    return paths


def by_name(batch):
    return {os.path.basename(r.path): r for r in batch.results}


class TestAdversarialCorpus:
    """Each adversarial document yields its typed error; the good
    documents around it are unaffected."""

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_mixed_corpus_error_types(self, exp2_fresh_pair, tmp_path, jobs):
        corpus = write_corpus(tmp_path)
        good = write_valid_pos(tmp_path, ["good1", "good2"])
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(list(corpus.values()) + list(good.values())),
            jobs=jobs,
            limits=CORPUS_LIMITS,
        )
        results = by_name(batch)
        for name in ADVERSARIAL_CASES:
            result = results[f"{name}.xml"]
            assert result.error, name
            assert result.error_type == expected_error(name).__name__, name
            assert not result.ok
        assert results["good1.xml"].ok
        assert results["good2.xml"].ok
        assert batch.total == len(corpus) + len(good)
        assert len(batch.errors) == len(corpus)

    def test_verdicts_independent_of_jobs(self, exp2_fresh_pair, tmp_path):
        corpus = write_corpus(tmp_path)
        paths = sorted(corpus.values())
        sequential = validate_batch(
            exp2_fresh_pair, paths, jobs=1, limits=CORPUS_LIMITS
        )
        parallel = validate_batch(
            exp2_fresh_pair, paths, jobs=3, limits=CORPUS_LIMITS
        )
        assert [
            (r.path, r.error_type) for r in sequential.results
        ] == [(r.path, r.error_type) for r in parallel.results]

    def test_per_document_deadline(self, exp2_fresh_pair, tmp_path):
        # Big enough to outlast the deadline token's check stride.
        paths = []
        for name in ("slow1", "slow2"):
            path = str(tmp_path / f"{name}.xml")
            write_file(make_purchase_order(100), path)
            paths.append(path)
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(paths),
            jobs=1,
            limits=Limits(deadline_seconds=1e-9),
        )
        for result in batch.results:
            assert result.error_type == "DeadlineExceededError"


class TestWorkerCrash:
    def test_crash_costs_exactly_one_document(
        self, exp2_fresh_pair, tmp_path
    ):
        names = ["doc0", "doc1", "docCRASH", "doc3", "doc4", "doc5"]
        paths = write_valid_pos(tmp_path, names)
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(paths.values()),
            jobs=3,
            fault_hook=crash_hook,
        )
        results = by_name(batch)
        assert results["docCRASH.xml"].error_type == "WorkerCrash"
        assert "died" in results["docCRASH.xml"].error
        for name in names:
            if "CRASH" not in name:
                assert results[f"{name}.xml"].ok, name
        assert batch.total == len(names)

    def test_two_crashes_still_only_cost_themselves(
        self, exp2_fresh_pair, tmp_path
    ):
        names = ["a0", "aCRASH1", "a2", "aCRASH2", "a4", "a5"]
        paths = write_valid_pos(tmp_path, names)
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(paths.values()),
            jobs=2,
            fault_hook=crash_hook,
        )
        results = by_name(batch)
        crashed = [n for n, r in results.items() if r.error_type == "WorkerCrash"]
        assert sorted(crashed) == ["aCRASH1.xml", "aCRASH2.xml"]
        for name in ("a0", "a2", "a4", "a5"):
            assert results[f"{name}.xml"].ok, name


class TestMidChunkCrash:
    """A worker killed partway through a multi-document chunk."""

    def test_chunk_tail_is_recovered_and_culprit_named(
        self, exp2_fresh_pair, tmp_path
    ):
        # One worker, one chunk holding the whole batch, victim in the
        # middle: the documents before it were already reported when
        # the worker dies; the victim and the tail re-run in quarantine,
        # which must blame exactly the victim.
        names = ["m0", "m1", "mKILLMID", "m3", "m4", "m5"]
        paths = write_valid_pos(tmp_path, names)
        ordered = sorted(paths.values())
        batch = validate_batch(
            exp2_fresh_pair,
            ordered,
            jobs=2,
            chunk_size=len(ordered),
            fault_hook=midchunk_crash_hook,
        )
        results = by_name(batch)
        assert results["mKILLMID.xml"].error_type == "WorkerCrash"
        for name in names:
            if "KILLMID" not in name:
                assert results[f"{name}.xml"].ok, name
        assert batch.total == len(names)

    def test_midchunk_crash_keeps_checkpoint_consistent(
        self, exp2_fresh_pair, tmp_path
    ):
        names = ["c0", "c1", "cKILLMID", "c3", "c4"]
        paths = write_valid_pos(tmp_path, names)
        ordered = sorted(paths.values())
        journal = str(tmp_path / "crash.ckpt.jsonl")
        batch = validate_batch(
            exp2_fresh_pair,
            ordered,
            jobs=2,
            chunk_size=len(ordered),
            fault_hook=midchunk_crash_hook,
            checkpoint=journal,
        )
        # Every document — including the crash verdict — is journaled
        # exactly once, so a resume restores the whole batch verbatim
        # without re-running the fault hook.
        resumed = validate_batch(
            exp2_fresh_pair,
            ordered,
            checkpoint=journal,
            resume=True,
        )
        assert resumed.resumed == len(names)
        assert resumed.results == batch.results


class TestSpawnRouteFaults:
    """The artifact/shared-memory transport path (workers that cannot
    inherit the pair by fork) under the same fault contract."""

    def test_spawn_fleet_validates_and_isolates_crash(
        self, exp2_fresh_pair, tmp_path
    ):
        from repro.core.fleet import FleetConfig, WorkerFleet

        names = ["s0", "s1", "sCRASH", "s3"]
        paths = write_valid_pos(tmp_path, names)
        with WorkerFleet(
            exp2_fresh_pair,
            2,
            config=FleetConfig(fault_hook=crash_hook),
            start_method="spawn",
        ) as fleet:
            batch = validate_batch(
                exp2_fresh_pair,
                sorted(paths.values()),
                fleet=fleet,
                fault_hook=crash_hook,
            )
            assert fleet.transport.pickle_count <= 1
        results = by_name(batch)
        assert results["sCRASH.xml"].error_type == "WorkerCrash"
        for name in ("s0", "s1", "s3"):
            assert results[f"{name}.xml"].ok, name


class TestUnexpectedException:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_bug_is_reported_not_fatal(self, exp2_fresh_pair, tmp_path, jobs):
        paths = write_valid_pos(tmp_path, ["ok0", "okBUG", "ok2"])
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(paths.values()),
            jobs=jobs,
            fault_hook=bug_hook,
        )
        results = by_name(batch)
        bug = results["okBUG.xml"]
        assert bug.error_type == "RuntimeError"
        assert bug.error.startswith("unexpected RuntimeError")
        assert results["ok0.xml"].ok and results["ok2.xml"].ok


class TestTransientIO:
    def test_retry_consumes_the_fuse(self, exp2_fresh_pair, tmp_path):
        paths = write_valid_pos(tmp_path, ["flaky", "steady"])
        arm_fuse(paths["flaky"])
        batch = validate_batch(
            exp2_fresh_pair,
            sorted(paths.values()),
            jobs=1,
            retries=1,
            fault_hook=fuse_oserror_hook,
        )
        results = by_name(batch)
        assert results["flaky.xml"].ok
        assert results["flaky.xml"].attempts == 2
        assert results["steady.xml"].attempts == 1

    def test_no_retries_records_the_oserror(self, exp2_fresh_pair, tmp_path):
        paths = write_valid_pos(tmp_path, ["flaky"])
        arm_fuse(paths["flaky"])
        batch = validate_batch(
            exp2_fresh_pair,
            list(paths.values()),
            jobs=1,
            retries=0,
            fault_hook=fuse_oserror_hook,
        )
        assert batch.results[0].error_type == "OSError"
        assert batch.results[0].attempts == 1

    def test_retries_must_be_non_negative(self, exp2_fresh_pair):
        with pytest.raises(ValueError, match="retries"):
            validate_batch(exp2_fresh_pair, [], retries=-1)


class TestValidateDirectory:
    def test_missing_directory_raises_batch_error(self, exp2_fresh_pair):
        with pytest.raises(BatchError, match="does not exist"):
            validate_directory(exp2_fresh_pair, "/no/such/dir")

    def test_file_as_directory_raises_batch_error(
        self, exp2_fresh_pair, tmp_path
    ):
        path = tmp_path / "file.xml"
        path.write_text("<a/>")
        with pytest.raises(BatchError):
            validate_directory(exp2_fresh_pair, str(path))

    def test_non_file_entries_are_skipped(self, exp2_fresh_pair, tmp_path):
        paths = write_valid_pos(tmp_path, ["real"])
        (tmp_path / "sub.xml").mkdir()  # a directory whose name matches
        batch = validate_directory(exp2_fresh_pair, str(tmp_path))
        assert [r.path for r in batch.results] == [paths["real"]]

    def test_limits_reach_the_workers(self, exp2_fresh_pair, tmp_path):
        write_corpus(tmp_path)
        batch = validate_directory(
            exp2_fresh_pair, str(tmp_path), jobs=2, limits=CORPUS_LIMITS
        )
        results = by_name(batch)
        for name in ADVERSARIAL_CASES:
            assert (
                results[f"{name}.xml"].error_type
                == expected_error(name).__name__
            )


class TestStreamingGuards:
    def test_streaming_cast_rejects_oversized_text(self, exp2_fresh_pair):
        validator = StreamingCastValidator(
            exp2_fresh_pair, limits=CORPUS_LIMITS
        )
        with pytest.raises(DocumentTooLargeError):
            validator.validate_text(oversized_document(20_000))
