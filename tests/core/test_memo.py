"""Memoized pair-validation: correctness of the verdict cache.

The load-bearing claim is equivalence: with or without a
:class:`~repro.core.memo.ValidationMemo`, every validator must return
the same verdict on every document — including documents edited through
an :class:`~repro.core.updates.UpdateSession`, where stale structural
hashes would silently poison the cache if Δ-invalidation missed a node.
"""

import random

import pytest

from repro.core.batch import validate_batch
from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.memo import DEFAULT_MEMO_SIZE, ValidationMemo
from repro.core.updates import UpdateSession
from repro.errors import SchemaError
from repro.guards import Limits
from repro.schema import artifacts
from repro.schema.dtd import parse_dtd
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.purchase_orders import (
    make_item,
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.parser import parse
from repro.xmltree.serializer import write_file


class TestValidationMemo:
    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            ValidationMemo(0)
        with pytest.raises(ValueError):
            ValidationMemo(-5)

    def test_default_capacity(self):
        assert ValidationMemo().capacity == DEFAULT_MEMO_SIZE

    def test_limits_clamp_capacity(self):
        limits = Limits(max_memo_entries=3)
        assert ValidationMemo(100, limits=limits).capacity == 3
        assert ValidationMemo(2, limits=limits).capacity == 2

    def test_hit_miss_counters(self):
        memo = ValidationMemo(4)
        assert not memo.contains("a")
        memo.add("a")
        assert memo.contains("a")
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.lookups == 2
        assert memo.hit_rate == 0.5

    def test_eviction_is_lru_ordered(self):
        memo = ValidationMemo(2)
        memo.add("a")
        memo.add("b")
        memo.add("c")  # evicts a, the least recently used
        assert memo.evictions == 1
        assert not memo.contains("a")
        assert memo.contains("b")
        assert memo.contains("c")

    def test_contains_refreshes_lru_order(self):
        memo = ValidationMemo(2)
        memo.add("a")
        memo.add("b")
        assert memo.contains("a")  # a becomes most recently used
        memo.add("c")  # now b is the eviction victim
        assert memo.contains("a")
        assert not memo.contains("b")

    def test_re_adding_does_not_evict(self):
        memo = ValidationMemo(2)
        memo.add("a")
        memo.add("b")
        memo.add("a")
        assert memo.evictions == 0
        assert memo.contains("a")
        assert memo.contains("b")

    def test_bind_first_caller_wins(self):
        memo = ValidationMemo(4)
        pair = object()
        assert memo.bind(pair) is memo
        assert memo.bind(pair) is memo
        with pytest.raises(ValueError):
            memo.bind(object())

    def test_clear_drops_entries_keeps_counters(self):
        memo = ValidationMemo(4)
        memo.add("a")
        assert memo.contains("a")
        memo.clear()
        assert not memo.contains("a")
        assert (memo.hits, memo.misses) == (1, 1)

    def test_snapshot(self):
        memo = ValidationMemo(1)
        memo.add("a")
        memo.contains("a")
        memo.contains("b")
        memo.add("b")  # evicts a
        assert memo.snapshot() == (1, 1, 1)


def repetitive_po(item_count: int = 40, shapes: int = 4):
    document = make_purchase_order(0)
    items = document.root.find("items")
    for index in range(item_count):
        items.append(
            make_item(index % shapes, quantity=1 + index % shapes)
        )
    return document


class TestMemoizedCast:
    @pytest.fixture()
    def pair(self, exp2_pair):
        return exp2_pair

    def test_duplicate_subtrees_hit(self, pair):
        memo = ValidationMemo()
        validator = CastValidator(pair, collect_stats=True, memo=memo)
        report = validator.validate(repetitive_po())
        assert report.valid
        assert report.stats.memo_hits > 0
        assert report.stats.memo_misses > 0
        assert memo.hits == report.stats.memo_hits

    def test_memo_reduces_elements_visited(self, pair):
        document = repetitive_po()
        plain = CastValidator(pair, collect_stats=True).validate(document)
        memoized = CastValidator(
            pair, collect_stats=True, memo=ValidationMemo()
        ).validate(document)
        assert plain.valid and memoized.valid
        assert (
            memoized.stats.elements_visited < plain.stats.elements_visited
        )

    def test_fast_path_reports_memo_stats(self, pair):
        memo = ValidationMemo()
        validator = CastValidator(pair, collect_stats=False, memo=memo)
        report = validator.validate(repetitive_po())
        assert report.valid
        assert report.stats is not None
        assert report.stats.memo_hits > 0

    def test_per_document_stats_are_deltas(self, pair):
        memo = ValidationMemo()
        validator = CastValidator(pair, collect_stats=True, memo=memo)
        first = validator.validate(repetitive_po())
        second = validator.validate(repetitive_po())
        # The second document is structurally identical, so its root
        # subtree hits immediately; its counters must not include the
        # first document's misses.
        assert second.stats.memo_hits >= 1
        assert second.stats.memo_misses < first.stats.memo_misses
        total = first.stats.memo_lookups + second.stats.memo_lookups
        assert memo.lookups == total

    def test_failure_not_cached(self, exp1_pair):
        memo = ValidationMemo()
        validator = CastValidator(
            exp1_pair, collect_stats=True, memo=memo
        )
        bad = make_purchase_order(3, with_billto=False)
        first = validator.validate(bad)
        second = validator.validate(bad)
        assert not first.valid and not second.valid
        assert first.reason == second.reason
        assert first.path == second.path

    def test_tiny_capacity_still_correct(self, pair):
        document = repetitive_po()
        plain = CastValidator(pair, collect_stats=True).validate(document)
        memoized = CastValidator(
            pair, collect_stats=True, memo=ValidationMemo(2)
        ).validate(document)
        assert plain.valid == memoized.valid

    def test_memo_binds_to_validator_pair(self, pair):
        memo = ValidationMemo()
        CastValidator(pair, memo=memo)
        other = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        with pytest.raises(ValueError):
            CastValidator(other, memo=memo)


class TestPropertyEquivalence:
    """Memoized == unmemoized on generated schema pairs and corpora."""

    def sample_corpus(self, seed: int, documents: int = 6):
        rng = random.Random(seed)
        while True:
            try:
                source = random_schema(rng, name="src")
                target = random_schema(rng, name="tgt")
                break
            except SchemaError:
                continue
        corpus = []
        attempts = 0
        while len(corpus) < documents and attempts < documents * 20:
            attempts += 1
            document = sample_document(rng, source)
            if document is not None:
                corpus.append(document)
        return SchemaPair(source, target), corpus

    @pytest.mark.parametrize("seed", [11, 23, 37, 59])
    def test_verdicts_identical(self, seed):
        pair, corpus = self.sample_corpus(seed)
        plain = CastValidator(pair, collect_stats=True)
        fast = CastValidator(pair, collect_stats=False)
        memo = ValidationMemo()
        memoized = CastValidator(pair, collect_stats=True, memo=memo)
        memo_fast = CastValidator(
            pair, collect_stats=False, memo=ValidationMemo()
        )
        for document in corpus:
            expected = plain.validate(document)
            for validator in (fast, memoized, memo_fast):
                report = validator.validate(document)
                assert report.valid == expected.valid
                if not expected.valid:
                    assert report.path == expected.path

    @pytest.mark.parametrize("seed", [101, 211])
    def test_verdicts_identical_after_edits(self, seed):
        """Edited documents agree too — Δ-invalidation is exact."""
        pair, corpus = self.sample_corpus(seed, documents=4)
        memo = ValidationMemo()
        memoized = CastWithModificationsValidator(pair, memo=memo)
        plain = CastValidator(pair, collect_stats=True)
        rng = random.Random(seed)
        for document in corpus:
            # Warm the memo on the pristine document first, so a stale
            # hash surviving the edit would be served from cache.
            CastValidator(pair, collect_stats=True, memo=memo).validate(
                document
            )
            session = UpdateSession(document)
            elements = list(document.root.iter())
            victim = elements[rng.randrange(len(elements))]
            session.rename(victim, victim.label + "X")
            expected = plain.validate(session.result_document())
            report = memoized.validate(session)
            assert report.valid == expected.valid


class TestCastModsMemo:
    def test_untouched_subtrees_hit_and_agree(self, exp2_pair):
        document = repetitive_po()
        memo = ValidationMemo()
        # Seal hashes and populate the memo from the pristine document.
        CastValidator(
            exp2_pair, collect_stats=True, memo=memo
        ).validate(document)
        session = UpdateSession(document)
        items = document.root.find("items")
        first_item = items.child_elements()[0]
        quantity = first_item.find("quantity")
        session.replace_text(quantity.children[0], "7")
        validator = CastWithModificationsValidator(exp2_pair, memo=memo)
        report = validator.validate(session)
        expected = CastValidator(exp2_pair, collect_stats=True).validate(
            session.result_document()
        )
        assert report.valid == expected.valid
        # Untouched sibling items are duplicates of memoized shapes.
        assert report.stats.memo_hits > 0

    def test_edited_subtree_not_served_stale(self, exp2_pair):
        document = repetitive_po()
        memo = ValidationMemo()
        CastValidator(
            exp2_pair, collect_stats=True, memo=memo
        ).validate(document)
        session = UpdateSession(document)
        items = document.root.find("items")
        # Break one item: rename its quantity element.  The memo knows
        # the *old* shape; the edit must invalidate the hash chain so
        # the broken subtree is re-examined and rejected.
        victim = items.child_elements()[0].find("quantity")
        session.rename(victim, "quantityX")
        report = CastWithModificationsValidator(
            exp2_pair, memo=memo
        ).validate(session)
        assert not report.valid


SOURCE_DTD = """
<!ELEMENT po (shipTo, billTo?, items)>
<!ELEMENT shipTo (name)>
<!ELEMENT billTo (name)>
<!ELEMENT items (item*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT name (#PCDATA)>
"""

TARGET_DTD = """
<!ELEMENT po (shipTo, billTo, items)>
<!ELEMENT shipTo (name)>
<!ELEMENT billTo (name)>
<!ELEMENT items (item+)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT name (#PCDATA)>
"""


class TestDTDCastMemo:
    @pytest.fixture()
    def dtd_pair(self):
        return SchemaPair(
            parse_dtd(SOURCE_DTD, roots=["po"]),
            parse_dtd(TARGET_DTD, roots=["po"]),
        )

    def po_doc(self, items: int):
        body = "".join(f"<item>{i % 3}</item>" for i in range(items))
        return parse(
            "<po><shipTo><name>a</name></shipTo>"
            "<billTo><name>b</name></billTo>"
            f"<items>{body}</items></po>"
        )

    def test_memoized_verdicts_agree(self, dtd_pair):
        memo = ValidationMemo()
        plain = DTDCastValidator(dtd_pair)
        memoized = DTDCastValidator(dtd_pair, memo=memo)
        for items in (0, 1, 5):
            document = self.po_doc(items)
            assert (
                memoized.validate(document).valid
                == plain.validate(document).valid
            )

    def test_repeat_document_hits(self, dtd_pair):
        memo = ValidationMemo()
        memoized = DTDCastValidator(dtd_pair, memo=memo)
        first = memoized.validate(self.po_doc(4))
        second = memoized.validate(self.po_doc(4))
        assert first.valid and second.valid
        assert second.stats.memo_hits > 0
        assert second.stats.elements_visited < first.stats.elements_visited

    def test_shared_memo_with_cast_does_not_collide(self, dtd_pair):
        """"imm" keys keep immediate-content verdicts separate."""
        memo = ValidationMemo()
        document = self.po_doc(3)
        dtd_report = DTDCastValidator(dtd_pair, memo=memo).validate(
            document
        )
        cast_report = CastValidator(
            dtd_pair, collect_stats=True, memo=memo
        ).validate(document)
        assert dtd_report.valid and cast_report.valid
        # The full-subtree walk may reuse nothing from the
        # immediate-content entries: all its root-level lookups miss.
        assert cast_report.stats.memo_misses > 0


class TestBatchMemo:
    @pytest.fixture()
    def fresh_pair(self):
        return SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )

    @pytest.fixture()
    def corpus(self, tmp_path):
        paths = []
        for index in range(6):
            document = make_purchase_order(4)
            path = tmp_path / f"po{index}.xml"
            write_file(document, str(path))
            paths.append(str(path))
        return paths

    def test_memoized_batch_matches_plain(self, fresh_pair, corpus):
        plain = validate_batch(fresh_pair, corpus, jobs=1)
        memoized = validate_batch(
            fresh_pair, corpus, jobs=1, memo_size=1024
        )
        assert [r.valid for r in plain.results] == [
            r.valid for r in memoized.results
        ]
        assert memoized.stats is not None
        # Documents 2..6 are structural duplicates of document 1.
        assert memoized.stats.memo_hits >= len(corpus) - 1

    def test_memoized_parallel_batch(self, fresh_pair, corpus):
        memoized = validate_batch(
            fresh_pair, corpus, jobs=2, memo_size=1024
        )
        assert memoized.all_valid
        assert memoized.stats is not None
        assert memoized.stats.memo_lookups > 0

    def test_artifact_path_batch(self, fresh_pair, corpus, tmp_path):
        fresh_pair.warm()
        artifact = tmp_path / "pair.pkl"
        artifacts.save(fresh_pair, str(artifact))
        batch = validate_batch(
            fresh_pair,
            corpus,
            jobs=2,
            memo_size=1024,
            artifact_path=str(artifact),
        )
        assert batch.all_valid
        assert batch.stats is not None and batch.stats.memo_hits > 0
