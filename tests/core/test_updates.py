"""Tests for tree update sessions and Δ-label bookkeeping (Section 3.3)."""

import pytest

from repro.core.updates import UpdateSession
from repro.errors import UpdateError
from repro.xmltree.dom import CHI, Document, Text, element
from repro.xmltree.parser import parse


def session_for(text="<po><shipTo><name>A</name></shipTo><items/></po>"):
    return UpdateSession(parse(text))


class TestRename:
    def test_rename_records_delta(self):
        session = session_for()
        ship_to = session.document.root.find("shipTo")
        session.rename(ship_to, "billTo")
        assert ship_to.label == "billTo"
        assert session.proj_old(ship_to) == "shipTo"
        assert session.proj_new(ship_to) == "billTo"

    def test_double_rename_keeps_original_old(self):
        session = session_for()
        ship_to = session.document.root.find("shipTo")
        session.rename(ship_to, "x")
        session.rename(ship_to, "y")
        assert session.proj_old(ship_to) == "shipTo"
        assert session.proj_new(ship_to) == "y"

    def test_rename_back_still_marked_modified(self):
        session = session_for()
        ship_to = session.document.root.find("shipTo")
        session.rename(ship_to, "x")
        session.rename(ship_to, "shipTo")
        assert session.modified(ship_to)


class TestInsert:
    def test_insert_element_is_delta_epsilon(self):
        session = session_for()
        root = session.document.root
        node = session.insert_element(root, 1, "billTo")
        assert session.is_inserted(node)
        assert session.proj_old(node) is None
        assert session.proj_new(node) == "billTo"
        assert root.children[1] is node

    def test_insert_before_after_first(self):
        session = session_for()
        root = session.document.root
        items = root.find("items")
        before = session.insert_before(items, "b1")
        after = session.insert_after(items, "a1")
        first = session.insert_first(root, "f1")
        labels = [c.label for c in root.children]
        assert labels == ["f1", "shipTo", "b1", "items", "a1"]
        assert all(map(session.is_inserted, (before, after, first)))

    def test_insert_text(self):
        session = session_for()
        items = session.document.root.find("items")
        node = session.insert_text(items, 0, "hello")
        assert isinstance(node, Text)
        assert session.proj_new(node) == CHI
        assert session.proj_old(node) is None


class TestDelete:
    def test_delete_leaf_leaves_tombstone(self):
        session = session_for()
        items = session.document.root.find("items")
        session.delete(items)
        assert session.is_deleted(items)
        assert items.parent is session.document.root  # still attached
        assert session.proj_new(items) is None
        assert session.proj_old(items) == "items"

    def test_delete_with_live_children_rejected(self):
        session = session_for()
        ship_to = session.document.root.find("shipTo")
        with pytest.raises(UpdateError, match="live children"):
            session.delete(ship_to)

    def test_delete_after_children_deleted(self):
        session = session_for()
        ship_to = session.document.root.find("shipTo")
        name = ship_to.find("name")
        session.delete(name.children[0])  # the text node
        session.delete(name)
        session.delete(ship_to)
        assert session.is_deleted(ship_to)

    def test_delete_inserted_node_vanishes(self):
        session = session_for()
        root = session.document.root
        node = session.insert_element(root, 0, "temp")
        session.delete(node)
        assert node.parent is None
        assert not session.is_touched(node)

    def test_delete_root_rejected(self):
        session = session_for()
        root = session.document.root
        session.delete(root.find("shipTo").find("name").children[0])
        with pytest.raises(UpdateError):
            session.delete(root)

    def test_operations_on_deleted_node_rejected(self):
        session = session_for()
        items = session.document.root.find("items")
        session.delete(items)
        with pytest.raises(UpdateError, match="deleted"):
            session.rename(items, "x")
        with pytest.raises(UpdateError, match="deleted"):
            session.delete(items)


class TestReplaceText:
    def test_text_delta_is_chi_chi(self):
        session = session_for()
        name = session.document.root.find("shipTo").find("name")
        text = name.children[0]
        session.replace_text(text, "Bob")
        assert text.value == "Bob"
        assert session.proj_old(text) == CHI
        assert session.proj_new(text) == CHI
        assert session.modified(name)


class TestModifiedPredicate:
    def test_untouched_tree_not_modified(self):
        session = session_for()
        assert not session.modified(session.document.root)

    def test_modification_visible_on_ancestors_only(self):
        session = session_for()
        root = session.document.root
        name = root.find("shipTo").find("name")
        session.replace_text(name.children[0], "X")
        assert session.modified(root)
        assert session.modified(root.find("shipTo"))
        assert session.modified(name)
        assert not session.modified(root.find("items"))

    def test_trie_rebuilt_after_each_edit(self):
        session = session_for()
        root = session.document.root
        assert not session.modified(root)
        session.insert_element(root.find("items"), 0, "item")
        assert session.modified(root.find("items"))

    def test_insert_shifts_do_not_misattribute(self):
        # Insert at the front; the (untouched) later sibling must not be
        # reported modified despite its Dewey number shifting.
        session = session_for()
        root = session.document.root
        session.insert_first(root, "newFirst")
        ship_to = root.find("shipTo")
        assert not session.modified(ship_to)
        assert session.modified(root)

    def test_update_count(self):
        session = session_for()
        root = session.document.root
        session.insert_first(root, "a")
        session.rename(root.find("items"), "things")
        assert session.update_count == 2


class TestResultDocument:
    def test_result_drops_tombstones(self):
        session = session_for()
        root = session.document.root
        session.delete(root.find("items"))
        result = session.result_document()
        assert result.root.find("items") is None
        assert result.root.find("shipTo") is not None

    def test_result_applies_renames_and_inserts(self):
        session = session_for()
        root = session.document.root
        session.rename(root.find("items"), "lines")
        node = session.insert_after(root.find("shipTo"), "billTo")
        session.insert_text(node, 0, "addr")
        result = session.result_document()
        assert [c.label for c in result.root.children] == [
            "shipTo",
            "billTo",
            "lines",
        ]
        assert result.root.find("billTo").text() == "addr"

    def test_result_is_detached_copy(self):
        session = session_for()
        result = session.result_document()
        result.root.label = "mutated"
        assert session.document.root.label == "po"

    def test_deleted_root_rejected(self):
        doc = Document(element("solo"))
        child = element("c")
        doc.root.append(child)
        session = UpdateSession(doc)
        session.delete(child)
        # Root itself cannot be deleted via the API, so fabricate the
        # only reachable misuse: mark and check the guard directly.
        session._deltas[id(doc.root)] = type(
            session._deltas[id(child)]
        )(old="solo", new=None)
        with pytest.raises(UpdateError, match="root"):
            session.result_document()
