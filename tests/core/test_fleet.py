"""The resident worker fleet: reuse, chunking, transport, equivalence.

:class:`~repro.core.fleet.WorkerFleet` is the scheduler under
``validate_batch``; these tests pin its contracts directly:

* a fleet survives across batch calls (the warm-pool amortization);
* chunked dispatch covers every document exactly once for any chunk
  size, including pathological ones;
* the compiled pair materializes at most once per fleet, on every
  transport route (``pickle_count`` is the observable);
* a parallel run's verdicts and merged stats equal the serial run's.
"""

import os

import pytest

from repro.core.batch import validate_batch
from repro.core.fleet import FleetConfig, PairTransport, WorkerFleet
from repro.errors import BatchError
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import write_file


@pytest.fixture()
def exp2_fresh_pair(exp2_source, exp2_target):
    return SchemaPair(exp2_source, exp2_target)


def write_corpus(directory, count, items=2):
    paths = []
    for index in range(count):
        path = os.path.join(str(directory), f"doc{index:03d}.xml")
        write_file(make_purchase_order(items), path)
        paths.append(path)
    return paths


class TestFleetReuse:
    def test_one_fleet_many_batches(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 8)
        with WorkerFleet(exp2_fresh_pair, 2) as fleet:
            first = validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            second = validate_batch(
                exp2_fresh_pair, paths[:4], fleet=fleet
            )
        assert first.all_valid and first.total == 8
        assert second.all_valid and second.total == 4
        assert fleet.batches_run == 2

    def test_workers_persist_across_batches(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 6)
        with WorkerFleet(exp2_fresh_pair, 2) as fleet:
            pids_before = sorted(p.pid for p in fleet._workers.values())
            validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            pids_after = sorted(p.pid for p in fleet._workers.values())
        assert pids_before == pids_after

    def test_fleet_config_mismatch_is_an_error(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 2)
        with WorkerFleet(
            exp2_fresh_pair, 2, config=FleetConfig(retries=0)
        ) as fleet:
            with pytest.raises(BatchError, match="different"):
                validate_batch(
                    exp2_fresh_pair, paths, fleet=fleet, retries=3
                )

    def test_memo_persists_across_batches(self, exp2_fresh_pair, tmp_path):
        # The same corpus twice over one fleet: the second batch should
        # hit the workers' resident memos, proof the worker state (not
        # just the processes) survives between calls.
        paths = write_corpus(tmp_path, 4)
        with WorkerFleet(
            exp2_fresh_pair, 2, config=FleetConfig(memo_size=4096)
        ) as fleet:
            first = validate_batch(
                exp2_fresh_pair, paths, fleet=fleet, memo_size=4096
            )
            second = validate_batch(
                exp2_fresh_pair, paths, fleet=fleet, memo_size=4096
            )
        assert second.stats.memo_hits > first.stats.memo_hits

    def test_closed_fleet_rejects_validate(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 2)
        fleet = WorkerFleet(exp2_fresh_pair, 2)
        fleet.close()
        assert fleet.closed
        with pytest.raises(BatchError):
            fleet.validate(paths, on_result=lambda *a: None)


class TestChunking:
    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_every_document_exactly_once(
        self, exp2_fresh_pair, tmp_path, chunk_size
    ):
        paths = write_corpus(tmp_path, 10)
        batch = validate_batch(
            exp2_fresh_pair, paths, jobs=2, chunk_size=chunk_size
        )
        assert sorted(r.path for r in batch.results) == sorted(paths)
        assert batch.all_valid

    def test_chunk_size_must_be_positive(self, exp2_fresh_pair):
        with pytest.raises(ValueError, match="chunk_size"):
            WorkerFleet(exp2_fresh_pair, 2, chunk_size=0)

    def test_jobs_must_be_positive(self, exp2_fresh_pair):
        with pytest.raises(ValueError, match="jobs"):
            WorkerFleet(exp2_fresh_pair, 0)

    def test_chunks_dispatched_accounting(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 9)
        with WorkerFleet(exp2_fresh_pair, 2, chunk_size=2) as fleet:
            validate_batch(exp2_fresh_pair, paths, fleet=fleet)
        assert fleet.chunks_dispatched == 5  # ceil(9 / 2)


class TestZeroCopyTransport:
    def test_fork_route_never_pickles(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 6)
        with WorkerFleet(
            exp2_fresh_pair, 2, start_method="fork"
        ) as fleet:
            assert fleet.transport.kind == "fork"
            validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            assert fleet.transport.pickle_count == 0

    def test_spawn_route_pickles_at_most_once(
        self, exp2_fresh_pair, tmp_path
    ):
        paths = write_corpus(tmp_path, 6)
        with WorkerFleet(
            exp2_fresh_pair, 2, start_method="spawn"
        ) as fleet:
            assert fleet.transport.kind in ("shm", "artifact", "inline")
            first = validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            second = validate_batch(exp2_fresh_pair, paths, fleet=fleet)
            assert fleet.transport.pickle_count <= 1
        assert first.all_valid and second.all_valid

    def test_transport_close_is_idempotent(self, exp2_fresh_pair):
        transport = PairTransport(exp2_fresh_pair, "spawn", None)
        transport.close()
        transport.close()


class TestJobsEquivalence:
    def test_parallel_equals_serial(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 12)
        serial = validate_batch(
            exp2_fresh_pair, paths, jobs=1, collect_stats=True
        )
        parallel = validate_batch(
            exp2_fresh_pair, paths, jobs=3, collect_stats=True,
            chunk_size=2,
        )
        assert serial.results == parallel.results
        assert serial.stats == parallel.stats

    def test_spawn_equals_fork(self, exp2_fresh_pair, tmp_path):
        paths = write_corpus(tmp_path, 6)
        results = {}
        for method in ("fork", "spawn"):
            with WorkerFleet(
                exp2_fresh_pair, 2,
                config=FleetConfig(collect_stats=True),
                start_method=method,
            ) as fleet:
                results[method] = validate_batch(
                    exp2_fresh_pair, paths, fleet=fleet,
                    collect_stats=True,
                )
        assert results["fork"].results == results["spawn"].results
        assert results["fork"].stats == results["spawn"].stats

    def test_empty_batch(self, exp2_fresh_pair):
        batch = validate_batch(exp2_fresh_pair, [], jobs=4)
        assert batch.total == 0
        assert batch.all_valid
