"""End-to-end skip-scan cast: byte skips through the full stack.

The skip-scan path (``validate_text(byte_skip=True)`` /
``cast --stream-skip``) must be a pure performance move: identical
verdicts, identical failure reasons, identical Dewey paths and
line/column positions — it only changes *how much of the document is
ever tokenized*.  Under test:

* verdict/reason/path identity against the event-level streaming cast
  and the DOM cast, on the paper's experiment pairs and random pairs;
* error reporting *after* a skimmed region (the satellite regression:
  positions must not drift when the newline index is consulted past
  bytes the lexer never tokenized);
* the new ``subtrees_byte_skipped`` / ``bytes_skipped`` counters;
* resource guards (depth, size, deadline) firing inside a byte skim
  through the validator entry points;
* the zero-subsumption worst case: nothing skips, verdict unchanged;
* batch and module-level ``cast_text``/``cast_file`` routing.
"""

import random

import pytest

from repro.core.batch import validate_directory
from repro.core.cast import CastValidator, cast_file, cast_text
from repro.core.streaming import StreamingCastValidator
from repro.errors import (
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
)
from repro.guards import Limits
from repro.schema.dtd import parse_dtd
from repro.schema.registry import SchemaPair
from repro.workloads.adversarial import deep_document, wide_document
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.mutations import perturb_schema
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_zero_subsumption,
    target_schema_zero_subsumption,
)
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

MODES = [
    pytest.param(False, id="hardened"),
    pytest.param(True, id="trusted"),
]


def po_text(items: int = 5, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs), indent="  ")


class TestVerdictEquivalence:
    @pytest.mark.parametrize("trusted", MODES)
    def test_exp1_valid(self, exp1_pair, trusted):
        text = po_text(10)
        validator = StreamingCastValidator(exp1_pair)
        event = validator.validate_text(text)
        skim = validator.validate_text(
            text, byte_skip=True, trusted=trusted
        )
        assert event.valid and skim.valid
        # Same skip decisions, only executed at the byte level.
        assert (
            skim.stats.subtrees_skipped == event.stats.subtrees_skipped
        )
        assert (
            skim.stats.subtrees_byte_skipped
            == skim.stats.subtrees_skipped
        )
        assert skim.stats.bytes_skipped > 0
        assert event.stats.subtrees_byte_skipped == 0
        assert event.stats.bytes_skipped == 0

    @pytest.mark.parametrize("trusted", MODES)
    def test_exp2_value_failure_identical(self, exp2_pair, trusted):
        # quantity 150 is valid under the source (<200) but not the
        # target (<100): the cast fails at a simple value *after*
        # both address subtrees were byte-skipped.
        text = po_text(4, quantity_of=lambda index: 150)
        validator = StreamingCastValidator(exp2_pair)
        dom = CastValidator(exp2_pair).validate(parse(text))
        event = validator.validate_text(text)
        skim = validator.validate_text(
            text, byte_skip=True, trusted=trusted
        )
        assert not dom.valid
        assert (skim.valid, skim.reason, skim.path) == (
            event.valid,
            event.reason,
            event.path,
        )
        assert (dom.valid, dom.reason, dom.path) == (
            event.valid,
            event.reason,
            event.path,
        )
        assert skim.stats.subtrees_byte_skipped > 0

    def test_identical_schemas_byte_skip_root(self, exp2_pair):
        pair = SchemaPair(exp2_pair.target, exp2_pair.target)
        text = po_text(50)
        report = StreamingCastValidator(pair).validate_text(
            text, byte_skip=True
        )
        assert report.valid
        assert report.stats.elements_visited == 0
        assert report.stats.subtrees_byte_skipped == 1
        # Everything but the root's own start tag was skimmed.
        assert report.stats.bytes_skipped >= len(text) - len(
            "<purchaseOrder>\n"
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_random_agreement(self, seed):
        rng = random.Random(75_000 + seed)
        for _ in range(40):
            try:
                source = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, source, max_depth=6)
            if doc is None:
                continue
            try:
                target = (
                    perturb_schema(rng, source)
                    if rng.random() < 0.5
                    else random_schema(rng)
                )
                pair = SchemaPair(source, target)
            except Exception:
                continue
            text = serialize(doc, indent="  ")
            validator = StreamingCastValidator(pair)
            event = validator.validate_text(text)
            skim = validator.validate_text(text, byte_skip=True)
            assert (skim.valid, skim.reason, skim.path) == (
                event.valid,
                event.reason,
                event.path,
            ), seed
            dom_verdict = CastValidator(pair).validate(parse(text))
            assert dom_verdict.valid == skim.valid, seed
            return
        pytest.skip("no usable pair")


class TestErrorReportingAfterSkip:
    """Satellite regression: positions must not drift past a skim."""

    @pytest.mark.parametrize("trusted", MODES)
    def test_dewey_path_after_skimmed_siblings(self, exp2_pair, trusted):
        # Items 0..2 fine, item 3 has the bad quantity: its Dewey path
        # is computed after skimming shipTo and billTo (positions 0, 1)
        # and three full item subtrees.
        text = po_text(
            6, quantity_of=lambda index: 150 if index == 3 else 7
        )
        validator = StreamingCastValidator(exp2_pair)
        event = validator.validate_text(text)
        skim = validator.validate_text(
            text, byte_skip=True, trusted=trusted
        )
        assert not event.valid
        assert skim.path == event.path
        assert skim.reason == event.reason
        # The path's leading steps index *past* the skimmed regions.
        assert event.path.startswith("2.3.")

    @pytest.mark.parametrize("trusted", MODES)
    def test_syntax_error_line_column_after_skim(self, exp1_pair, trusted):
        # Corrupt the root's close tag: the skip-scan path reaches it
        # having byte-skimmed every child subtree, yet must report the
        # identical line/column (the newline index covers the whole
        # document, tokenized or not).
        text = po_text(8).replace("</purchaseOrder>", "</purchaseOrderX>")
        validator = StreamingCastValidator(exp1_pair)
        event = validator.validate_text(text)
        skim = validator.validate_text(
            text, byte_skip=True, trusted=trusted
        )
        assert not event.valid and not skim.valid
        assert "mismatched close tag </purchaseOrderX>" in event.reason
        assert "line" in event.reason and "column" in event.reason
        assert skim.reason == event.reason

    def test_malformed_inside_skim_reports_position(self, exp1_pair):
        # Malformed markup *inside* a skimmed region: the hardened skim
        # still reports a typed, positioned syntax failure.
        text = po_text(3).replace("<city>", "<city <", 1)
        skim = StreamingCastValidator(exp1_pair).validate_text(
            text, byte_skip=True
        )
        assert not skim.valid
        assert skim.reason.startswith("not well-formed:")
        assert "line" in skim.reason and "column" in skim.reason


class TestZeroSubsumption:
    def test_nothing_skips_but_verdict_holds(self):
        pair = SchemaPair(
            source_schema_zero_subsumption(),
            target_schema_zero_subsumption(),
        )
        text = po_text(10)
        validator = StreamingCastValidator(pair)
        event = validator.validate_text(text)
        skim = validator.validate_text(text, byte_skip=True)
        assert event.valid and skim.valid
        assert skim.stats.subtrees_skipped == 0
        assert skim.stats.subtrees_byte_skipped == 0
        assert skim.stats.bytes_skipped == 0
        assert (
            skim.stats.simple_values_checked
            == event.stats.simple_values_checked
        )


def _identical_dtd_pair(dtd: str, root: str) -> SchemaPair:
    return SchemaPair(
        parse_dtd(dtd, roots=[root]), parse_dtd(dtd, roots=[root])
    )


class TestGuardsThroughTheStack:
    """Limits must fire *inside* a byte skim via the validator API."""

    @pytest.mark.parametrize("trusted", MODES)
    def test_depth_limit(self, trusted):
        pair = _identical_dtd_pair("<!ELEMENT a (a?)>", "a")
        validator = StreamingCastValidator(
            pair, limits=Limits(max_tree_depth=50)
        )
        text = deep_document(200)
        with pytest.raises(DocumentTooDeepError):
            validator.validate_text(text, byte_skip=True, trusted=trusted)
        # Parity: the event path trips the same guard.
        with pytest.raises(DocumentTooDeepError):
            validator.validate_text(text)

    def test_document_size_limit(self):
        pair = _identical_dtd_pair(
            "<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>", "a"
        )
        validator = StreamingCastValidator(
            pair, limits=Limits(max_document_bytes=64)
        )
        with pytest.raises(DocumentTooLargeError):
            validator.validate_text(wide_document(50), byte_skip=True)

    @pytest.mark.parametrize("trusted", MODES)
    def test_deadline_fires_during_root_skim(self, trusted):
        # The whole document is one skim (identical pair, subsumed
        # root); only the per-skimmed-tag deadline ticks can stop it.
        pair = _identical_dtd_pair("<!ELEMENT a (a?)>", "a")
        validator = StreamingCastValidator(
            pair, limits=Limits(deadline_seconds=1e-9)
        )
        with pytest.raises(DeadlineExceededError):
            validator.validate_text(
                deep_document(600), byte_skip=True, trusted=trusted
            )


class TestModuleEntryPoints:
    def test_cast_text_defaults_to_skip_scan(self, exp1_pair):
        report = cast_text(exp1_pair, po_text())
        assert report.valid
        assert report.stats.subtrees_byte_skipped > 0

    def test_cast_text_event_mode(self, exp1_pair):
        report = cast_text(exp1_pair, po_text(), stream_skip=False)
        assert report.valid
        assert report.stats.subtrees_byte_skipped == 0

    def test_cast_file(self, exp1_pair, tmp_path):
        path = tmp_path / "po.xml"
        path.write_text(po_text(), encoding="utf-8")
        report = cast_file(exp1_pair, str(path))
        assert report.valid
        assert report.stats.bytes_skipped > 0

    def test_cast_file_trusted(self, exp1_pair, tmp_path):
        path = tmp_path / "po.xml"
        path.write_text(po_text(), encoding="utf-8")
        report = cast_file(exp1_pair, str(path), trusted=True)
        assert report.valid


class TestBatchStreamSkip:
    @pytest.fixture()
    def corpus(self, tmp_path):
        for index in range(3):
            (tmp_path / f"ok{index}.xml").write_text(
                po_text(2 + index), encoding="utf-8"
            )
        (tmp_path / "nobill.xml").write_text(
            po_text(2, with_billto=False), encoding="utf-8"
        )
        (tmp_path / "broken.xml").write_text(
            "<purchaseOrder><shipTo>", encoding="utf-8"
        )
        return tmp_path

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_verdicts_match_dom_batch(self, exp1_pair, corpus, jobs):
        skip = validate_directory(
            exp1_pair, str(corpus), jobs=jobs, stream_skip=True,
            collect_stats=True,
        )
        dom = validate_directory(exp1_pair, str(corpus))
        assert [(r.path, r.ok) for r in skip.results] == [
            (r.path, r.ok) for r in dom.results
        ]
        assert skip.valid_count == 3
        assert skip.stats.subtrees_byte_skipped > 0

    def test_broken_document_is_a_per_document_error(
        self, exp1_pair, corpus
    ):
        result = validate_directory(
            exp1_pair, str(corpus), stream_skip=True
        )
        by_name = {r.path.rsplit("/", 1)[-1]: r for r in result.results}
        broken = by_name["broken.xml"]
        assert not broken.ok
        assert broken.error_type  # typed error, not a crash
        assert by_name["ok0.xml"].ok  # neighbours unaffected
