"""Randomized equivalence fuzzer for the fused validation kernel.

The fused loop (:mod:`repro.core.castkernel`) and its optional C
backend are pure performance moves: on every document they must produce
the same verdict, the same failure reason and Dewey path, the same
:class:`~repro.core.result.ValidationStats` counters, and — when a
guard or the well-formedness layer raises — the same exception type and
message as the retained event pipeline
(:meth:`StreamingCastValidator.validate_text_events`).  This fuzzer
drives workload corpora (the paper's purchase orders, random schema
pairs with valid, promise-violating and mutilated documents) and the
adversarial corpus through all three pipelines and asserts exactly
that, in every skip mode.

The per-value specialization (:func:`repro.schema.simple
.compiled_checker`) carries the same contract against
:meth:`SimpleType.validate` and is fuzzed over random simple types and
edge-case lexical forms.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import kernel
from repro.core.streaming import StreamingCastValidator
from repro.errors import ReproError, SchemaError
from repro.guards import Limits
from repro.schema.registry import SchemaPair
from repro.schema.simple import compiled_checker
from repro.workloads.adversarial import (
    deep_document,
    entity_bomb,
    garbage_tail_document,
    oversized_document,
    truncated_document,
    wide_document,
)
from repro.workloads.generators import (
    random_schema,
    random_simple_type,
    sample_document,
)
from repro.workloads.mutations import perturb_schema
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment1,
    source_schema_experiment2,
    source_schema_zero_subsumption,
    target_schema_experiment1,
    target_schema_experiment2,
    target_schema_zero_subsumption,
)
from repro.xmltree.dom import Element, Text
from repro.xmltree.serializer import serialize

#: (byte_skip, trusted) — every skip mode of ``validate_text``.
MODES = [
    pytest.param((False, False), id="event"),
    pytest.param((True, False), id="byte"),
    pytest.param((True, True), id="byte-trusted"),
]


@pytest.fixture(params=["py", "compiled"])
def backend(request):
    """Run the decorated test under each kernel backend, restoring the
    environment-selected backend afterwards; the compiled parametrization
    degrades to a skip where the extension cannot be built."""
    prior = kernel.backend_name()
    if request.param == "compiled":
        try:
            kernel.activate("compiled")
        except Exception as error:  # no toolchain: skip, don't fail
            pytest.skip(f"compiled kernel unavailable: {error}")
    else:
        kernel.activate("py")
    yield request.param
    kernel.activate(prior)


def outcome(validator, text, *, byte_skip=False, trusted=False,
            events=False):
    """Everything observable about one validation run, exceptions
    included, as a comparable tuple."""
    method = (
        validator.validate_text_events if events else validator.validate_text
    )
    try:
        report = method(text, byte_skip=byte_skip, trusted=trusted)
    except ReproError as error:
        return ("raise", type(error).__name__, str(error))
    return ("report", report.valid, report.reason, report.path,
            report.stats)


def assert_equivalent(pair, text, mode, *, limits=None):
    byte_skip, trusted = mode
    validator = StreamingCastValidator(pair, limits=limits)
    fused = outcome(validator, text, byte_skip=byte_skip, trusted=trusted)
    events = outcome(validator, text, byte_skip=byte_skip,
                     trusted=trusted, events=True)
    assert fused == events, (
        f"kernel[{kernel.backend_name()}] diverged from the event "
        f"pipeline (byte_skip={byte_skip}, trusted={trusted})\n"
        f"  fused:  {fused}\n  events: {events}\n  doc: {text[:200]!r}"
    )


def experiment_pairs():
    return [
        SchemaPair(source_schema_experiment1(),
                   target_schema_experiment1()),
        SchemaPair(source_schema_experiment2(),
                   target_schema_experiment2()),
        SchemaPair(source_schema_zero_subsumption(),
                   target_schema_zero_subsumption()),
    ]


def po_corpus(rng):
    """Valid purchase orders plus targeted breakages: bogus children,
    out-of-range values, character data in complex content."""
    texts = [
        serialize(make_purchase_order(6), indent="  "),
        serialize(make_purchase_order(2, with_billto=False)),
        serialize(make_purchase_order(1), indent="\t"),
    ]
    broken = make_purchase_order(4)
    broken.root.find("items").append(Element("bogus"))
    texts.append(serialize(broken, indent="  "))
    overdrawn = make_purchase_order(3)
    for item in overdrawn.root.find("items").children:
        quantity = item.find("quantity")
        if quantity is not None:
            quantity.children[:] = [Text(str(rng.randint(150, 400)))]
    texts.append(serialize(overdrawn, indent="  "))
    chatty = make_purchase_order(2)
    chatty.root.find("items").append(Text("loose change"))
    texts.append(serialize(chatty))
    return texts


class TestPurchaseOrders:
    @pytest.mark.parametrize("mode", MODES)
    def test_experiment_pairs(self, backend, mode):
        rng = random.Random(0xE8)
        for pair in experiment_pairs():
            for text in po_corpus(rng):
                assert_equivalent(pair, text, mode)


class TestRandomPairs:
    @pytest.mark.parametrize("mode", MODES)
    def test_random_schemas(self, backend, mode):
        rng = random.Random(0x5EED)
        pairs_fuzzed = documents_fuzzed = 0
        while pairs_fuzzed < 12:
            try:
                source = random_schema(rng, name=f"src{pairs_fuzzed}")
                target = (
                    perturb_schema(rng, source)
                    if rng.random() < 0.6
                    else random_schema(rng, name=f"tgt{pairs_fuzzed}")
                )
            except SchemaError:
                continue  # pruning left no productive root: resample
            pair = SchemaPair(source, target)
            pairs_fuzzed += 1
            for schema in (source, target):
                document = sample_document(rng, schema)
                if document is None:
                    continue
                text = serialize(
                    document, indent=rng.choice(["", "  ", None])
                )
                assert_equivalent(pair, text, mode)
                documents_fuzzed += 1
                # A mutilated variant: truncate or splice garbage, so
                # the syntax-error paths stay equivalent too.
                if rng.random() < 0.5:
                    mangled = text[: rng.randrange(1, len(text) + 1)]
                else:
                    cut = rng.randrange(len(text))
                    mangled = text[:cut] + rng.choice(
                        ["<", ">", "&", "]]>", "<!--", "\x00"]
                    ) + text[cut:]
                assert_equivalent(pair, mangled, mode)
        assert documents_fuzzed >= 12  # the corpus really sampled docs


def chain_pair():
    """source == target: a recursive single-label schema whose documents
    are plain chains/combs — lets guard errors fire inside validation."""
    from repro.remodel.ast import opt, sym
    from repro.schema.model import ComplexType, Schema

    schema = Schema(
        {"C": ComplexType("C", opt(sym("a")), {"a": "C"}, {})},
        {"a": "C"},
        name="chain",
    )
    return SchemaPair(schema, schema)


class TestAdversarial:
    #: Tight limits so every guard can fire on a small document.
    LIMITS = Limits(
        max_document_bytes=50_000,
        max_tree_depth=60,
        max_entity_expansions=200,
        deadline_seconds=None,
    )

    @pytest.mark.parametrize("mode", MODES)
    def test_adversarial_corpus(self, backend, mode):
        pair = chain_pair()
        corpus = [
            deep_document(100),             # DocumentTooDeepError
            deep_document(59),              # just under the bound
            entity_bomb(500),               # EntityExpansionError
            oversized_document(60_000),     # DocumentTooLargeError
            truncated_document(8),          # syntax error, typed
            garbage_tail_document(),        # trailing garbage
            wide_document(40),              # legal, text in children
            "<a></b>",
            "<a><!-- -- --></a>",
            "<a>]]></a>",
            "",
        ]
        for text in corpus:
            assert_equivalent(pair, text, mode, limits=self.LIMITS)


class TestArtifactRoundTrip:
    def test_pickled_kernel_revalidates_identically(self, backend):
        """A pair restored from a pickle (the artifact cache's
        transport) drops its unpicklable value-checker closures; the
        kernel must rebuild them and produce identical reports."""
        pair = SchemaPair(source_schema_experiment2(),
                          target_schema_experiment2())
        pair.warm()
        restored = pickle.loads(pickle.dumps(pair))
        text = serialize(make_purchase_order(5), indent="  ")
        for source_pair in (pair, restored):
            for record in source_pair.kernel().records:
                if record.ready and record.kind == 2 and source_pair is restored:
                    assert record.check is None  # closure did not pickle
        fresh = StreamingCastValidator(pair).validate_text(text)
        healed = StreamingCastValidator(restored).validate_text(text)
        assert (fresh.valid, fresh.reason, fresh.path) == (
            healed.valid, healed.reason, healed.path
        )
        assert fresh.stats == healed.stats


EDGE_TEXTS = [
    "", " ", "  \t\n", "0", "1", "-0", "+5", "007", "-007",
    "99.", ".5", "-.5", "0.50", "1e3", "NaN", "none", "true", "false",
    " 1 ", "\n42\t", "100", "101", "2.5", "-2.5",
    "9" * 40, "-" + "9" * 40,
    "2020-02-29", "2021-02-29", "0001-01-01", "12-31", "red", "blue",
]


class TestCheckerEquivalence:
    def test_random_simple_types(self):
        rng = random.Random(0xC0FFEE)
        for i in range(150):
            decl = random_simple_type(rng, f"T{i}")
            check = compiled_checker(decl)
            probes = list(EDGE_TEXTS)
            interval = decl.interval()
            if interval is not None:
                for bound in (interval.lower, interval.upper):
                    if bound is not None and not hasattr(bound, "year"):
                        for delta in (-1, 0, 1):
                            probes.append(str(bound + delta))
            for text in probes:
                assert check(text) == decl.validate(text), (
                    f"checker diverged on {decl!r} for {text!r}"
                )

    def test_exclusive_and_fractional_bounds(self):
        from fractions import Fraction

        from repro.schema.simple import builtin, restrict

        decls = [
            restrict(builtin("integer"), "open-low",
                     min_exclusive=Fraction(3)),
            restrict(builtin("integer"), "frac-window",
                     min_exclusive=Fraction(5, 2),
                     max_exclusive=Fraction(7, 2)),
            restrict(builtin("decimal"), "dec-window",
                     min_inclusive=Fraction(1, 4),
                     max_exclusive=Fraction(3, 4)),
            restrict(builtin("string"), "len", min_length=2, max_length=4),
            restrict(builtin("string"), "enum",
                     enumeration=frozenset(["a", "bb "])),
        ]
        probes = EDGE_TEXTS + ["3", "4", "0.25", "0.75", "0.5",
                               "a", "bb ", " bb", "abcd", "abcde"]
        for decl in decls:
            check = compiled_checker(decl)
            for text in probes:
                assert check(text) == decl.validate(text), (
                    f"checker diverged on {decl!r} for {text!r}"
                )
