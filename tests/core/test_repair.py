"""Tests for automatic document correction (Section 7 future work)."""

import random

import pytest

from repro.core.repair import DocumentRepairer
from repro.core.validator import validate_document
from repro.schema.model import Schema, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin, restrict
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.parser import parse


class TestPaperScenarios:
    def test_missing_billto_fabricated(self, exp1_pair):
        repairer = DocumentRepairer(exp1_pair)
        doc = make_purchase_order(3, with_billto=False)
        result = repairer.repair(doc)
        assert result.verification.valid
        assert result.edit_count == 1
        assert result.actions[0].kind == "insert"
        billto = result.document.root.find("billTo")
        assert billto is not None
        assert [c.label for c in billto.children] == [
            "name", "street", "city", "state", "zip", "country",
        ]

    def test_out_of_range_quantities_clamped(self, exp2_pair):
        repairer = DocumentRepairer(exp2_pair)
        doc = make_purchase_order(
            6, quantity_of=lambda i: 150 if i % 3 == 0 else 7
        )
        result = repairer.repair(doc)
        assert result.verification.valid
        retexts = [a for a in result.actions if a.kind == "retext"]
        assert len(retexts) == 2  # items 0 and 3

    def test_valid_document_untouched(self, exp1_pair):
        repairer = DocumentRepairer(exp1_pair)
        doc = make_purchase_order(5)
        result = repairer.repair(doc)
        assert not result.changed
        assert result.document.root.structurally_equal(doc.root)

    def test_original_never_mutated(self, exp1_pair):
        repairer = DocumentRepairer(exp1_pair)
        doc = make_purchase_order(2, with_billto=False)
        before = doc.root.copy()
        repairer.repair(doc)
        assert doc.root.structurally_equal(before)


class TestRepairKinds:
    @pytest.fixture()
    def pair(self):
        target = Schema(
            {
                "T": complex_type("T", "(a,b,c?)", {
                    "a": "Str", "b": "Pos", "c": "Str",
                }),
                "Str": builtin("string"),
                "Pos": restrict(builtin("positiveInteger"), "Pos",
                                max_exclusive=10),
            },
            {"t": "T"},
        )
        return SchemaPair(target, target)

    def repair(self, pair, text):
        # These documents are arbitrary (not source-valid), so use the
        # no-source-knowledge repairer.
        return DocumentRepairer(pair, trust_source=False).repair(parse(text))

    def test_insert(self, pair):
        result = self.repair(pair, "<t><a>x</a></t>")
        assert result.verification.valid
        assert [a.kind for a in result.actions] == ["insert"]

    def test_delete_extra(self, pair):
        result = self.repair(pair, "<t><a>x</a><b>1</b><b>2</b></t>")
        assert result.verification.valid
        kinds = sorted(a.kind for a in result.actions)
        assert kinds.count("delete") + kinds.count("relabel") == 1

    def test_relabel(self, pair):
        result = self.repair(pair, "<t><a>x</a><c>1</c></t>")
        assert result.verification.valid
        # Optimal single edit: relabel c -> b (value '1' conforms).
        assert [a.kind for a in result.actions] == ["relabel"]

    def test_relabelled_subtree_revalidated(self, pair):
        # Relabel a -> b forces a value fix too.
        result = self.repair(pair, "<t><a>x</a><c>not a number</c></t>")
        assert result.verification.valid
        kinds = [a.kind for a in result.actions]
        assert "relabel" in kinds and "retext" in kinds

    def test_character_data_removed(self, pair):
        result = self.repair(pair, "<t>stray<a>x</a><b>1</b></t>")
        assert result.verification.valid
        assert any(a.kind == "delete" for a in result.actions)

    def test_element_under_simple_removed(self, pair):
        result = self.repair(pair, "<t><a><oops/></a><b>1</b></t>")
        assert result.verification.valid

    def test_root_relabelled_when_unknown(self, pair):
        result = self.repair(pair, "<unknown><a>x</a><b>1</b></unknown>")
        assert result.verification.valid
        assert result.actions[0].kind == "relabel"
        assert result.document.root.label == "t"


class TestSubsumptionSkips:
    def test_subsumed_subtrees_never_repaired(self, exp2_pair):
        """A quantity of exactly 50 is valid under both bounds; the
        productName/USPrice children are subsumed and must not even be
        looked at (their values could be garbage for all repair cares —
        they are source-valid by promise)."""
        repairer = DocumentRepairer(exp2_pair)
        doc = make_purchase_order(4)
        result = repairer.repair(doc)
        assert not result.changed


class TestRandomizedRepairProperty:
    @pytest.mark.parametrize("seed", range(15))
    def test_repair_always_produces_valid_documents(self, seed):
        from repro.workloads.generators import (
            random_schema,
            sample_document,
        )
        from repro.workloads.mutations import perturb_schema

        rng = random.Random(3000 + seed)
        for _ in range(30):
            try:
                source = random_schema(rng)
                doc = sample_document(rng, source, max_depth=5)
                if doc is None:
                    continue
                target = (
                    perturb_schema(rng, source)
                    if rng.random() < 0.6
                    else random_schema(rng)
                )
                pair = SchemaPair(source, target)
            except Exception:
                continue
            if pair.target.root_type(doc.root.label) is None:
                # Root relabelling requires a productive target root;
                # covered by dedicated tests above.
                continue
            try:
                result = DocumentRepairer(pair).repair(doc)
            except Exception:
                continue
            assert result.verification.valid
            assert validate_document(pair.target, result.document).valid
            # Idempotence: repairing the repaired document (now promised
            # valid under the *target*) is a no-op.
            second = DocumentRepairer.for_schema(pair.target).repair(
                result.document
            )
            assert not second.changed
            return
        pytest.skip("no usable random pair")
