"""The central end-to-end property: on randomly generated schema pairs
and documents, the cast validators must agree exactly with full
validation against the target schema.

This is the tree-level analogue of Theorems 1-3: subsumption skips,
disjointness rejections, and immediate content decisions are pure
optimizations — the verdict never changes.
"""

import random

import pytest

from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document, validate_element
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.mutations import perturb_schema, random_edits


def _random_pair_and_doc(rng):
    """A (pair, document) where the document is valid under the source.

    Target is either an independent random schema or a perturbation of
    the source (the realistic schema-evolution case)."""
    for _ in range(40):
        try:
            source = random_schema(rng)
        except Exception:
            continue
        doc = sample_document(rng, source, max_depth=6)
        if doc is None:
            continue
        assert validate_document(source, doc).valid
        try:
            if rng.random() < 0.5:
                target = perturb_schema(rng, source)
            else:
                target = random_schema(rng)
        except Exception:
            continue
        return SchemaPair(source, target), doc
    pytest.skip("could not build a random pair")


@pytest.mark.parametrize("seed", range(25))
def test_cast_agrees_with_full_validation(seed):
    rng = random.Random(seed)
    pair, doc = _random_pair_and_doc(rng)
    expected = validate_document(pair.target, doc)
    for use_string_cast in (True, False):
        validator = CastValidator(pair, use_string_cast=use_string_cast)
        report = validator.validate(doc)
        assert report.valid == expected.valid, (
            seed, use_string_cast, report.reason, expected.reason,
        )


@pytest.mark.parametrize("seed", range(25))
def test_cast_never_does_more_work_than_full(seed):
    rng = random.Random(1000 + seed)
    pair, doc = _random_pair_and_doc(rng)
    full = validate_document(pair.target, doc)
    cast = CastValidator(pair).validate(doc)
    assert cast.valid == full.valid
    if cast.valid and full.valid:
        assert cast.stats.nodes_visited <= full.stats.nodes_visited


@pytest.mark.parametrize("seed", range(30))
def test_cast_with_modifications_agrees_with_full(seed):
    rng = random.Random(5000 + seed)
    pair, doc = _random_pair_and_doc(rng)
    session = UpdateSession(doc)
    labels = sorted(pair.source.alphabet | pair.target.alphabet)
    random_edits(rng, session, rng.randint(0, 6), labels=labels)
    validator = CastWithModificationsValidator(pair)
    report = validator.validate(session)
    try:
        result = session.result_document()
    except Exception:
        return  # root deleted; nothing to compare
    expected = validate_document(pair.target, result)
    assert report.valid == expected.valid, (
        seed, report.reason, expected.reason,
    )


@pytest.mark.parametrize("seed", range(20))
def test_single_schema_incremental_agrees(seed):
    """The b = a special case: revalidate edits against the same schema."""
    rng = random.Random(9000 + seed)
    for _ in range(40):
        try:
            schema = random_schema(rng)
        except Exception:
            continue
        doc = sample_document(rng, schema, max_depth=6)
        if doc is not None:
            break
    else:
        pytest.skip("no document")
    pair = SchemaPair(schema, schema)
    session = UpdateSession(doc)
    random_edits(rng, session, rng.randint(1, 5),
                 labels=sorted(schema.alphabet))
    report = CastWithModificationsValidator(pair).validate(session)
    expected = validate_document(schema, session.result_document())
    assert report.valid == expected.valid, (seed, report.reason,
                                            expected.reason)


@pytest.mark.parametrize("seed", range(15))
def test_sampled_documents_always_source_valid(seed):
    """Sanity of the generator itself: sample_document honours the
    schema (otherwise every other property here is vacuous)."""
    rng = random.Random(777 + seed)
    schema = None
    for _ in range(20):
        try:
            schema = random_schema(rng)
            break
        except Exception:
            continue
    assert schema is not None, "schema generation failed 20 times"
    for _ in range(3):
        doc = sample_document(rng, schema, max_depth=7)
        if doc is None:
            continue
        report = validate_document(schema, doc)
        assert report.valid, report.reason
