"""Tests for the R_sub fixpoint (Definition 4, Theorem 1)."""

from repro.schema.model import Schema, complex_type
from repro.schema.simple import builtin, restrict
from repro.schema.subsumption import compute_subsumption


def po_schema(content, name=""):
    po_children = {"shipTo": "Addr", "billTo": "Addr", "items": "Items"}
    po = complex_type(
        "PO",
        content,
        {
            label: po_children[label]
            for label in ("shipTo", "billTo", "items")
            if label in content
        },
    )
    return Schema(
        {
            "PO": po,
            "Addr": complex_type("Addr", "(name,street)", {
                "name": "Str", "street": "Str",
            }),
            "Items": complex_type("Items", "(item*)", {"item": "Str"}),
            "Str": builtin("string"),
        },
        {"purchaseOrder": "PO"},
        name=name,
    )


class TestPaperExample:
    def test_figure1_directions(self):
        optional = po_schema("(shipTo,billTo?,items)", "optional")
        required = po_schema("(shipTo,billTo,items)", "required")
        forward = compute_subsumption(optional, required)
        backward = compute_subsumption(required, optional)
        assert ("PO", "PO") not in forward  # optional ⊄ required
        assert ("PO", "PO") in backward     # required ⊆ optional
        assert ("Addr", "Addr") in forward
        assert ("Items", "Items") in forward


class TestBaseCases:
    def test_identical_schemas_fully_subsumed_on_diagonal(self):
        schema = po_schema("(shipTo,items)")
        relation = compute_subsumption(schema, schema)
        for type_name in schema.types:
            assert (type_name, type_name) in relation

    def test_simple_bootstrap_uses_facets(self):
        narrow = Schema(
            {"Q": restrict(builtin("positiveInteger"), "Q",
                           max_exclusive=100)},
            {"q": "Q"},
        )
        wide = Schema(
            {"Q": restrict(builtin("positiveInteger"), "Q",
                           max_exclusive=200)},
            {"q": "Q"},
        )
        assert ("Q", "Q") in compute_subsumption(narrow, wide)
        assert ("Q", "Q") not in compute_subsumption(wide, narrow)

    def test_simple_complex_pairs_never_subsumed(self):
        left = Schema({"S": builtin("string")}, {"s": "S"})
        right = Schema(
            {"C": complex_type("C", "()", {})}, {"s": "C"}
        )
        assert compute_subsumption(left, right) == frozenset()
        assert compute_subsumption(right, left) == frozenset()


class TestChildPropagation:
    def test_language_inclusion_alone_is_not_enough(self):
        # Same content languages, but the child types differ.
        left = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Int"}),
                "Int": builtin("integer"),
            },
            {"t": "T"},
        )
        right = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Date"}),
                "Date": builtin("date"),
            },
            {"t": "T"},
        )
        assert ("T", "T") not in compute_subsumption(left, right)

    def test_child_subsumption_propagates(self):
        left = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Int"}),
                "Int": builtin("integer"),
            },
            {"t": "T"},
        )
        right = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "Str"}),
                "Str": builtin("string"),
            },
            {"t": "T"},
        )
        relation = compute_subsumption(left, right)
        assert ("Int", "Str") in relation
        assert ("T", "T") in relation

    def test_removal_cascades_up_a_chain(self):
        def chain(leaf_type):
            return Schema(
                {
                    "A": complex_type("A", "(b)", {"b": "B"}),
                    "B": complex_type("B", "(c)", {"c": "C"}),
                    "C": leaf_type,
                },
                {"a": "A"},
            )

        narrow = chain(builtin("integer"))
        wide = chain(builtin("string"))
        forward = compute_subsumption(narrow, wide)
        assert ("A", "A") in forward and ("B", "B") in forward
        backward = compute_subsumption(wide, narrow)
        assert ("C", "C") not in backward
        assert ("B", "B") not in backward
        assert ("A", "A") not in backward

    def test_cross_type_subsumption_within_pair(self):
        # A source type can be subsumed by a *different* target type.
        source = Schema(
            {
                "Narrow": complex_type("Narrow", "(x)", {"x": "S"}),
                "S": builtin("string"),
            },
            {"n": "Narrow"},
        )
        target = Schema(
            {
                "Wide": complex_type("Wide", "(x?,y?)", {"x": "S", "y": "S"}),
                "S": builtin("string"),
            },
            {"n": "Wide"},
        )
        assert ("Narrow", "Wide") in compute_subsumption(source, target)

    def test_recursive_types_greatest_fixpoint(self):
        # Recursive list types: optional-tail list ⊆ optional-tail list.
        def list_schema(item_type):
            return Schema(
                {
                    "L": complex_type("L", "(item,next?)", {
                        "item": "I", "next": "L",
                    }),
                    "I": item_type,
                },
                {"l": "L"},
            )

        narrow = list_schema(builtin("integer"))
        wide = list_schema(builtin("string"))
        assert ("L", "L") in compute_subsumption(narrow, wide)
        assert ("L", "L") not in compute_subsumption(wide, narrow)


class TestSampledSoundness:
    def test_subsumed_pairs_validate_in_target(self):
        """Theorem 1 soundness: sampled valid trees of τ validate under
        τ' whenever (τ, τ') ∈ R_sub."""
        import random

        from repro.core.validator import validate_element
        from repro.workloads.generators import (
            random_schema,
            sample_valid_tree,
        )

        rng = random.Random(42)
        checked = 0
        for _ in range(12):
            try:
                source = random_schema(rng)
                target = random_schema(rng)
            except Exception:
                continue
            relation = compute_subsumption(source, target)
            for tau, tau_p in sorted(relation):
                for _ in range(3):
                    try:
                        tree = sample_valid_tree(
                            rng, source, tau, "probe", max_depth=6
                        )
                    except Exception:
                        continue
                    assert validate_element(source, tau, tree).valid
                    assert validate_element(target, tau_p, tree).valid, (
                        source.name, tau, tau_p,
                    )
                    checked += 1
        assert checked > 10  # the net actually caught samples
