"""Tests for the R_nondis fixpoint (Definition 5, Theorem 2)."""

from repro.schema.disjoint import compute_disjoint, compute_nondisjoint
from repro.schema.model import Schema, complex_type
from repro.schema.simple import builtin, restrict


class TestSimpleBootstrap:
    def test_overlapping_simple_types_nondisjoint(self):
        left = Schema({"A": builtin("integer")}, {"a": "A"})
        right = Schema({"B": builtin("decimal")}, {"a": "B"})
        assert ("A", "B") in compute_nondisjoint(left, right)

    def test_disjoint_simple_types(self):
        left = Schema({"A": builtin("date")}, {"a": "A"})
        right = Schema({"B": builtin("integer")}, {"a": "B"})
        assert ("A", "B") in compute_disjoint(left, right)

    def test_disjoint_ranges(self):
        low = Schema(
            {"A": restrict(builtin("integer"), "A", max_inclusive=5)},
            {"a": "A"},
        )
        high = Schema(
            {"B": restrict(builtin("integer"), "B", min_inclusive=10)},
            {"a": "B"},
        )
        assert ("A", "B") in compute_disjoint(low, high)


class TestSimpleComplexKinds:
    def test_empty_element_shared_when_both_nullable(self):
        # <e/> satisfies both xsd:string (text "") and an empty content
        # model — the deliberate deviation from the paper's tree model.
        left = Schema({"S": builtin("string")}, {"x": "S"})
        right = Schema({"C": complex_type("C", "()", {})}, {"x": "C"})
        assert ("S", "C") in compute_nondisjoint(left, right)

    def test_disjoint_when_simple_rejects_empty(self):
        left = Schema({"S": builtin("integer")}, {"x": "S"})
        right = Schema({"C": complex_type("C", "()", {})}, {"x": "C"})
        assert ("S", "C") in compute_disjoint(left, right)

    def test_disjoint_when_complex_not_nullable(self):
        left = Schema({"S": builtin("string")}, {"x": "S"})
        right = Schema(
            {
                "C": complex_type("C", "(a)", {"a": "T"}),
                "T": builtin("string"),
            },
            {"x": "C"},
        )
        assert ("S", "C") in compute_disjoint(left, right)
        assert ("S", "T") not in compute_disjoint(left, right)


class TestComplexGrowth:
    def test_shared_empty_content_nondisjoint(self):
        left = Schema({"C": complex_type("C", "(a?)", {"a": "C"})}, {"c": "C"})
        right = Schema({"D": complex_type("D", "(b?)", {"b": "D"})}, {"c": "D"})
        # Both accept the childless tree.
        assert ("C", "D") in compute_nondisjoint(left, right)

    def test_content_languages_disjoint(self):
        left = Schema(
            {
                "C": complex_type("C", "(a,a)", {"a": "S"}),
                "S": builtin("string"),
            },
            {"c": "C"},
        )
        right = Schema(
            {
                "D": complex_type("D", "(a,a,a)", {"a": "S"}),
                "S": builtin("string"),
            },
            {"c": "D"},
        )
        assert ("C", "D") in compute_disjoint(left, right)

    def test_overlap_blocked_by_disjoint_children(self):
        # Content models overlap on "a", but the a-children's types are
        # disjoint, so no shared tree exists.
        left = Schema(
            {
                "C": complex_type("C", "(a)", {"a": "Date"}),
                "Date": builtin("date"),
            },
            {"c": "C"},
        )
        right = Schema(
            {
                "D": complex_type("D", "(a)", {"a": "Int"}),
                "Int": builtin("integer"),
            },
            {"c": "D"},
        )
        assert ("C", "D") in compute_disjoint(left, right)

    def test_overlap_through_one_branch(self):
        # Shared trees exist only via the b-branch.
        left = Schema(
            {
                "C": complex_type("C", "(a|b)", {"a": "Date", "b": "Str"}),
                "Date": builtin("date"),
                "Str": builtin("string"),
            },
            {"c": "C"},
        )
        right = Schema(
            {
                "D": complex_type("D", "(a|b)", {"a": "Int", "b": "Str"}),
                "Int": builtin("integer"),
                "Str": builtin("string"),
            },
            {"c": "D"},
        )
        relation = compute_nondisjoint(left, right)
        assert ("C", "D") in relation
        assert ("Date", "Int") not in relation

    def test_fixpoint_grows_through_recursion(self):
        # Recursive lists over overlapping leaf types share trees.
        def list_schema(leaf):
            return Schema(
                {
                    "L": complex_type("L", "(v,next?)", {
                        "v": "V", "next": "L",
                    }),
                    "V": leaf,
                },
                {"l": "L"},
            )

        ints = list_schema(builtin("integer"))
        decimals = list_schema(builtin("decimal"))
        assert ("L", "L") in compute_nondisjoint(ints, decimals)
        dates = list_schema(builtin("date"))
        assert ("L", "L") in compute_disjoint(ints, dates)

    def test_complement_relation(self):
        left = Schema(
            {"A": builtin("integer"), "B": builtin("date")}, {"a": "A"}
        )
        right = Schema(
            {"C": builtin("decimal"), "D": builtin("string")}, {"a": "C"}
        )
        nondisjoint = compute_nondisjoint(left, right)
        disjoint = compute_disjoint(left, right)
        assert nondisjoint | disjoint == {
            (x, y) for x in ("A", "B") for y in ("C", "D")
        }
        assert not (nondisjoint & disjoint)


class TestSampledSoundness:
    def test_disjoint_pairs_share_no_sampled_tree(self):
        """Theorem 2 soundness: a sampled valid tree of τ must *not*
        validate under τ' when (τ, τ') is reported disjoint."""
        import random

        from repro.core.validator import validate_element
        from repro.workloads.generators import (
            random_schema,
            sample_valid_tree,
        )

        rng = random.Random(2024)
        checked = 0
        for _ in range(12):
            try:
                source = random_schema(rng)
                target = random_schema(rng)
            except Exception:
                continue
            disjoint = compute_disjoint(source, target)
            for tau, tau_p in sorted(disjoint):
                for _ in range(3):
                    try:
                        tree = sample_valid_tree(
                            rng, source, tau, "probe", max_depth=6
                        )
                    except Exception:
                        continue
                    assert not validate_element(target, tau_p, tree).valid, (
                        tau, tau_p,
                    )
                    checked += 1
        assert checked > 10
