"""Evolution-chain composition: algebra, hop analysis, artifacts."""

import pytest

from repro.errors import ChainMismatchError
from repro.schema.artifacts import (
    chain_cache_key,
    get_or_build_chain,
    pair_cache_key,
    schema_fingerprint,
)
from repro.schema.chain import SchemaChain, compose_pairs
from repro.schema.registry import SchemaPair
from repro.workloads.evolution import (
    conforming_document,
    drift_chain,
    po_variant,
    violating_document,
)


@pytest.fixture(scope="module")
def tighten_chain():
    schemas, kinds = drift_chain(3)
    return SchemaChain(schemas, name="tighten-3"), schemas, kinds


class TestComposeAlgebra:
    def test_associativity(self):
        schemas, _ = drift_chain(3, ["tighten", "rename", "tighten"])
        p12 = SchemaPair(schemas[0], schemas[1])
        p23 = SchemaPair(schemas[1], schemas[2])
        p34 = SchemaPair(schemas[2], schemas[3])
        left = compose_pairs(compose_pairs(p12, p23), p34)
        right = compose_pairs(p12, compose_pairs(p23, p34))
        assert left.chain.fingerprints == right.chain.fingerprints
        assert schema_fingerprint(left.target) == schema_fingerprint(
            right.target
        )
        assert left.r_sub == right.r_sub
        assert left.r_nondis == right.r_nondis

    def test_identity_hop_collapses(self):
        schemas, _ = drift_chain(1)
        source, target = schemas
        identity = SchemaPair(source, po_variant(qty_max=256))
        hop = SchemaPair(po_variant(qty_max=256), target)
        composed = compose_pairs(identity, hop)
        # The identity pair contributes no hop: S→S→T ≡ S→T.
        assert composed.chain.hop_count == 1
        assert composed.chain.fingerprints == (
            schema_fingerprint(source),
            schema_fingerprint(target),
        )

    def test_junction_mismatch_is_typed(self):
        schemas, _ = drift_chain(2)
        first = SchemaPair(schemas[0], schemas[1])
        skewed = SchemaPair(schemas[0], schemas[2])
        with pytest.raises(ChainMismatchError) as info:
            compose_pairs(first, skewed)
        assert info.value.code == "chain-mismatch"

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainMismatchError):
            SchemaChain([])


class TestHopAnalysis:
    def test_monotone_tighten_absorbs_to_one_check(self, tighten_chain):
        chain, _, _ = tighten_chain
        analysis = chain.analysis()
        assert analysis["checked"] == (3,)
        assert analysis["absorbed"] == (1, 2)
        assert analysis["vacuous"] == (False, False, False)
        assert not chain.statically_safe

    def test_loosen_hops_are_vacuous(self):
        schemas, _ = drift_chain(3, ["tighten", "loosen", "tighten"])
        chain = SchemaChain(schemas)
        assert chain.analysis()["vacuous"][1]

    def test_all_loosen_chain_statically_safe(self):
        schemas, _ = drift_chain(3, ["loosen", "loosen", "loosen"])
        chain = SchemaChain(schemas)
        assert chain.statically_safe
        assert chain.analysis()["checked"] == ()
        # O(1) verdict: not even well-formedness is consulted.
        assert chain.cast_text("<not-even-xml").valid

    def test_deep_tighten_chain_stays_one_pass(self):
        schemas, _ = drift_chain(5)
        chain = SchemaChain(schemas)
        assert len(chain.analysis()["checked"]) == 1


class TestComposedPair:
    def test_composed_pair_carries_chain(self, tighten_chain):
        chain, _, _ = tighten_chain
        pair = chain.composed_pair()
        assert pair.chain is chain
        assert schema_fingerprint(pair.source) == chain.fingerprints[0]

    def test_accepts_conforming_document(self, tighten_chain):
        chain, schemas, _ = tighten_chain
        text = conforming_document(schemas)
        assert chain.cast_text(text).valid

    def test_reject_matches_sequential_pipeline(self, tighten_chain):
        chain, schemas, kinds = tighten_chain
        for hop in range(len(kinds)):
            text = violating_document(schemas, kinds, hop)
            fused = chain.cast_text(text)
            sequential = chain.sequential_cast_text(text)
            assert not fused.valid
            assert (fused.valid, fused.reason, fused.path) == (
                sequential.valid,
                sequential.reason,
                sequential.path,
            )


class TestChainArtifacts:
    def test_key_space_disjoint_from_pairs(self):
        schemas, _ = drift_chain(1)
        assert chain_cache_key(schemas) != pair_cache_key(
            schemas[0], schemas[1]
        )

    def test_key_order_sensitive(self):
        schemas, _ = drift_chain(2)
        assert chain_cache_key(schemas) != chain_cache_key(schemas[::-1])

    def test_round_trip_preserves_chain(self, tmp_path):
        schemas, kinds = drift_chain(2)
        cache_dir = str(tmp_path / "artifacts")
        built, from_cache = get_or_build_chain(schemas, cache_dir)
        assert not from_cache
        restored, hit = get_or_build_chain(schemas, cache_dir)
        assert hit
        assert restored.chain is not None
        assert restored.chain.fingerprints == built.chain.fingerprints
        text = violating_document(schemas, kinds, 1)
        fresh = SchemaChain(schemas).cast_text(text)
        cached = restored.chain.cast_text(text)
        assert (cached.valid, cached.reason, cached.path) == (
            fresh.valid,
            fresh.reason,
            fresh.path,
        )
