"""Tests for simple types, facets, and their subsumption/disjointness."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.schema.simple import (
    AtomicKind,
    BUILTINS,
    Interval,
    SimpleType,
    builtin,
    restrict,
)


class TestValidation:
    def test_string_accepts_anything(self):
        assert builtin("string").validate("")
        assert builtin("string").validate("hello <world>")

    def test_boolean_lexicals(self):
        boolean = builtin("boolean")
        for good in ("true", "false", "1", "0", " true "):
            assert boolean.validate(good), good
        for bad in ("TRUE", "yes", "2", ""):
            assert not boolean.validate(bad), bad

    def test_integer_lexicals(self):
        integer = builtin("integer")
        for good in ("0", "-17", "+42", "007", "  5  "):
            assert integer.validate(good), good
        for bad in ("", "1.5", "1e3", "abc", "--1", "1 2"):
            assert not integer.validate(bad), bad

    def test_decimal_lexicals(self):
        decimal = builtin("decimal")
        for good in ("1.5", "-0.001", ".5", "5.", "42"):
            assert decimal.validate(good), good
        for bad in ("1.5e3", "", ".", "1,5"):
            assert not decimal.validate(bad), bad

    def test_date_lexicals(self):
        date = builtin("date")
        assert date.validate("2004-05-20")
        assert not date.validate("2004-13-01")
        assert not date.validate("2004-02-30")
        assert not date.validate("20040520")

    def test_positive_integer_bound(self):
        positive = builtin("positiveInteger")
        assert positive.validate("1")
        assert not positive.validate("0")
        assert not positive.validate("-3")

    def test_derived_integer_ranges(self):
        byte = builtin("byte")
        assert byte.validate("127")
        assert not byte.validate("128")
        assert builtin("unsignedByte").validate("255")
        assert not builtin("unsignedByte").validate("256")

    def test_max_exclusive_facet(self):
        quantity = restrict(
            builtin("positiveInteger"), "quantity", max_exclusive=100
        )
        assert quantity.validate("99")
        assert not quantity.validate("100")
        assert not quantity.validate("0")

    def test_enumeration_facet(self):
        color = restrict(
            builtin("string"), "color", enumeration=frozenset({"red", "blue"})
        )
        assert color.validate("red")
        assert not color.validate("green")

    def test_length_facets(self):
        code = restrict(builtin("string"), "code", min_length=2, max_length=4)
        assert code.validate("ab")
        assert code.validate("abcd")
        assert not code.validate("a")
        assert not code.validate("abcde")

    def test_builtin_accepts_bare_and_prefixed(self):
        assert builtin("xsd:integer") is builtin("integer")

    def test_unknown_builtin(self):
        with pytest.raises(SchemaError):
            builtin("complexNumber")


class TestFacetValidation:
    def test_bounds_require_ordered_kind(self):
        with pytest.raises(SchemaError, match="ordered"):
            SimpleType("bad", AtomicKind.STRING, min_inclusive=Fraction(1))

    def test_length_requires_string(self):
        with pytest.raises(SchemaError, match="length"):
            SimpleType("bad", AtomicKind.INTEGER, max_length=3)

    def test_restrict_cannot_loosen(self):
        quantity = restrict(
            builtin("positiveInteger"), "q", max_exclusive=100
        )
        with pytest.raises(SchemaError, match="loosens"):
            restrict(quantity, "wider", max_exclusive=200)

    def test_restrict_chains_tighter(self):
        narrow = restrict(
            restrict(builtin("integer"), "a", min_inclusive=0),
            "b",
            min_inclusive=10,
        )
        assert narrow.validate("10")
        assert not narrow.validate("9")

    def test_restrict_merges_enumerations(self):
        base = restrict(
            builtin("string"), "abc", enumeration=frozenset({"a", "b", "c"})
        )
        derived = restrict(base, "ab", enumeration=frozenset({"a", "b", "z"}))
        assert derived.enumeration == {"a", "b"}


class TestSubsumption:
    def test_reflexive(self):
        for name in ("string", "integer", "decimal", "date", "boolean"):
            declaration = builtin(name)
            assert declaration.is_subsumed_by(declaration)

    def test_integer_under_decimal_and_string(self):
        assert builtin("integer").is_subsumed_by(builtin("decimal"))
        assert builtin("integer").is_subsumed_by(builtin("string"))
        assert not builtin("decimal").is_subsumed_by(builtin("integer"))
        assert not builtin("string").is_subsumed_by(builtin("integer"))

    def test_range_implication(self):
        narrow = restrict(builtin("integer"), "n", min_inclusive=0,
                          max_inclusive=50)
        wide = restrict(builtin("integer"), "w", min_inclusive=-10,
                        max_inclusive=100)
        assert narrow.is_subsumed_by(wide)
        assert not wide.is_subsumed_by(narrow)

    def test_paper_experiment2_direction(self):
        q200 = restrict(builtin("positiveInteger"), "q200",
                        max_exclusive=200)
        q100 = restrict(builtin("positiveInteger"), "q100",
                        max_exclusive=100)
        assert q100.is_subsumed_by(q200)
        assert not q200.is_subsumed_by(q100)
        assert not q200.is_disjoint_from(q100)

    def test_exclusive_vs_inclusive_boundaries(self):
        lt100 = restrict(builtin("integer"), "lt", max_exclusive=100)
        le100 = restrict(builtin("integer"), "le", max_inclusive=100)
        le99 = restrict(builtin("integer"), "le99", max_inclusive=99)
        assert lt100.is_subsumed_by(le100)
        assert le99.is_subsumed_by(lt100)
        assert not le100.is_subsumed_by(lt100)

    def test_enumeration_member_check(self):
        color = restrict(builtin("string"), "color",
                         enumeration=frozenset({"red", "blue"}))
        assert color.is_subsumed_by(builtin("string"))
        digits = restrict(builtin("string"), "digits",
                          enumeration=frozenset({"1", "2"}))
        assert digits.is_subsumed_by(builtin("integer"))
        assert not color.is_subsumed_by(builtin("integer"))

    def test_infinite_not_under_enumeration(self):
        color = restrict(builtin("string"), "color",
                         enumeration=frozenset({"red"}))
        assert not builtin("string").is_subsumed_by(color)

    def test_string_with_length_not_superset(self):
        short = restrict(builtin("string"), "short", max_length=2)
        assert not builtin("integer").is_subsumed_by(short)

    def test_length_implication(self):
        tight = restrict(builtin("string"), "t", min_length=2, max_length=3)
        loose = restrict(builtin("string"), "l", min_length=1, max_length=5)
        assert tight.is_subsumed_by(loose)
        assert not loose.is_subsumed_by(tight)


class TestDisjointness:
    def test_non_overlapping_integer_ranges(self):
        low = restrict(builtin("integer"), "low", max_inclusive=5)
        high = restrict(builtin("integer"), "high", min_inclusive=10)
        assert low.is_disjoint_from(high)
        assert high.is_disjoint_from(low)

    def test_touching_ranges_not_disjoint(self):
        low = restrict(builtin("integer"), "low", max_inclusive=5)
        high = restrict(builtin("integer"), "high", min_inclusive=5)
        assert not low.is_disjoint_from(high)

    def test_open_boundary_gap_for_integers(self):
        # x<6 means integers ≤5; x>5 means integers ≥6: the shared window
        # (5,6) contains no integer, so the types are disjoint.
        left = restrict(builtin("integer"), "l", max_exclusive=6)
        right = restrict(builtin("integer"), "r", min_exclusive=5)
        assert left.is_disjoint_from(right)

    def test_integer_decimal_open_window(self):
        # Integers in (0,1): none; decimals: plenty.
        int_win = SimpleType("iw", AtomicKind.INTEGER,
                             min_exclusive=Fraction(0),
                             max_exclusive=Fraction(1))
        dec_win = SimpleType("dw", AtomicKind.DECIMAL,
                             min_exclusive=Fraction(0),
                             max_exclusive=Fraction(1))
        assert int_win.is_disjoint_from(dec_win)
        assert not dec_win.is_disjoint_from(builtin("decimal"))

    def test_date_vs_numeric_disjoint(self):
        assert builtin("date").is_disjoint_from(builtin("integer"))
        assert builtin("integer").is_disjoint_from(builtin("date"))

    def test_boolean_vs_integer_overlap_on_01(self):
        assert not builtin("boolean").is_disjoint_from(builtin("integer"))
        positive_from2 = restrict(builtin("integer"), "ge2", min_inclusive=2)
        assert builtin("boolean").is_disjoint_from(positive_from2)

    def test_string_never_disjoint_from_numeric(self):
        assert not builtin("string").is_disjoint_from(builtin("integer"))
        assert not builtin("date").is_disjoint_from(builtin("string"))

    def test_enumeration_disjointness(self):
        color = restrict(builtin("string"), "c",
                         enumeration=frozenset({"red", "blue"}))
        size = restrict(builtin("string"), "s",
                        enumeration=frozenset({"small", "large"}))
        overlap = restrict(builtin("string"), "o",
                           enumeration=frozenset({"red", "small"}))
        assert color.is_disjoint_from(size)
        assert not color.is_disjoint_from(overlap)

    def test_length_disjointness(self):
        short = restrict(builtin("string"), "short", max_length=2)
        long_ = restrict(builtin("string"), "long", min_length=5)
        assert short.is_disjoint_from(long_)


class TestSoundnessProperties:
    """Subsumption/disjointness claims must agree with validate()."""

    types = [
        builtin("string"),
        builtin("integer"),
        builtin("decimal"),
        builtin("boolean"),
        builtin("date"),
        builtin("positiveInteger"),
        restrict(builtin("positiveInteger"), "q100", max_exclusive=100),
        restrict(builtin("positiveInteger"), "q200", max_exclusive=200),
        restrict(builtin("integer"), "neg", max_inclusive=-1),
        restrict(builtin("string"), "enum",
                 enumeration=frozenset({"1", "red", "2004-01-01"})),
        restrict(builtin("string"), "len", min_length=1, max_length=3),
    ]

    samples = [
        "", "0", "1", "-1", "99", "100", "150", "200", "1.5", "-0.25",
        "true", "false", "red", "2004-01-01", "hello world", "abc", "abcd",
    ]

    def test_subsumption_sound_on_samples(self):
        for narrow in self.types:
            for wide in self.types:
                if narrow.is_subsumed_by(wide):
                    for text in self.samples:
                        if narrow.validate(text):
                            assert wide.validate(text), (
                                narrow.name, wide.name, text,
                            )

    def test_disjointness_sound_on_samples(self):
        for left in self.types:
            for right in self.types:
                if left.is_disjoint_from(right):
                    for text in self.samples:
                        assert not (
                            left.validate(text) and right.validate(text)
                        ), (left.name, right.name, text)

    @given(st.integers(min_value=-300, max_value=300))
    def test_interval_membership_matches_validate(self, value):
        q = restrict(builtin("positiveInteger"), "q", max_exclusive=100)
        assert q.validate(str(value)) == (1 <= value < 100)


class TestInterval:
    def test_contains_with_open_bounds(self):
        interval = Interval(lower=Fraction(0), lower_open=True,
                            upper=Fraction(10), upper_open=False)
        assert not interval.contains(Fraction(0))
        assert interval.contains(Fraction(10))

    def test_contains_interval(self):
        outer = Interval(lower=Fraction(0), upper=Fraction(10))
        inner = Interval(lower=Fraction(2), upper=Fraction(8))
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)

    def test_unbounded_contains_bounded(self):
        assert Interval().contains_interval(Interval(lower=Fraction(5)))
        assert not Interval(lower=Fraction(0)).contains_interval(Interval())

    def test_intersects_integral_window(self):
        a = Interval(lower=Fraction(0), lower_open=True,
                     upper=Fraction(1), upper_open=True)
        b = Interval()
        assert not a.intersects(b, integral=True)
        assert a.intersects(b, integral=False)


class TestEmptyValueSpaces:
    def test_empty_integer_window(self):
        empty = restrict(builtin("positiveInteger"), "e", max_exclusive=1)
        assert empty.is_empty()
        inhabited = restrict(builtin("positiveInteger"), "i",
                             max_exclusive=2)
        assert not inhabited.is_empty()

    def test_empty_string_lengths(self):
        from repro.schema.simple import AtomicKind, SimpleType

        empty = SimpleType("e", AtomicKind.STRING, min_length=5,
                           max_length=3)
        assert empty.is_empty()
        assert not builtin("string").is_empty()

    def test_empty_enumeration_after_facets(self):
        # Members that all violate the base's bounds.
        from fractions import Fraction
        from repro.schema.simple import AtomicKind, SimpleType

        empty = SimpleType(
            "e", AtomicKind.INTEGER,
            min_inclusive=Fraction(100),
            enumeration=frozenset({"1", "2"}),
        )
        assert empty.is_empty()

    def test_unbounded_types_never_empty(self):
        for name in ("string", "integer", "decimal", "date", "boolean"):
            assert not builtin(name).is_empty()

    def test_empty_simple_type_is_nonproductive(self):
        from repro.schema.model import Schema, complex_type
        from repro.schema.productive import productive_types

        schema = Schema(
            {
                "T": complex_type("T", "(v)", {"v": "Empty"}),
                "Empty": restrict(builtin("positiveInteger"), "Empty",
                                  max_exclusive=1),
            },
            {"t": "T"},
        )
        assert productive_types(schema) == frozenset()
