"""Tests for substitution groups in the XSD front-end."""

import pytest

from repro.core.validator import validate_document
from repro.errors import XSDSyntaxError
from repro.schema.xsd import parse_xsd
from repro.xmltree.parser import parse

HEADER = '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">'


def xsd(body: str):
    return parse_xsd(f"{HEADER}{body}</xsd:schema>")


PUBLICATIONS = """
<xsd:element name="publication" type="xsd:string"/>
<xsd:element name="book" type="xsd:string"
             substitutionGroup="publication"/>
<xsd:element name="magazine" type="xsd:string"
             substitutionGroup="publication"/>
<xsd:element name="library" type="Library"/>
<xsd:complexType name="Library"><xsd:sequence>
  <xsd:element ref="publication" minOccurs="0" maxOccurs="unbounded"/>
</xsd:sequence></xsd:complexType>
"""


class TestSubstitution:
    def test_members_substitutable_for_head(self):
        schema = xsd(PUBLICATIONS)
        dfa = schema.content_dfa("Library")
        assert dfa.accepts(["book", "magazine", "publication"])
        assert dfa.accepts([])
        assert not dfa.accepts(["pamphlet"])

    def test_member_types_registered(self):
        schema = xsd(PUBLICATIONS)
        library = schema.type("Library")
        assert set(library.child_types) == {
            "publication", "book", "magazine",
        }

    def test_validation_end_to_end(self):
        schema = xsd(PUBLICATIONS)
        doc = parse(
            "<library><book>Dune</book><magazine>Wired</magazine>"
            "<publication>misc</publication></library>"
        )
        assert validate_document(schema, doc).valid

    def test_members_carry_their_own_types(self):
        body = PUBLICATIONS.replace(
            '<xsd:element name="book" type="xsd:string"',
            '<xsd:element name="book" type="xsd:integer"',
        )
        schema = xsd(body)
        good = parse("<library><book>42</book></library>")
        bad = parse("<library><book>not a number</book></library>")
        assert validate_document(schema, good).valid
        assert not validate_document(schema, bad).valid

    def test_abstract_head_excluded(self):
        body = PUBLICATIONS.replace(
            '<xsd:element name="publication" type="xsd:string"/>',
            '<xsd:element name="publication" type="xsd:string"'
            ' abstract="true"/>',
        )
        schema = xsd(body)
        dfa = schema.content_dfa("Library")
        assert dfa.accepts(["book"])
        assert not dfa.accepts(["publication"])
        assert schema.root_type("publication") is None

    def test_transitive_membership(self):
        body = PUBLICATIONS + (
            '<xsd:element name="novel" type="xsd:string"'
            ' substitutionGroup="book"/>'
        )
        schema = xsd(body)
        assert schema.content_dfa("Library").accepts(["novel"])

    def test_unknown_head_rejected(self):
        with pytest.raises(XSDSyntaxError, match="substitutionGroup head"):
            xsd(
                '<xsd:element name="book" type="xsd:string"'
                ' substitutionGroup="ghost"/>'
            )

    def test_abstract_required_head_without_members(self):
        with pytest.raises(XSDSyntaxError, match="no.*substitutable"):
            xsd(
                '<xsd:element name="head" type="xsd:string"'
                ' abstract="true"/>'
                '<xsd:element name="doc" type="T"/>'
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element ref="head"/>'
                "</xsd:sequence></xsd:complexType>"
            )

    def test_non_head_ref_unaffected(self):
        schema = xsd(
            '<xsd:element name="note" type="xsd:string"/>'
            '<xsd:element name="doc" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element ref="note"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        assert schema.content_dfa("T").accepts(["note"])
