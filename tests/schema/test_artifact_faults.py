"""Artifact cache under fault: oversized, truncated, and corrupt files
must be typed errors or silent rebuilds — never crashes or bad loads."""

import os

import pytest

from repro.guards import Limits, limits_scope
from repro.schema.artifacts import (
    ArtifactError,
    artifact_path,
    get_or_build,
    load,
    pair_cache_key,
    save,
)
from repro.schema.registry import SchemaPair


@pytest.fixture()
def warmed_pair(exp2_source, exp2_target):
    pair = SchemaPair(exp2_source, exp2_target)
    pair.warm()
    return pair


class TestLoadGuards:
    def test_oversized_artifact_is_rejected_before_unpickling(
        self, warmed_pair, tmp_path
    ):
        path = str(tmp_path / "pair.pkl")
        size = save(warmed_pair, path)
        with limits_scope(Limits(max_document_bytes=size - 1)):
            with pytest.raises(ArtifactError, match="max_document_bytes"):
                load(path)

    def test_within_budget_loads(self, warmed_pair, tmp_path):
        path = str(tmp_path / "pair.pkl")
        size = save(warmed_pair, path)
        with limits_scope(Limits(max_document_bytes=size)):
            loaded = load(path)
        assert loaded.source.types.keys() == warmed_pair.source.types.keys()

    def test_truncated_artifact_is_an_artifact_error(
        self, warmed_pair, tmp_path
    ):
        path = str(tmp_path / "pair.pkl")
        save(warmed_pair, path)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError, match="unreadable"):
            load(path)

    def test_garbage_artifact_is_an_artifact_error(self, tmp_path):
        path = str(tmp_path / "pair.pkl")
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04not a pickle at all")
        with pytest.raises(ArtifactError):
            load(path)


class TestCacheHealing:
    def test_corrupt_cache_entry_rebuilds_and_heals(
        self, exp2_source, exp2_target, tmp_path
    ):
        cache_dir = str(tmp_path)
        key = pair_cache_key(exp2_source, exp2_target)
        path = artifact_path(cache_dir, key)
        with open(path, "wb") as handle:
            handle.write(b"corrupt")
        pair, from_cache = get_or_build(
            exp2_source, exp2_target, cache_dir, warm=False
        )
        assert not from_cache
        # The rebuild re-persisted a loadable artifact over the corrupt
        # one: the next call hits.
        _, from_cache = get_or_build(
            exp2_source, exp2_target, cache_dir, warm=False
        )
        assert from_cache

    def test_oversized_cache_entry_rebuilds(
        self, exp2_source, exp2_target, tmp_path
    ):
        cache_dir = str(tmp_path)
        pair, _ = get_or_build(exp2_source, exp2_target, cache_dir, warm=False)
        path = artifact_path(cache_dir, pair_cache_key(exp2_source, exp2_target))
        size = os.path.getsize(path)
        with limits_scope(Limits(max_document_bytes=size - 1)):
            _, from_cache = get_or_build(
                exp2_source, exp2_target, cache_dir, warm=False
            )
        assert not from_cache
