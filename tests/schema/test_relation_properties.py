"""Cross-pair algebraic properties of R_sub and R_dis.

Subsumption is set inclusion of tree languages and disjointness is
empty intersection, so the computed relations must satisfy the
corresponding algebra *across* schema pairs:

* transitivity: `R_sub(A,B) ∘ R_sub(B,C) ⊆ R_sub(A,C)`;
* propagation: `(τ,τ') ∈ R_sub(A,B)` and `τ' ⊘ τ''` in (B,C) implies
  `τ ⊘ τ''` in (A,C);
* reflexivity on the identity pair;
* subsumed pairs are never disjoint (productive types are non-empty).

These catch fixpoint bugs that single-pair tests cannot (e.g. an
unsound inclusion test would break transitivity on some triple).
"""

import random

import pytest

from repro.schema.disjoint import compute_disjoint
from repro.schema.subsumption import compute_subsumption
from repro.workloads.generators import random_schema
from repro.workloads.mutations import perturb_schema


def _three_schemas(rng):
    for _ in range(40):
        try:
            first = random_schema(rng)
            second = (
                perturb_schema(rng, first)
                if rng.random() < 0.5
                else random_schema(rng)
            )
            third = (
                perturb_schema(rng, second)
                if rng.random() < 0.5
                else random_schema(rng)
            )
            return first, second, third
        except Exception:
            continue
    pytest.skip("schema generation failed")


@pytest.mark.parametrize("seed", range(15))
def test_subsumption_transitivity(seed):
    rng = random.Random(11_000 + seed)
    a, b, c = _three_schemas(rng)
    ab = compute_subsumption(a, b)
    bc = compute_subsumption(b, c)
    ac = compute_subsumption(a, c)
    for tau, tau_p in ab:
        for tau_p2, tau_pp in bc:
            if tau_p == tau_p2:
                assert (tau, tau_pp) in ac, (tau, tau_p, tau_pp)


@pytest.mark.parametrize("seed", range(15))
def test_subsumption_propagates_disjointness(seed):
    rng = random.Random(12_000 + seed)
    a, b, c = _three_schemas(rng)
    ab_sub = compute_subsumption(a, b)
    bc_dis = compute_disjoint(b, c)
    ac_dis = compute_disjoint(a, c)
    for tau, tau_p in ab_sub:
        for tau_p2, tau_pp in bc_dis:
            if tau_p == tau_p2:
                # valid(τ) ⊆ valid(τ') and valid(τ') ∩ valid(τ'') = ∅.
                assert (tau, tau_pp) in ac_dis, (tau, tau_p, tau_pp)


@pytest.mark.parametrize("seed", range(10))
def test_identity_pair_is_reflexive(seed):
    rng = random.Random(13_000 + seed)
    schema = None
    for _ in range(20):
        try:
            schema = random_schema(rng)
            break
        except Exception:
            continue
    if schema is None:
        pytest.skip("no schema")
    relation = compute_subsumption(schema, schema)
    for type_name in schema.types:
        assert (type_name, type_name) in relation


@pytest.mark.parametrize("seed", range(10))
def test_subsumed_never_disjoint(seed):
    """Productive types have non-empty languages, so τ ≤ τ' forces a
    shared tree."""
    rng = random.Random(14_000 + seed)
    a, b, _ = _three_schemas(rng)
    subsumed = compute_subsumption(a, b)
    disjoint = compute_disjoint(a, b)
    assert not (subsumed & disjoint)


@pytest.mark.parametrize("seed", range(10))
def test_disjointness_complement_partitions(seed):
    from repro.schema.disjoint import compute_nondisjoint

    rng = random.Random(15_000 + seed)
    a, b, _ = _three_schemas(rng)
    nondisjoint = compute_nondisjoint(a, b)
    disjoint = compute_disjoint(a, b)
    product = {
        (tau, tau_p) for tau in a.types for tau_p in b.types
    }
    assert nondisjoint | disjoint == product
    assert not (nondisjoint & disjoint)
