"""Tests for the abstract XML Schema model."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import ComplexType, Schema, complex_type, is_complex, is_simple
from repro.schema.simple import builtin


def tiny_schema():
    return Schema(
        {
            "Root": complex_type("Root", "(a,b?)", {"a": "A", "b": "B"}),
            "A": complex_type("A", "()", {}),
            "B": builtin("string"),
        },
        {"root": "Root"},
        name="tiny",
    )


class TestComplexType:
    def test_child_type_map_must_match_symbols(self):
        with pytest.raises(SchemaError, match="missing"):
            complex_type("T", "(a,b)", {"a": "X"})
        with pytest.raises(SchemaError, match="extra"):
            complex_type("T", "(a)", {"a": "X", "b": "Y"})

    def test_epsilon_model_with_empty_map(self):
        declaration = complex_type("T", "()", {})
        assert declaration.content.symbols() == frozenset()

    def test_string_content_parsed(self):
        declaration = complex_type("T", "(x,y*)", {"x": "X", "y": "Y"})
        assert declaration.content.symbols() == {"x", "y"}


class TestSchema:
    def test_unknown_child_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown type"):
            Schema(
                {"T": complex_type("T", "(a)", {"a": "Nowhere"})},
                {},
            )

    def test_unknown_root_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown type"):
            Schema({}, {"root": "Nowhere"})

    def test_alphabet_includes_roots_and_content_labels(self):
        schema = tiny_schema()
        assert schema.alphabet == {"root", "a", "b"}

    def test_type_lookup(self):
        schema = tiny_schema()
        assert is_complex(schema.type("Root"))
        assert is_simple(schema.type("B"))
        with pytest.raises(SchemaError, match="no type"):
            schema.type("Missing")

    def test_root_type(self):
        schema = tiny_schema()
        assert schema.root_type("root") == "Root"
        assert schema.root_type("other") is None

    def test_child_type(self):
        schema = tiny_schema()
        assert schema.child_type("Root", "a") == "A"
        assert schema.child_type("Root", "zzz") is None
        assert schema.child_type("B", "a") is None  # simple type

    def test_content_dfa_cached(self):
        schema = tiny_schema()
        assert schema.content_dfa("Root") is schema.content_dfa("Root")

    def test_content_dfa_rejected_for_simple(self):
        with pytest.raises(SchemaError, match="simple"):
            tiny_schema().content_dfa("B")

    def test_content_dfa_over_schema_alphabet(self):
        schema = tiny_schema()
        assert schema.content_dfa("A").alphabet == schema.alphabet


class TestUsefulSymbols:
    def test_all_symbols_useful_in_plain_model(self):
        schema = tiny_schema()
        assert schema.useful_symbols("Root") == {"a", "b"}

    def test_vacuous_symbol_detected(self):
        # In (a | (b,zz,b)) where zz leads nowhere... make zz unusable by
        # intersecting at the DFA level: here we build a model where c
        # appears only in an unsatisfiable context via bounded repeats.
        schema = Schema(
            {
                "T": complex_type("T", "(a|(b,c{2},b))", {
                    "a": "S", "b": "S", "c": "S",
                }),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        # All symbols genuinely appear in words here; verify the baseline.
        assert schema.useful_symbols("T") == {"a", "b", "c"}

    def test_empty_content_has_no_useful_symbols(self):
        schema = Schema(
            {"T": complex_type("T", "()", {})},
            {"t": "T"},
        )
        assert schema.useful_symbols("T") == frozenset()
