"""Tests for productivity analysis and pruning (Section 3)."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Schema, complex_type
from repro.schema.productive import (
    is_fully_productive,
    productive_types,
    prune_nonproductive,
)
from repro.schema.simple import builtin


def schema_with(types, roots):
    return Schema(types, roots)


class TestProductiveTypes:
    def test_simple_types_always_productive(self):
        schema = schema_with({"S": builtin("string")}, {"s": "S"})
        assert productive_types(schema) == {"S"}

    def test_empty_content_model_productive(self):
        schema = schema_with(
            {"T": complex_type("T", "()", {})}, {"t": "T"}
        )
        assert productive_types(schema) == {"T"}

    def test_self_recursive_required_child_unproductive(self):
        # T requires a child of type T forever: no finite tree exists.
        schema = schema_with(
            {"T": complex_type("T", "(t)", {"t": "T"})}, {"t": "T"}
        )
        assert productive_types(schema) == frozenset()

    def test_recursion_with_escape_productive(self):
        # T = (t?) can bottom out with no children.
        schema = schema_with(
            {"T": complex_type("T", "(t?)", {"t": "T"})}, {"t": "T"}
        )
        assert productive_types(schema) == {"T"}

    def test_mutual_recursion_unproductive(self):
        schema = schema_with(
            {
                "A": complex_type("A", "(b)", {"b": "B"}),
                "B": complex_type("B", "(a)", {"a": "A"}),
            },
            {"a": "A"},
        )
        assert productive_types(schema) == frozenset()

    def test_choice_with_productive_branch(self):
        schema = schema_with(
            {
                "T": complex_type("T", "(bad|good)", {
                    "bad": "Dead", "good": "S",
                }),
                "Dead": complex_type("Dead", "(bad)", {"bad": "Dead"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        assert productive_types(schema) == {"T", "S"}

    def test_chain_marks_bottom_up(self):
        schema = schema_with(
            {
                "A": complex_type("A", "(b)", {"b": "B"}),
                "B": complex_type("B", "(c)", {"c": "C"}),
                "C": builtin("integer"),
            },
            {"a": "A"},
        )
        assert productive_types(schema) == {"A", "B", "C"}

    def test_is_fully_productive(self):
        good = schema_with({"S": builtin("string")}, {"s": "S"})
        assert is_fully_productive(good)
        bad = schema_with(
            {"T": complex_type("T", "(t)", {"t": "T"})}, {"t": "T"}
        )
        assert not is_fully_productive(bad)


class TestPrune:
    def test_fully_productive_schema_returned_unchanged(self):
        schema = schema_with({"S": builtin("string")}, {"s": "S"})
        assert prune_nonproductive(schema) is schema

    def test_dead_branch_removed_from_content_model(self):
        schema = schema_with(
            {
                "T": complex_type("T", "(bad|good)", {
                    "bad": "Dead", "good": "S",
                }),
                "Dead": complex_type("Dead", "(bad)", {"bad": "Dead"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        pruned = prune_nonproductive(schema)
        assert set(pruned.types) == {"T", "S"}
        declaration = pruned.type("T")
        assert declaration.content.symbols() == {"good"}
        dfa = pruned.content_dfa("T")
        assert dfa.accepts(["good"])
        assert not dfa.accepts(["bad"])

    def test_optional_dead_child_pruned_to_epsilon(self):
        schema = schema_with(
            {
                "T": complex_type("T", "(bad?)", {"bad": "Dead"}),
                "Dead": complex_type("Dead", "(bad)", {"bad": "Dead"}),
            },
            {"t": "T"},
        )
        pruned = prune_nonproductive(schema)
        assert pruned.content_dfa("T").accepts([])
        assert not pruned.content_dfa("T").accepts(["bad"])

    def test_root_pointing_at_dead_type_dropped(self):
        schema = schema_with(
            {
                "Live": complex_type("Live", "()", {}),
                "Dead": complex_type("Dead", "(d)", {"d": "Dead"}),
            },
            {"live": "Live", "dead": "Dead"},
        )
        pruned = prune_nonproductive(schema)
        assert set(pruned.roots) == {"live"}

    def test_all_roots_dead_raises(self):
        schema = schema_with(
            {"Dead": complex_type("Dead", "(d)", {"d": "Dead"})},
            {"dead": "Dead"},
        )
        with pytest.raises(SchemaError, match="accepts no document"):
            prune_nonproductive(schema)

    def test_pruned_schema_language_preserved_on_samples(self):
        """Pruning must not change which trees are valid."""
        import random

        from repro.core.validator import validate_element
        from repro.workloads.generators import sample_valid_tree

        schema = schema_with(
            {
                "T": complex_type("T", "((bad,x)|x+)", {
                    "bad": "Dead", "x": "S",
                }),
                "Dead": complex_type("Dead", "(bad)", {"bad": "Dead"}),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        pruned = prune_nonproductive(schema)
        rng = random.Random(7)
        for _ in range(20):
            tree = sample_valid_tree(rng, pruned, "T", "t")
            assert validate_element(schema, "T", tree).valid
            assert validate_element(pruned, "T", tree).valid
