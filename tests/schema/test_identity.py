"""Tests for identity constraints (key/unique/keyref) — the paper's
Section 7 future-work extension."""

import pytest

from repro.errors import SchemaError
from repro.schema.identity import (
    check_identity,
    constraint,
    parse_field,
    parse_selector,
)
from repro.schema.xsd import parse_xsd
from repro.xmltree.parser import parse


class TestSelectorParsing:
    def test_single_step(self):
        selector = parse_selector("item")
        doc = parse("<r><item/><other/><item/></r>")
        assert len(list(selector.select(doc.root))) == 2

    def test_multi_step_path(self):
        selector = parse_selector("./items/item")
        doc = parse("<r><items><item/><item/></items><item/></r>")
        assert len(list(selector.select(doc.root))) == 2

    def test_descendant_prefix(self):
        selector = parse_selector(".//item")
        doc = parse("<r><item/><box><item/><deep><item/></deep></box></r>")
        assert len(list(selector.select(doc.root))) == 3

    def test_wildcard_step(self):
        selector = parse_selector("*/entry")
        doc = parse("<r><a><entry/></a><b><entry/></b><entry/></r>")
        assert len(list(selector.select(doc.root))) == 2

    def test_union(self):
        selector = parse_selector("a | b")
        doc = parse("<r><a/><b/><c/></r>")
        assert {e.label for e in selector.select(doc.root)} == {"a", "b"}

    def test_no_duplicates_across_branches(self):
        selector = parse_selector("a | *")
        doc = parse("<r><a/><b/></r>")
        assert len(list(selector.select(doc.root))) == 2

    def test_attribute_step_rejected(self):
        with pytest.raises(SchemaError, match="attributes"):
            parse_selector("item/@id")

    def test_empty_branch_rejected(self):
        with pytest.raises(SchemaError):
            parse_selector("a | ")

    def test_self_only_rejected(self):
        with pytest.raises(SchemaError, match="context node"):
            parse_selector(".")


class TestFieldParsing:
    def test_child_text_field(self):
        field = parse_field("price")
        node = parse("<item><price>5</price></item>").root
        assert field.evaluate(node) == "5"

    def test_attribute_field(self):
        field = parse_field("@id")
        node = parse('<item id="x7"/>').root
        assert field.evaluate(node) == "x7"

    def test_self_field(self):
        field = parse_field(".")
        node = parse("<code>ABC</code>").root
        assert field.evaluate(node) == "ABC"

    def test_path_with_attribute(self):
        field = parse_field("meta/@ref")
        node = parse('<item><meta ref="r1"/></item>').root
        assert field.evaluate(node) == "r1"

    def test_absent_field_is_none(self):
        field = parse_field("price")
        assert field.evaluate(parse("<item/>").root) is None
        attr = parse_field("@id")
        assert attr.evaluate(parse("<item/>").root) is None

    def test_multiple_matches_rejected(self):
        field = parse_field("price")
        node = parse("<item><price>1</price><price>2</price></item>").root
        with pytest.raises(SchemaError, match="unique"):
            field.evaluate(node)


class TestKeyAndUnique:
    def index(self, kind="key", fields=("@id",)):
        return {
            "catalog": [
                constraint("pk", kind, "item", list(fields)),
            ]
        }

    def test_distinct_keys_pass(self):
        doc = parse('<catalog><item id="1"/><item id="2"/></catalog>')
        assert check_identity(self.index(), doc).valid

    def test_duplicate_keys_fail(self):
        doc = parse('<catalog><item id="1"/><item id="1"/></catalog>')
        report = check_identity(self.index(), doc)
        assert not report.valid
        assert "duplicate" in report.reason

    def test_missing_key_field_fails(self):
        doc = parse('<catalog><item id="1"/><item/></catalog>')
        report = check_identity(self.index("key"), doc)
        assert not report.valid
        assert "missing field" in report.reason

    def test_missing_unique_field_exempt(self):
        doc = parse('<catalog><item id="1"/><item/><item/></catalog>')
        assert check_identity(self.index("unique"), doc).valid

    def test_composite_key(self):
        index = {
            "catalog": [
                constraint("pk", "key", "item", ["@row", "@col"]),
            ]
        }
        ok = parse(
            '<catalog><item row="1" col="1"/><item row="1" col="2"/>'
            "</catalog>"
        )
        dup = parse(
            '<catalog><item row="1" col="1"/><item row="1" col="1"/>'
            "</catalog>"
        )
        assert check_identity(index, ok).valid
        assert not check_identity(index, dup).valid

    def test_scope_is_per_declaring_instance(self):
        # The same id in *different* catalogs is fine.
        doc = parse(
            "<root>"
            '<catalog><item id="1"/></catalog>'
            '<catalog><item id="1"/></catalog>'
            "</root>"
        )
        assert check_identity(self.index(), doc).valid


class TestKeyref:
    def index(self):
        return {
            "order": [
                constraint("productKey", "key", "products/product",
                           ["@sku"]),
                constraint("lineRef", "keyref", "lines/line", ["@product"],
                           refer="productKey"),
            ]
        }

    def test_resolving_references_pass(self):
        doc = parse(
            "<order>"
            '<products><product sku="A"/><product sku="B"/></products>'
            '<lines><line product="A"/><line product="B"/></lines>'
            "</order>"
        )
        assert check_identity(self.index(), doc).valid

    def test_dangling_reference_fails(self):
        doc = parse(
            "<order>"
            '<products><product sku="A"/></products>'
            '<lines><line product="Z"/></lines>'
            "</order>"
        )
        report = check_identity(self.index(), doc)
        assert not report.valid
        assert "does not match any" in report.reason

    def test_unknown_refer_fails(self):
        index = {
            "order": [
                constraint("ref", "keyref", "line", ["@p"],
                           refer="nothing"),
            ]
        }
        doc = parse('<order><line p="1"/></order>')
        report = check_identity(index, doc)
        assert not report.valid
        assert "unknown" in report.reason

    def test_absent_reference_field_exempt(self):
        doc = parse(
            "<order>"
            '<products><product sku="A"/></products>'
            "<lines><line/></lines>"
            "</order>"
        )
        assert check_identity(self.index(), doc).valid


class TestConstraintValidation:
    def test_keyref_requires_refer(self):
        with pytest.raises(SchemaError, match="refer"):
            constraint("r", "keyref", "a", ["@x"])

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="kind"):
            constraint("r", "primary", "a", ["@x"])

    def test_fields_required(self):
        with pytest.raises(SchemaError, match="field"):
            constraint("r", "key", "a", [])


class TestXsdIntegration:
    SCHEMA = """
    <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:element name="order" type="Order">
        <xsd:key name="productKey">
          <xsd:selector xpath="products/product"/>
          <xsd:field xpath="@sku"/>
        </xsd:key>
        <xsd:keyref name="lineRef" refer="productKey">
          <xsd:selector xpath="lines/line"/>
          <xsd:field xpath="@product"/>
        </xsd:keyref>
      </xsd:element>
      <xsd:complexType name="Order"><xsd:sequence>
        <xsd:element name="products" type="Products"/>
        <xsd:element name="lines" type="Lines"/>
      </xsd:sequence></xsd:complexType>
      <xsd:complexType name="Products"><xsd:sequence>
        <xsd:element name="product" type="xsd:string"
                     minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence></xsd:complexType>
      <xsd:complexType name="Lines"><xsd:sequence>
        <xsd:element name="line" type="xsd:string"
                     minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence></xsd:complexType>
    </xsd:schema>
    """

    def test_constraints_parsed_from_xsd(self):
        schema = parse_xsd(self.SCHEMA)
        assert "order" in schema.identity
        kinds = sorted(c.kind for c in schema.identity["order"])
        assert kinds == ["key", "keyref"]

    def test_end_to_end_check(self):
        schema = parse_xsd(self.SCHEMA)
        good = parse(
            "<order>"
            '<products><product sku="A"/></products>'
            '<lines><line product="A"/></lines>'
            "</order>"
        )
        bad = parse(
            "<order>"
            '<products><product sku="A"/></products>'
            '<lines><line product="X"/></lines>'
            "</order>"
        )
        assert check_identity(schema.identity, good).valid
        assert not check_identity(schema.identity, bad).valid

    def test_identity_survives_pruning(self):
        from repro.schema.productive import prune_nonproductive

        schema = parse_xsd(self.SCHEMA)
        assert prune_nonproductive(schema).identity == schema.identity
