"""Tests for the DTD front-end."""

import pytest

from repro.errors import DTDSyntaxError, UnsupportedFeatureError
from repro.schema.dtd import dtd_schema, is_dtd_schema, label_type, parse_dtd
from repro.schema.model import ComplexType, Schema, complex_type
from repro.schema.simple import builtin


class TestParseDtd:
    def test_paper_style_declarations(self):
        schema = parse_dtd(
            """
            <!ELEMENT purchaseOrder (shipTo, billTo?, items)>
            <!ELEMENT shipTo (#PCDATA)>
            <!ELEMENT billTo (#PCDATA)>
            <!ELEMENT items (item*)>
            <!ELEMENT item (#PCDATA)>
            """,
            roots=["purchaseOrder"],
        )
        assert set(schema.roots) == {"purchaseOrder"}
        po = schema.type("purchaseOrder")
        assert isinstance(po, ComplexType)
        assert po.content.to_source() == "(shipTo,billTo?,items)"

    def test_empty_content(self):
        schema = parse_dtd("<!ELEMENT br EMPTY>")
        dfa = schema.content_dfa("br")
        assert dfa.accepts([])

    def test_any_content(self):
        schema = parse_dtd(
            "<!ELEMENT a ANY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        dfa = schema.content_dfa("a")
        assert dfa.accepts(["b", "c", "a", "b"])
        assert dfa.accepts([])

    def test_pcdata_becomes_simple_type(self):
        schema = parse_dtd("<!ELEMENT t (#PCDATA)>")
        from repro.schema.model import is_simple

        assert is_simple(schema.type("t"))

    def test_mixed_content_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="mixed content"):
            parse_dtd(
                "<!ELEMENT t (#PCDATA|b)*><!ELEMENT b EMPTY>"
            )

    def test_comments_and_pis_skipped(self):
        schema = parse_dtd(
            "<!-- a comment --><?pi stuff?><!ELEMENT a EMPTY>"
        )
        assert "a" in schema.types

    def test_attlist_parsed_but_ignored(self):
        schema = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a id ID #REQUIRED>"
        )
        assert "a" in schema.types

    def test_entity_and_notation_skipped(self):
        schema = parse_dtd(
            '<!ENTITY x "y"><!NOTATION n SYSTEM "z"><!ELEMENT a EMPTY>'
        )
        assert "a" in schema.types

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDSyntaxError, match="duplicate"):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>")

    def test_undeclared_reference_rejected(self):
        with pytest.raises(DTDSyntaxError, match="undeclared"):
            parse_dtd("<!ELEMENT a (ghost)>")

    def test_unknown_roots_rejected(self):
        with pytest.raises(DTDSyntaxError, match="not declared"):
            parse_dtd("<!ELEMENT a EMPTY>", roots=["missing"])

    def test_garbage_rejected(self):
        with pytest.raises(DTDSyntaxError, match="unexpected DTD content"):
            parse_dtd("<!ELEMENT a EMPTY> stray text")

    def test_default_roots_are_all_elements(self):
        schema = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b EMPTY>")
        assert set(schema.roots) == {"a", "b"}

    def test_doctype_internal_subset_flow(self):
        """The parser output of a DOCTYPE subset feeds parse_dtd."""
        from repro.xmltree.parser import parse

        doc = parse(
            "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b (#PCDATA)>]>"
            "<a><b>x</b></a>"
        )
        schema = parse_dtd(doc.internal_subset, roots=[doc.doctype_name])
        from repro.core.validator import validate_document

        assert validate_document(schema, doc).valid


class TestIsDtdSchema:
    def test_dtd_built_schema_is_dtd(self):
        assert is_dtd_schema(parse_dtd("<!ELEMENT a (b*)><!ELEMENT b EMPTY>"))

    def test_context_dependent_types_are_not_dtd(self):
        schema = Schema(
            {
                "T1": complex_type("T1", "(x)", {"x": "A"}),
                "T2": complex_type("T2", "(x)", {"x": "B"}),
                "A": builtin("string"),
                "B": builtin("integer"),
            },
            {"t1": "T1", "t2": "T2"},
        )
        assert not is_dtd_schema(schema)

    def test_root_conflict_detected(self):
        schema = Schema(
            {
                "T": complex_type("T", "(x)", {"x": "A"}),
                "A": builtin("string"),
                "B": builtin("integer"),
            },
            {"t": "T", "x": "B"},  # x has type A as child, B as root
        )
        assert not is_dtd_schema(schema)


class TestLabelType:
    def test_lookup_through_roots_and_content(self):
        schema = parse_dtd(
            "<!ELEMENT a (b)><!ELEMENT b EMPTY>", roots=["a"]
        )
        assert label_type(schema, "a") == "a"
        assert label_type(schema, "b") == "b"
        assert label_type(schema, "zzz") is None


class TestDtdSchemaBuilder:
    def test_regex_values_accepted(self):
        from repro.remodel.parser import parse_content_model

        schema = dtd_schema(
            {"a": parse_content_model("(b+)"), "b": "EMPTY"}
        )
        assert schema.content_dfa("a").accepts(["b", "b"])

    def test_validation_end_to_end(self):
        from repro.core.validator import validate_document
        from repro.xmltree.parser import parse

        schema = dtd_schema(
            {"list": "(item*)", "item": "(#PCDATA)"}, roots=["list"]
        )
        good = parse("<list><item>1</item><item>2</item></list>")
        bad = parse("<list><wrong/></list>")
        assert validate_document(schema, good).valid
        assert not validate_document(schema, bad).valid
