"""Persisted schema-pair artifacts: round-trip fidelity and cache keys."""

import os
import pickle
import random

import pytest

from repro.schema.artifacts import (
    ARTIFACT_VERSION,
    ArtifactError,
    artifact_path,
    get_or_build,
    load,
    pair_cache_key,
    save,
    schema_fingerprint,
)
from repro.schema.model import Schema
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, random_word
from repro.workloads.purchase_orders import (
    source_schema_experiment2,
    target_schema_experiment2,
)


@pytest.fixture()
def warmed_pair(exp2_source, exp2_target):
    pair = SchemaPair(exp2_source, exp2_target)
    pair.warm()
    return pair


class TestFingerprint:
    def test_stable_across_reconstruction(self):
        assert schema_fingerprint(
            source_schema_experiment2()
        ) == schema_fingerprint(source_schema_experiment2())

    def test_ignores_display_name(self, exp2_source):
        renamed = Schema(
            exp2_source.types, exp2_source.roots, name="something-else"
        )
        assert schema_fingerprint(renamed) == schema_fingerprint(exp2_source)

    def test_distinguishes_content_change(self, exp2_source, exp2_target):
        # Experiment 2's whole point: the schemas differ only in the
        # quantity facet, and the fingerprint must see it.
        assert schema_fingerprint(exp2_source) != schema_fingerprint(
            exp2_target
        )

    def test_key_direction_sensitive(self, exp2_source, exp2_target):
        assert pair_cache_key(exp2_source, exp2_target) != pair_cache_key(
            exp2_target, exp2_source
        )


class TestRoundTrip:
    def test_relations_survive_round_trip(self, warmed_pair, tmp_path):
        path = str(tmp_path / "pair.pkl")
        save(warmed_pair, path)
        loaded = load(path)
        assert loaded.r_sub == warmed_pair.r_sub
        assert loaded.r_nondis == warmed_pair.r_nondis
        assert loaded.symbols.labels == warmed_pair.symbols.labels

    def test_string_cast_decisions_survive_round_trip(
        self, warmed_pair, tmp_path
    ):
        path = str(tmp_path / "pair.pkl")
        save(warmed_pair, path)
        loaded = load(path)
        rng = random.Random(11)
        pairs = sorted(warmed_pair._string_casts)
        assert pairs, "warm() should have built string casts"
        assert sorted(loaded._string_casts) == pairs
        for source_type, target_type in pairs:
            source_dfa = warmed_pair.source.content_dfa(source_type)
            for _ in range(25):
                word = random_word(rng, source_dfa)
                if word is None:
                    break
                original = warmed_pair.string_cast(
                    source_type, target_type
                ).validate(word)
                reloaded = loaded.string_cast(
                    source_type, target_type
                ).validate(word)
                assert original.accepted == reloaded.accepted, (
                    source_type,
                    target_type,
                    word,
                )
                assert (
                    original.symbols_scanned == reloaded.symbols_scanned
                )

    def test_round_trip_on_random_schema_family(self, tmp_path):
        rng = random.Random(3)
        built = 0
        while built < 3:
            try:
                source = random_schema(rng, num_labels=5, num_complex=4)
                target = random_schema(rng, num_labels=5, num_complex=4)
            except Exception:
                continue
            pair = SchemaPair(source, target)
            pair.warm()
            path = str(tmp_path / f"pair{built}.pkl")
            save(pair, path)
            loaded = load(path)
            assert loaded.r_sub == pair.r_sub
            assert loaded.r_nondis == pair.r_nondis
            built += 1


class TestGetOrBuild:
    def test_miss_then_hit(self, exp2_source, exp2_target, tmp_path):
        cache = str(tmp_path)
        first, from_cache_first = get_or_build(exp2_source, exp2_target, cache)
        second, from_cache_second = get_or_build(
            exp2_source, exp2_target, cache
        )
        assert not from_cache_first and from_cache_second
        assert second.r_sub == first.r_sub
        assert second.r_nondis == first.r_nondis
        # The hit is warmed (the artifact carries the machines).
        assert second._string_casts.keys() == first._string_casts.keys()

    def test_schema_content_change_misses(
        self, exp2_source, exp2_target, tmp_path
    ):
        cache = str(tmp_path)
        get_or_build(exp2_source, exp2_target, cache)
        # Same schemas by name, different content: experiment 2 source
        # vs target differ only in the quantity facet.
        _, from_cache = get_or_build(exp2_source, exp2_source, cache)
        assert not from_cache

    def test_corrupt_artifact_heals(self, exp2_source, exp2_target, tmp_path):
        cache = str(tmp_path)
        get_or_build(exp2_source, exp2_target, cache)
        key = pair_cache_key(exp2_source, exp2_target)
        path = artifact_path(cache, key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        pair, from_cache = get_or_build(exp2_source, exp2_target, cache)
        assert not from_cache
        assert pair.r_sub  # rebuilt fine
        # …and the rebuild re-persisted a good artifact.
        _, from_cache = get_or_build(exp2_source, exp2_target, cache)
        assert from_cache

    def test_version_mismatch_rejected(
        self, exp2_source, exp2_target, tmp_path
    ):
        pair = SchemaPair(exp2_source, exp2_target)
        path = str(tmp_path / "pair.pkl")
        save(pair, path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["version"] = ARTIFACT_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(ArtifactError):
            load(path)

    def test_wrong_key_rejected(self, exp2_source, exp2_target, tmp_path):
        pair = SchemaPair(exp2_source, exp2_target)
        path = str(tmp_path / "pair.pkl")
        save(pair, path)
        with pytest.raises(ArtifactError):
            load(path, expected_key="0" * 64)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            load(str(tmp_path / "absent.pkl"))

    def test_save_is_atomic_no_temp_left_behind(
        self, warmed_pair, tmp_path
    ):
        path = str(tmp_path / "pair.pkl")
        size = save(warmed_pair, path)
        assert size > 0
        assert os.listdir(str(tmp_path)) == ["pair.pkl"]
