"""Tests for the XSD front-end."""

import pytest

from repro.errors import UnsupportedFeatureError, XSDSyntaxError
from repro.schema.model import ComplexType, is_complex, is_simple
from repro.schema.xsd import parse_xsd

HEADER = '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">'


def xsd(body: str):
    return parse_xsd(f"{HEADER}{body}</xsd:schema>")


class TestGlobalElements:
    def test_element_with_named_type(self):
        schema = xsd(
            '<xsd:element name="po" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence/></xsd:complexType>'
        )
        assert schema.root_type("po") == "T"

    def test_element_with_builtin_type(self):
        schema = xsd('<xsd:element name="note" type="xsd:string"/>')
        assert is_simple(schema.type(schema.root_type("note")))

    def test_element_with_inline_complex_type(self):
        schema = xsd(
            '<xsd:element name="po">'
            "<xsd:complexType><xsd:sequence>"
            '<xsd:element name="item" type="xsd:string"'
            ' maxOccurs="unbounded"/>'
            "</xsd:sequence></xsd:complexType>"
            "</xsd:element>"
        )
        root_type = schema.root_type("po")
        assert root_type.startswith("#anon:")
        assert schema.content_dfa(root_type).accepts(["item", "item"])

    def test_element_with_inline_simple_type(self):
        schema = xsd(
            '<xsd:element name="qty">'
            '<xsd:simpleType><xsd:restriction base="xsd:positiveInteger">'
            '<xsd:maxExclusive value="100"/>'
            "</xsd:restriction></xsd:simpleType>"
            "</xsd:element>"
        )
        declaration = schema.type(schema.root_type("qty"))
        assert declaration.validate("99")
        assert not declaration.validate("100")

    def test_element_without_type_defaults_to_text(self):
        schema = xsd('<xsd:element name="any"/>')
        assert is_simple(schema.type(schema.root_type("any")))

    def test_duplicate_global_element_rejected(self):
        with pytest.raises(XSDSyntaxError, match="duplicate"):
            xsd(
                '<xsd:element name="a" type="xsd:string"/>'
                '<xsd:element name="a" type="xsd:string"/>'
            )


class TestParticles:
    def test_sequence_choice_nesting(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="a" type="xsd:string"/>'
            "<xsd:choice>"
            '<xsd:element name="b" type="xsd:string"/>'
            '<xsd:element name="c" type="xsd:string"/>'
            "</xsd:choice>"
            "</xsd:sequence></xsd:complexType>"
        )
        dfa = schema.content_dfa("T")
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["a", "c"])
        assert not dfa.accepts(["a", "b", "c"])

    def test_min_max_occurs(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string"'
            ' minOccurs="2" maxOccurs="4"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        dfa = schema.content_dfa("T")
        for n in range(6):
            assert dfa.accepts(["x"] * n) == (2 <= n <= 4)

    def test_occurs_on_groups(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T">'
            '<xsd:sequence minOccurs="0" maxOccurs="2">'
            '<xsd:element name="a" type="xsd:string"/>'
            '<xsd:element name="b" type="xsd:string"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        dfa = schema.content_dfa("T")
        assert dfa.accepts([])
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["a", "b", "a", "b"])
        assert not dfa.accepts(["a", "b", "a"])

    def test_ref_to_global_element(self):
        schema = xsd(
            '<xsd:element name="comment" type="xsd:string"/>'
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element ref="comment"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        declaration = schema.type("T")
        assert declaration.child_types["comment"] == "xsd:string"

    def test_dangling_ref_rejected(self):
        with pytest.raises(XSDSyntaxError, match="no such global"):
            xsd(
                '<xsd:element name="r" type="T"/>'
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element ref="ghost"/>'
                "</xsd:sequence></xsd:complexType>"
            )

    def test_all_group_accepts_permutations(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T"><xsd:all>'
            '<xsd:element name="a" type="xsd:string"/>'
            '<xsd:element name="b" type="xsd:string"/>'
            '<xsd:element name="c" type="xsd:string" minOccurs="0"/>'
            "</xsd:all></xsd:complexType>"
        )
        dfa = schema.content_dfa("T")
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["b", "a"])
        assert dfa.accepts(["c", "b", "a"])
        assert not dfa.accepts(["a"])
        assert not dfa.accepts(["a", "b", "b"])

    def test_inconsistent_element_declarations_rejected(self):
        with pytest.raises(XSDSyntaxError, match="two types"):
            xsd(
                '<xsd:element name="r" type="T"/>'
                '<xsd:complexType name="T"><xsd:sequence>'
                '<xsd:element name="x" type="xsd:string"/>'
                '<xsd:element name="x" type="xsd:integer"/>'
                "</xsd:sequence></xsd:complexType>"
            )

    def test_same_label_same_type_allowed(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string"/>'
            '<xsd:element name="y" type="xsd:string"/>'
            '<xsd:element name="x" type="xsd:string"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        assert schema.content_dfa("T").accepts(["x", "y", "x"])


class TestSimpleTypes:
    def test_named_restriction_with_facets(self):
        schema = xsd(
            '<xsd:simpleType name="Quantity">'
            '<xsd:restriction base="xsd:positiveInteger">'
            '<xsd:maxExclusive value="100"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:element name="q" type="Quantity"/>'
        )
        quantity = schema.type("Quantity")
        assert quantity.validate("1")
        assert not quantity.validate("100")

    def test_enumeration_facet(self):
        schema = xsd(
            '<xsd:simpleType name="Color">'
            '<xsd:restriction base="xsd:string">'
            '<xsd:enumeration value="red"/>'
            '<xsd:enumeration value="blue"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:element name="c" type="Color"/>'
        )
        assert schema.type("Color").validate("red")
        assert not schema.type("Color").validate("mauve")

    def test_length_facets(self):
        schema = xsd(
            '<xsd:simpleType name="Code">'
            '<xsd:restriction base="xsd:string">'
            '<xsd:length value="3"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:element name="c" type="Code"/>'
        )
        assert schema.type("Code").validate("abc")
        assert not schema.type("Code").validate("ab")

    def test_restriction_of_user_type(self):
        schema = xsd(
            '<xsd:simpleType name="Small">'
            '<xsd:restriction base="xsd:integer">'
            '<xsd:maxInclusive value="100"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:simpleType name="Tiny">'
            '<xsd:restriction base="Small">'
            '<xsd:maxInclusive value="10"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:element name="t" type="Tiny"/>'
        )
        assert schema.type("Tiny").validate("10")
        assert not schema.type("Tiny").validate("11")

    def test_list_and_union_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            xsd(
                '<xsd:simpleType name="L"><xsd:list itemType="xsd:int"/>'
                "</xsd:simpleType>"
            )


class TestUnsupportedAndErrors:
    def test_any_wildcard_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="xsd:any"):
            xsd(
                '<xsd:element name="r" type="T"/>'
                '<xsd:complexType name="T"><xsd:sequence>'
                "<xsd:any/>"
                "</xsd:sequence></xsd:complexType>"
            )

    def test_mixed_content_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="mixed"):
            xsd('<xsd:complexType name="T" mixed="true"/>')

    def test_complex_content_derivation_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="complexContent"):
            xsd(
                '<xsd:complexType name="T"><xsd:complexContent>'
                '<xsd:extension base="B"/>'
                "</xsd:complexContent></xsd:complexType>"
            )

    def test_attributes_accepted_and_ignored(self):
        schema = xsd(
            '<xsd:element name="r" type="T"/>'
            '<xsd:complexType name="T">'
            "<xsd:sequence/>"
            '<xsd:attribute name="id" type="xsd:string"/>'
            "</xsd:complexType>"
        )
        assert schema.content_dfa("T").accepts([])

    def test_unknown_type_reference(self):
        with pytest.raises(XSDSyntaxError, match="unknown type"):
            xsd('<xsd:element name="r" type="Ghost"/>')

    def test_non_schema_root_rejected(self):
        with pytest.raises(XSDSyntaxError, match="xsd:schema"):
            parse_xsd("<not-a-schema/>")

    def test_unnamed_top_level_type_rejected(self):
        with pytest.raises(XSDSyntaxError, match="requires a name"):
            xsd("<xsd:complexType><xsd:sequence/></xsd:complexType>")


class TestRecursiveTypes:
    def test_mutually_recursive_complex_types(self):
        schema = xsd(
            '<xsd:element name="tree" type="Node"/>'
            '<xsd:complexType name="Node"><xsd:sequence>'
            '<xsd:element name="value" type="xsd:integer"/>'
            '<xsd:element name="child" type="Node"'
            ' minOccurs="0" maxOccurs="unbounded"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        assert schema.type("Node").child_types["child"] == "Node"
        from repro.core.validator import validate_document
        from repro.xmltree.parser import parse

        doc = parse(
            "<tree><value>1</value>"
            "<child><value>2</value></child>"
            "<child><value>3</value></child></tree>"
        )
        assert validate_document(schema, doc).valid

    def test_prefixless_xsd_names(self):
        # xs: prefix variant must work identically.
        source = (
            '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
            '<xs:element name="n" type="xs:integer"/>'
            "</xs:schema>"
        )
        schema = parse_xsd(source)
        assert schema.type(schema.root_type("n")).validate("42")


class TestPaperSchemas:
    def test_figure2_roundtrip(self, exp2_target):
        assert exp2_target.root_type("purchaseOrder") == "POType"
        po = exp2_target.type("POType")
        assert isinstance(po, ComplexType)
        assert po.content.to_source() == "(shipTo,billTo,items)"
        item = exp2_target.type("Item")
        assert item.child_types["quantity"].startswith("#anon:")
        quantity = exp2_target.type(item.child_types["quantity"])
        assert quantity.validate("99")
        assert not quantity.validate("100")

    def test_figure1a_optional_billto(self, exp1_source):
        dfa = exp1_source.content_dfa("POType")
        assert dfa.accepts(["shipTo", "items"])
        assert dfa.accepts(["shipTo", "billTo", "items"])
