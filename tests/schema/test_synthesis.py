"""Tests for canonical value and minimal tree synthesis."""

import pytest

from repro.core.validator import validate_element
from repro.errors import SchemaError
from repro.schema.model import Schema, complex_type
from repro.schema.simple import builtin, restrict
from repro.schema.synthesis import canonical_value, minimal_tree


class TestCanonicalValue:
    @pytest.mark.parametrize(
        "name",
        ["string", "integer", "decimal", "boolean", "date",
         "positiveInteger", "negativeInteger", "byte", "unsignedShort"],
    )
    def test_builtins_witnessed(self, name):
        declaration = builtin(name)
        assert declaration.validate(canonical_value(declaration))

    def test_range_boundaries(self):
        low = restrict(builtin("integer"), "low", min_inclusive=42)
        assert canonical_value(low) == "42"
        open_low = restrict(builtin("integer"), "ol", min_exclusive=42)
        assert canonical_value(open_low) == "43"

    def test_window(self):
        window = restrict(builtin("positiveInteger"), "w",
                          max_exclusive=100)
        value = canonical_value(window)
        assert window.validate(value)
        assert value == "1"

    def test_enumeration_first_member(self):
        color = restrict(builtin("string"), "c",
                         enumeration=frozenset({"red", "blue"}))
        assert canonical_value(color) == "blue"  # sorted order

    def test_min_length_string(self):
        code = restrict(builtin("string"), "code", min_length=3)
        value = canonical_value(code)
        assert len(value) == 3
        assert code.validate(value)

    def test_date_default_and_bounded(self):
        assert canonical_value(builtin("date")) == "2004-01-01"

    def test_deterministic(self):
        quantity = restrict(builtin("positiveInteger"), "q",
                            max_exclusive=100)
        assert canonical_value(quantity) == canonical_value(quantity)

    def test_decimal_only_window(self):
        from fractions import Fraction

        from repro.schema.simple import AtomicKind, SimpleType

        window = SimpleType("dw", AtomicKind.DECIMAL,
                            min_exclusive=Fraction(0),
                            max_exclusive=Fraction(1))
        value = canonical_value(window)
        assert window.validate(value)


class TestMinimalTree:
    def schema(self):
        return Schema(
            {
                "PO": complex_type("PO", "(shipTo,billTo?,items)", {
                    "shipTo": "Addr", "billTo": "Addr", "items": "Items",
                }),
                "Addr": complex_type("Addr", "(name,street)", {
                    "name": "Str", "street": "Str",
                }),
                "Items": complex_type("Items", "(item*)", {"item": "Qty"}),
                "Str": builtin("string"),
                "Qty": restrict(builtin("positiveInteger"), "Qty",
                                max_exclusive=100),
            },
            {"purchaseOrder": "PO"},
        )

    def test_minimal_tree_is_valid(self):
        schema = self.schema()
        tree = minimal_tree(schema, "PO", "purchaseOrder")
        assert validate_element(schema, "PO", tree).valid

    def test_minimal_tree_omits_optional_parts(self):
        schema = self.schema()
        tree = minimal_tree(schema, "PO", "purchaseOrder")
        assert tree.find("billTo") is None          # optional: omitted
        assert tree.find("items").children == []    # item*: empty

    def test_simple_type_leaf(self):
        schema = self.schema()
        leaf = minimal_tree(schema, "Qty", "quantity")
        assert leaf.text() == "1"

    def test_nonproductive_type_rejected(self):
        schema = Schema(
            {"Loop": complex_type("Loop", "(x)", {"x": "Loop"})},
            {"x": "Loop"},
        )
        with pytest.raises(SchemaError, match="no tree"):
            minimal_tree(schema, "Loop", "x")

    def test_recursion_bottoms_out(self):
        schema = Schema(
            {"N": complex_type("N", "(n?)", {"n": "N"})},
            {"n": "N"},
        )
        tree = minimal_tree(schema, "N", "n")
        assert tree.children == []

    def test_nonproductive_branch_avoided(self):
        schema = Schema(
            {
                "T": complex_type("T", "(bad|good)", {
                    "bad": "Loop", "good": "Str",
                }),
                "Loop": complex_type("Loop", "(bad)", {"bad": "Loop"}),
                "Str": builtin("string"),
            },
            {"t": "T"},
        )
        tree = minimal_tree(schema, "T", "t")
        assert [c.label for c in tree.children] == ["good"]
        assert validate_element(schema, "T", tree).valid

    def test_deterministic(self):
        schema = self.schema()
        first = minimal_tree(schema, "PO", "purchaseOrder")
        second = minimal_tree(schema, "PO", "purchaseOrder")
        assert first.structurally_equal(second)
