"""Tests for the preprocessed SchemaPair registry."""

from repro.schema.model import Schema, complex_type
from repro.schema.registry import SchemaPair
from repro.schema.simple import builtin


def make_pair():
    source = Schema(
        {
            "T": complex_type("T", "(a,b?)", {"a": "Int", "b": "Str"}),
            "Int": builtin("integer"),
            "Str": builtin("string"),
        },
        {"t": "T"},
        name="src",
    )
    target = Schema(
        {
            "T": complex_type("T", "(a,b?)", {"a": "Str", "b": "Str"}),
            "Str": builtin("string"),
            "Date": builtin("date"),
        },
        {"t": "T"},
        name="tgt",
    )
    return SchemaPair(source, target)


class TestRelations:
    def test_subsumption_query(self):
        pair = make_pair()
        assert pair.is_subsumed("Int", "Str")
        assert pair.is_subsumed("T", "T")  # int ⊆ string childwise
        assert not pair.is_subsumed("Str", "Date")

    def test_disjoint_query(self):
        pair = make_pair()
        assert pair.is_disjoint("Int", "Date")
        assert not pair.is_disjoint("Int", "Str")

    def test_relations_cover_type_products(self):
        pair = make_pair()
        for tau in pair.source.types:
            for tau_p in pair.target.types:
                # Exactly one of: subsumed implies non-disjoint
                # (productive types are never both).
                if pair.is_subsumed(tau, tau_p):
                    assert not pair.is_disjoint(tau, tau_p)


class TestCaches:
    def test_string_cast_cached(self):
        pair = make_pair()
        assert pair.string_cast("T", "T") is pair.string_cast("T", "T")

    def test_target_immed_cached(self):
        pair = make_pair()
        assert pair.target_immed("T") is pair.target_immed("T")

    def test_warm_builds_needed_machines(self):
        pair = make_pair()
        pair.warm()
        assert "T" in pair._target_immed  # built for complex targets

    def test_memory_depends_only_on_schemas(self):
        """The paper's headline: state size is document-independent."""
        pair = make_pair()
        pair.warm()
        machines_before = (
            len(pair._string_casts),
            len(pair._target_immed),
        )
        # "Process" many documents.
        from repro.core.cast import CastValidator
        from repro.xmltree.parser import parse

        validator = CastValidator(pair)
        for n in (1, 10, 100):
            doc = parse("<t>" + "<a>1</a>" * 1 + "</t>")
            validator.validate(doc)
        assert (
            len(pair._string_casts),
            len(pair._target_immed),
        ) == machines_before


class TestRootPair:
    def test_known_root(self):
        pair = make_pair()
        assert pair.root_pair("t") == ("T", "T")

    def test_unknown_root(self):
        pair = make_pair()
        assert pair.root_pair("zzz") is None
