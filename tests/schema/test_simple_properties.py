"""Property-based soundness of the simple-type facet algebra.

Random simple types and random conforming values: subsumption claims
must be witnessed by every sample, disjointness refuted by none, and
the generators/synthesizers must produce conforming values.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.simple import builtin, restrict
from repro.schema.synthesis import canonical_value
from repro.workloads.generators import random_simple_type, random_text_for

seeds = st.integers(0, 10_000)


def _type_pool(seed):
    rng = random.Random(seed)
    pool = [random_simple_type(rng, f"T{i}") for i in range(6)]
    pool.extend(
        [builtin("string"), builtin("integer"), builtin("decimal"),
         builtin("date"), builtin("boolean")]
    )
    return rng, pool


@given(seeds)
@settings(max_examples=120, deadline=None)
def test_subsumption_witnessed_by_samples(seed):
    rng, pool = _type_pool(seed)
    for narrow in pool:
        for wide in pool:
            if narrow.is_subsumed_by(wide):
                for _ in range(3):
                    value = random_text_for(rng, narrow)
                    assert narrow.validate(value)
                    assert wide.validate(value), (
                        narrow.name, wide.name, value,
                    )


@given(seeds)
@settings(max_examples=120, deadline=None)
def test_disjointness_never_refuted_by_samples(seed):
    rng, pool = _type_pool(seed)
    for left in pool:
        for right in pool:
            if left.is_disjoint_from(right):
                for _ in range(3):
                    value = random_text_for(rng, left)
                    assert not right.validate(value), (
                        left.name, right.name, value,
                    )


@given(seeds)
@settings(max_examples=150, deadline=None)
def test_canonical_value_conforms(seed):
    rng = random.Random(seed)
    declaration = random_simple_type(rng, "T")
    assert declaration.validate(canonical_value(declaration))


@given(seeds)
@settings(max_examples=150, deadline=None)
def test_random_text_conforms(seed):
    rng = random.Random(seed)
    declaration = random_simple_type(rng, "T")
    for _ in range(5):
        assert declaration.validate(random_text_for(rng, declaration))


@given(seeds)
@settings(max_examples=100, deadline=None)
def test_subsumption_is_reflexive_and_transitive(seed):
    _, pool = _type_pool(seed)
    for declaration in pool:
        assert declaration.is_subsumed_by(declaration)
    for a in pool:
        for b in pool:
            if not a.is_subsumed_by(b):
                continue
            for c in pool:
                if b.is_subsumed_by(c):
                    assert a.is_subsumed_by(c), (a.name, b.name, c.name)


@given(seeds)
@settings(max_examples=100, deadline=None)
def test_disjointness_is_symmetric(seed):
    _, pool = _type_pool(seed)
    for a in pool:
        for b in pool:
            assert a.is_disjoint_from(b) == b.is_disjoint_from(a), (
                a.name, b.name,
            )


@given(st.integers(2, 400), st.integers(2, 400))
@settings(max_examples=150, deadline=None)
def test_bounded_positive_integers_ordering(low_bound, high_bound):
    """The Experiment 2 family: maxExclusive bounds order by inclusion."""
    narrow = restrict(builtin("positiveInteger"), "n",
                      max_exclusive=min(low_bound, high_bound))
    wide = restrict(builtin("positiveInteger"), "w",
                    max_exclusive=max(low_bound, high_bound))
    assert narrow.is_subsumed_by(wide)
    if min(low_bound, high_bound) < max(low_bound, high_bound):
        assert not wide.is_subsumed_by(narrow)
    assert not narrow.is_disjoint_from(wide)
