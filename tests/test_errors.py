"""The machine-readable error vocabulary: stable codes, one wire shape.

Every class in the ``ReproError`` taxonomy carries a stable kebab-case
``code`` and renders through ``to_dict()`` — the single diagnostic
shape shared by the CLI, the batch driver's ``DocumentResult``, and the
HTTP service.  These tests pin the vocabulary: a code is an API, and
changing one silently breaks every client switching on it.
"""

from __future__ import annotations

import repro.schema.artifacts  # noqa: F401 — load the artifact and
import repro.service.errors  # noqa: F401 — service branches so the
# taxonomy walk below covers their classes too.
from repro.errors import (
    INTERNAL_CODE,
    IO_ERROR_CODE,
    WORKER_CRASH_CODE,
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
    EntityExpansionError,
    ReproError,
    ValidationError,
    XMLSyntaxError,
    code_for_error_type,
    error_code,
)


def taxonomy() -> list[type]:
    classes, frontier = [], [ReproError]
    while frontier:
        cls = frontier.pop()
        classes.append(cls)
        frontier.extend(cls.__subclasses__())
    return classes


class TestCodes:
    def test_every_class_has_a_kebab_case_code(self):
        for cls in taxonomy():
            code = cls.code
            assert code, cls.__name__
            assert code == code.lower(), cls.__name__
            assert " " not in code and "_" not in code, cls.__name__

    def test_codes_are_unique_across_the_taxonomy(self):
        by_code: dict[str, str] = {}
        for cls in taxonomy():
            if "code" in cls.__dict__:  # own, not inherited
                assert cls.code not in by_code, (
                    f"{cls.__name__} reuses code {cls.code!r} "
                    f"of {by_code[cls.code]}"
                )
                by_code[cls.code] = cls.__name__

    def test_pinned_vocabulary(self):
        # The codes clients are allowed to depend on.
        assert XMLSyntaxError.code == "xml-syntax"
        assert ValidationError.code == "validation-failed"
        assert DocumentTooLargeError.code == "doc-too-large"
        assert DocumentTooDeepError.code == "doc-too-deep"
        assert EntityExpansionError.code == "entity-expansion"
        assert DeadlineExceededError.code == "deadline-exceeded"

    def test_error_code_helper(self):
        assert error_code(XMLSyntaxError("boom")) == "xml-syntax"
        assert error_code(OSError("disk")) == IO_ERROR_CODE
        assert error_code(RuntimeError("bug")) == INTERNAL_CODE


class TestToDict:
    def test_plain_error(self):
        data = XMLSyntaxError("unexpected <").to_dict()
        assert data["code"] == "xml-syntax"
        assert data["message"] == "unexpected <"

    def test_positional_attributes_included_when_set(self):
        error = XMLSyntaxError("bad token")
        error.line, error.column = 3, 17
        data = error.to_dict()
        assert data["line"] == 3 and data["column"] == 17

    def test_zero_positions_omitted(self):
        error = XMLSyntaxError("bad token")
        error.line = 0
        assert "line" not in error.to_dict()


class TestCodeForErrorType:
    """Healing journal records that predate ``error_code``: the batch
    checkpoint layer recovers a code from the stored class name."""

    def test_known_class_names_resolve(self):
        assert code_for_error_type("XMLSyntaxError") == "xml-syntax"
        assert code_for_error_type("DeadlineExceededError") == (
            "deadline-exceeded"
        )

    def test_worker_crash_marker(self):
        assert code_for_error_type("WorkerCrash") == WORKER_CRASH_CODE

    def test_oserror_names_resolve_to_io(self):
        assert code_for_error_type("FileNotFoundError") == IO_ERROR_CODE
        assert code_for_error_type("OSError") == IO_ERROR_CODE

    def test_unknown_name_is_internal_and_empty_is_empty(self):
        assert code_for_error_type("SomethingNovel") == INTERNAL_CODE
        assert code_for_error_type("") == ""
