"""Tests for the bench table renderer and result types."""

import json
import os

from repro.bench.reporting import (
    render_csv,
    render_table,
    update_bench_json,
)
from repro.core.result import ValidationReport, ValidationStats


class TestRenderTable:
    def test_title_and_alignment(self):
        table = render_table(
            "Demo", ["col", "value"], [["a", 1], ["bb", 22]]
        )
        lines = table.splitlines()
        assert lines[0] == "== Demo =="
        assert "col" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_number_formatting(self):
        table = render_table(
            "N", ["v"], [[1234567], [3.14159], [0.00123], [250.0]]
        )
        assert "1,234,567" in table
        assert "3.14" in table
        assert "0.0012" in table
        assert "250" in table

    def test_note_appended(self):
        table = render_table("T", ["a"], [[1]], note="context")
        assert table.endswith("note: context")

    def test_empty_rows(self):
        table = render_table("T", ["a", "b"], [])
        assert "== T ==" in table


class TestRenderCsv:
    def test_csv_shape(self):
        csv = render_csv(["x", "y"], [[1, 2], [3, 4]])
        assert csv.splitlines() == ["x,y", "1,2", "3,4"]


class TestValidationStats:
    def test_merge_accumulates_all_counters(self):
        left = ValidationStats(
            elements_visited=1,
            text_nodes_visited=2,
            content_symbols_scanned=3,
            simple_values_checked=4,
            subtrees_skipped=5,
            disjoint_rejections=6,
            early_content_decisions=7,
            deltas_seen=8,
        )
        right = ValidationStats(elements_visited=10, deltas_seen=1)
        left.merge(right)
        assert left.elements_visited == 11
        assert left.deltas_seen == 9
        assert left.nodes_visited == 11 + 2

    def test_report_truthiness(self):
        assert ValidationReport.success()
        assert not ValidationReport.failure("boom")

    def test_failure_carries_path_and_reason(self):
        report = ValidationReport.failure("broken", path="1.2")
        assert report.reason == "broken"
        assert report.path == "1.2"
        assert "invalid" in repr(report)

    def test_success_repr(self):
        assert "valid" in repr(ValidationReport.success())

    def test_merge_accumulates_memo_counters(self):
        left = ValidationStats(memo_hits=3, memo_misses=1)
        left.merge(ValidationStats(memo_hits=2, memo_misses=4,
                                   memo_evictions=5))
        assert left.memo_hits == 5
        assert left.memo_misses == 5
        assert left.memo_evictions == 5
        assert left.memo_lookups == 10
        assert left.memo_hit_rate == 0.5

    def test_as_dict_covers_every_counter(self):
        stats = ValidationStats(elements_visited=2, memo_hits=1)
        data = stats.as_dict()
        assert data["elements_visited"] == 2
        assert data["memo_hits"] == 1
        assert set(data) >= {"memo_misses", "memo_evictions"}


class TestUpdateBenchJson:
    def test_creates_fresh_file(self, tmp_path):
        path = tmp_path / "bench.json"
        update_bench_json(
            str(path), {"a": {"speedup": 2.0}}, source="s.py"
        )
        data = json.loads(path.read_text())
        assert data["version"] == 1
        from repro.kernel import backend_name

        assert data["results"]["a"] == {
            "speedup": 2.0,
            "source": "s.py",
            "cpu_count": os.cpu_count(),
            "kernel_backend": backend_name(),
        }

    def test_every_record_carries_provenance_stamps(self, tmp_path):
        # Scaling numbers are meaningless without the core count they
        # were measured on, and throughput numbers without the kernel
        # backend that produced them; the writer stamps both
        # unconditionally.
        path = tmp_path / "bench.json"
        update_bench_json(
            str(path), {"a": {"x": 1}, "b": {"y": 2}}, source="s.py"
        )
        results = json.loads(path.read_text())["results"]
        for record in results.values():
            assert record["cpu_count"] == os.cpu_count()
            assert record["kernel_backend"] in ("py", "compiled")

    def test_merge_preserves_other_records(self, tmp_path):
        path = tmp_path / "bench.json"
        update_bench_json(str(path), {"a": {"x": 1}}, source="one.py")
        update_bench_json(str(path), {"b": {"y": 2}}, source="two.py")
        results = json.loads(path.read_text())["results"]
        assert results["a"]["x"] == 1
        assert results["a"]["source"] == "one.py"
        assert results["b"]["y"] == 2
        assert results["b"]["source"] == "two.py"

    def test_rewrite_overwrites_same_record(self, tmp_path):
        path = tmp_path / "bench.json"
        update_bench_json(str(path), {"a": {"x": 1}}, source="s.py")
        update_bench_json(str(path), {"a": {"x": 9}}, source="s.py")
        results = json.loads(path.read_text())["results"]
        assert results["a"]["x"] == 9

    def test_corrupt_file_started_fresh(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        update_bench_json(str(path), {"a": {"x": 1}}, source="s.py")
        data = json.loads(path.read_text())
        assert data["results"]["a"]["x"] == 1

    def test_wrong_shape_started_fresh(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(["not", "a", "dict"]))
        update_bench_json(str(path), {"a": {"x": 1}}, source="s.py")
        assert json.loads(path.read_text())["results"]["a"]["x"] == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "bench.json"
        update_bench_json(str(path), {"a": {"x": 1}}, source="s.py")
        assert [p.name for p in tmp_path.iterdir()] == ["bench.json"]
