"""Byte-level subtree skimming: ``Scanner.skim_subtree`` + ``PullParser``.

The skim is the lexer half of the skip-scan cast path: once a subtree's
verdict is known (a subsumed pair), the scanner fast-forwards to the
matching close tag without tokenizing anything in between.  Under test:

* the skim lands exactly where the full event loop would (resume
  parity with :func:`iterparse`);
* markup hiding ``<``/``>``/``</label`` inside comments, CDATA
  sections, processing instructions, and quoted attribute values does
  not fool the depth counter (table-driven, adversarial corpus
  included);
* resource guards — nesting depth and the wall-clock deadline — keep
  firing *inside* a skim;
* the trusted byte-search variant: name-boundary handling and the
  well-formedness contract it assumes;
* the :class:`PullParser` skip channel: event parity, skip semantics
  for ordinary/self-closing/root elements, misuse errors, counters.
"""

import pytest

from repro.errors import (
    DeadlineExceededError,
    DocumentTooDeepError,
    XMLSyntaxError,
)
from repro.guards import Deadline, Limits, resolve_limits
from repro.workloads.adversarial import (
    deep_document,
    garbage_tail_document,
    truncated_document,
    wide_document,
)
from repro.xmltree.events import (
    Characters,
    EndElement,
    PullParser,
    StartElement,
    iterparse,
)
from repro.xmltree.lexer import Scanner


def skim(
    text: str,
    label: str = "a",
    *,
    trusted: bool = False,
    limits: Limits = None,
    deadline: Deadline = None,
) -> int:
    """Skim the first ``<label …>`` element's subtree; return the end
    offset (first character after the matching close tag)."""
    scanner = Scanner(
        text, limits=resolve_limits(limits), deadline=deadline
    )
    start = text.index(">", text.index("<" + label)) + 1
    end = scanner.skim_subtree(
        start, label=label, base_depth=1, trusted=trusted
    )
    assert end == scanner.pos
    return end


#: Subtree bodies that must skim cleanly in hardened (untrusted) mode —
#: each hides markup delimiters where a naive depth counter would trip.
HARDENED_BODIES = [
    ("plain-children", "<b>x</b><c>y</c>"),
    ("close-tag-in-comment", "<!-- a fake </a> close --><b/>"),
    ("angles-in-comment", "<!-- 1 < 2 > 0 <b> -->"),
    ("close-tag-in-cdata", "<![CDATA[</a> and < and > and <a>]]>"),
    ("cdata-bracket-run", "<![CDATA[x]] ]]>"),
    ("close-tag-in-pi", "<?pi data </a> <a> ?>"),
    ("xmlish-pi", "<?target attr='</a>'?>"),
    ("gt-in-attribute", '<b x="1 > 0">t</b>'),
    ("close-tag-in-attribute", "<b x='</a>'/>"),
    ("lt-is-illegal-but-gt-ok", '<b x="a>b" y=\'c>d\'/>'),
    ("same-name-nesting", "<a><a>deep</a></a>mid<a/>"),
    ("entity-references", "text &lt;&amp;&#60; more"),
    ("self-closing-run", "<b/><b />ww<b/>"),
    ("mixed-everything", "t1<b p='>'/><!--<x>--><![CDATA[<y>]]>t2"),
]


class TestHardenedSkim:
    @pytest.mark.parametrize(
        "body", [b for _, b in HARDENED_BODIES],
        ids=[name for name, _ in HARDENED_BODIES],
    )
    def test_skims_to_the_matching_close(self, body):
        text = f"<r><a>{body}</a><tail/></r>"
        end = skim(text)
        assert text[:end].endswith("</a>")
        assert text[end:] == "<tail/></r>"

    @pytest.mark.parametrize(
        "body", [b for _, b in HARDENED_BODIES],
        ids=[name for name, _ in HARDENED_BODIES],
    )
    def test_agrees_with_the_full_event_loop(self, body):
        """Resume parity: events after a skip are exactly the events
        the full parser yields after the skipped element closes."""
        text = f"<r><a>{body}</a><tail>z</tail></r>"
        full = list(iterparse(text))
        # Index of the skimmed element's *matching* close (same-name
        # nesting means it need not be the first EndElement("a")).
        depth, close = 1, 2
        while depth:
            event = full[close]
            if isinstance(event, StartElement):
                depth += 1
            elif isinstance(event, EndElement):
                depth -= 1
            close += 1
        close -= 1
        pull = PullParser(text)
        assert next(pull) == StartElement("r", {})
        assert isinstance(next(pull), StartElement)  # <a>
        pull.skip_subtree()
        assert list(pull) == full[close + 1:]


class TestSkimErrors:
    def test_truncated_subtree(self):
        with pytest.raises(XMLSyntaxError, match="unterminated element"):
            skim("<a><b>never closed")

    def test_truncated_adversarial_document(self):
        # The corpus document is cut mid-tag; depending on where the
        # cut lands the skim reports either diagnosis — both typed.
        with pytest.raises(
            XMLSyntaxError, match="unterminated|malformed"
        ):
            skim(truncated_document(depth=4))

    def test_mismatched_final_close(self):
        with pytest.raises(
            XMLSyntaxError, match=r"mismatched close tag </x> for <a>"
        ):
            skim("<a><b></b></x>")

    def test_cdata_end_in_character_data(self):
        with pytest.raises(XMLSyntaxError, match=r"']]>' is not allowed"):
            skim("<a>text ]]> more</a>")

    def test_double_hyphen_in_comment(self):
        with pytest.raises(XMLSyntaxError, match="'--' is not allowed"):
            skim("<a><!-- bad -- comment --></a>")

    def test_malformed_markup(self):
        with pytest.raises(XMLSyntaxError, match="malformed markup"):
            skim("<a><b <c></a>")

    def test_errors_carry_line_and_column(self):
        with pytest.raises(XMLSyntaxError, match=r"line 3, column \d+"):
            skim("<a>\n<b/>\n</x>")


class TestTrustedSkim:
    @pytest.mark.parametrize(
        "body",
        [
            "<b>x</b><c>y</c>",
            "<a><a>deep</a></a>mid<a/>",
            "text &lt;&amp; more",
            "<a attr='v'>nested</a>",
        ],
    )
    def test_agrees_with_hardened_mode(self, body):
        text = f"<r><a>{body}</a><tail/></r>"
        assert skim(text, trusted=True) == skim(text)

    def test_name_boundary_longer_close(self):
        # </items> must not close <item>.
        text = "<item><items><item/></items></item>rest"
        end = skim(text, "item", trusted=True)
        assert text[end:] == "rest"
        assert end == skim(text, "item")

    def test_name_boundary_longer_open(self):
        # <items …> must not count as a nested <item>.
        text = "<item><items>x</items></item>rest"
        end = skim(text, "item", trusted=True)
        assert text[end:] == "rest"

    def test_self_closing_same_name(self):
        text = "<a><a/><a />t</a>rest"
        end = skim(text, trusted=True)
        assert text[end:] == "rest"

    def test_unterminated(self):
        with pytest.raises(XMLSyntaxError, match="unterminated element"):
            skim("<a><a>never", trusted=True)

    def test_contract_violation_is_the_callers_problem(self):
        # A same-name close hidden in a comment is exactly what trusted
        # mode does NOT defend against (its documented contract): it
        # stops at the hidden close while the hardened skim reads on to
        # the real one.  This is why trusted is opt-in.
        text = "<r><a><!-- </a> --><b/></a><tail/></r>"
        hardened = skim(text)
        assert text[hardened:] == "<tail/></r>"
        assert skim(text, trusted=True) < hardened


class TestGuardsDuringSkim:
    @pytest.mark.parametrize("trusted", [False, True])
    def test_depth_limit_fires_inside_a_skim(self, trusted):
        text = deep_document(300)
        with pytest.raises(DocumentTooDeepError):
            skim(text, limits=Limits(max_tree_depth=50), trusted=trusted)

    @pytest.mark.parametrize("trusted", [False, True])
    def test_depth_limit_counts_from_base_depth(self, trusted):
        # base_depth is the absolute depth of the skim root: a shallow
        # subtree under a deep ancestor chain must still trip.
        text = deep_document(30)
        scanner = Scanner(text, limits=Limits(max_tree_depth=40))
        with pytest.raises(DocumentTooDeepError):
            scanner.skim_subtree(
                text.index(">") + 1, label="a", base_depth=20,
                trusted=trusted,
            )

    @pytest.mark.parametrize("trusted", [False, True])
    def test_deadline_fires_inside_a_skim(self, trusted):
        # >2x the tick stride of same-name tags, so even the trusted
        # scanner (which only sees same-name nesting) reads the clock.
        text = deep_document(2 * Deadline.stride + 10)
        with pytest.raises(DeadlineExceededError):
            skim(text, deadline=Deadline.start(1e-9), trusted=trusted)

    def test_deadline_fires_on_flat_fanout(self):
        text = wide_document(2 * Deadline.stride + 10)
        with pytest.raises(DeadlineExceededError):
            skim(text, deadline=Deadline.start(1e-9))


class TestPullParser:
    @pytest.mark.parametrize(
        "text",
        [
            "<a><b>x</b><c/>tail</a>",
            "<?xml version='1.0'?><!-- head --><a>t<b/></a><!-- tail -->",
            "<a>one<![CDATA[<raw>]]>two</a>",
        ],
    )
    def test_event_parity_with_iterparse(self, text):
        assert list(PullParser(text)) == list(iterparse(text))

    def test_skip_returns_byte_count(self):
        text = "<r><a><b>x</b></a><c/></r>"
        pull = PullParser(text)
        next(pull)  # <r>
        next(pull)  # <a>
        subtree = "<b>x</b></a>"  # from after <a> through </a>
        assert pull.skip_subtree() == len(subtree)
        assert pull.bytes_skipped == len(subtree)
        assert pull.subtrees_skipped == 1
        assert list(pull) == [
            StartElement("c", {}),
            EndElement("c"),
            EndElement("r"),
        ]

    def test_skip_self_closing_is_zero_bytes(self):
        pull = PullParser("<r><a/><b>x</b></r>")
        next(pull)  # <r>
        next(pull)  # <a/>
        assert pull.skip_subtree() == 0
        assert pull.subtrees_skipped == 1
        assert pull.bytes_skipped == 0
        # The queued EndElement was drained: next event is <b>.
        assert next(pull) == StartElement("b", {})

    def test_skip_root_ends_iteration(self):
        pull = PullParser("<a><b>x</b></a><!-- trailing -->")
        next(pull)  # <a>
        assert pull.skip_subtree() > 0
        assert list(pull) == []

    def test_skip_root_still_rejects_garbage_tail(self):
        pull = PullParser(garbage_tail_document())
        next(pull)
        pull.skip_subtree()
        with pytest.raises(XMLSyntaxError, match="after the root"):
            list(pull)

    def test_skip_before_any_event_is_an_error(self):
        pull = PullParser("<a/>")
        with pytest.raises(ValueError, match="StartElement"):
            pull.skip_subtree()

    def test_skip_after_end_element_is_an_error(self):
        pull = PullParser("<a><b/></a>")
        next(pull)  # <a>
        next(pull)  # <b/> start
        next(pull)  # </b>
        with pytest.raises(ValueError, match="StartElement"):
            pull.skip_subtree()

    def test_skip_after_characters_is_an_error(self):
        pull = PullParser("<a>text<b/></a>")
        next(pull)
        event = next(pull)
        assert event == Characters("text")
        with pytest.raises(ValueError, match="StartElement"):
            pull.skip_subtree()

    def test_double_skip_is_an_error(self):
        pull = PullParser("<r><a>x</a><b>y</b></r>")
        next(pull)
        next(pull)
        pull.skip_subtree()
        with pytest.raises(ValueError, match="StartElement"):
            pull.skip_subtree()

    def test_skip_on_truncated_document_raises(self):
        pull = PullParser(truncated_document(depth=4))
        next(pull)  # outer <a>
        with pytest.raises(
            XMLSyntaxError, match="unterminated|malformed"
        ):
            pull.skip_subtree()

    def test_interleaved_skips_and_events(self):
        text = "<r><a>one</a><b>two</b><c>three</c></r>"
        pull = PullParser(text)
        events = []
        for event in pull:
            if isinstance(event, StartElement) and event.label in ("a", "c"):
                pull.skip_subtree()
                continue
            events.append(event)
        assert events == [
            StartElement("r", {}),
            StartElement("b", {}),
            Characters("two"),
            EndElement("b"),
            EndElement("r"),
        ]
        assert pull.subtrees_skipped == 2
