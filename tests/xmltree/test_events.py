"""Tests for the streaming event parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.dom import Document, Element, Text
from repro.xmltree.events import (
    Characters,
    EndElement,
    StartElement,
    iterparse,
)
from repro.xmltree.parser import parse


def events_of(text, **kwargs):
    return list(iterparse(text, **kwargs))


def tree_from_events(events):
    """Rebuild a DOM from events (for equivalence checks)."""
    root = None
    stack = []
    for event in events:
        if isinstance(event, StartElement):
            node = Element(event.label, event.attributes)
            if stack:
                stack[-1].append(node)
            else:
                root = node
            stack.append(node)
        elif isinstance(event, Characters):
            stack[-1].append(Text(event.value))
        else:
            closed = stack.pop()
            assert closed.label == event.label
    assert root is not None
    return Document(root)


class TestEventStream:
    def test_simple_sequence(self):
        events = events_of("<a><b>x</b><c/></a>")
        assert events == [
            StartElement("a", {}),
            StartElement("b", {}),
            Characters("x"),
            EndElement("b"),
            StartElement("c", {}),
            EndElement("c"),
            EndElement("a"),
        ]

    def test_attributes_and_entities(self):
        events = events_of('<a x="1&amp;2">&lt;z&gt;</a>')
        assert events[0] == StartElement("a", {"x": "1&2"})
        assert events[1] == Characters("<z>")

    def test_whitespace_suppression(self):
        events = events_of("<a>\n  <b/>\n</a>")
        assert not any(isinstance(e, Characters) for e in events)
        kept = events_of("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert sum(isinstance(e, Characters) for e in kept) == 2

    def test_cdata_and_comments(self):
        events = events_of("<a><!-- hi --><![CDATA[<&]]></a>")
        assert Characters("<&") in events

    def test_prolog_and_doctype_skipped(self):
        events = events_of(
            '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a EMPTY>]>'
            "<!-- c --><a/>"
        )
        assert events == [StartElement("a", {}), EndElement("a")]

    def test_mismatched_close(self):
        with pytest.raises(XMLSyntaxError, match="mismatched"):
            events_of("<a><b></a></b>")

    def test_unterminated(self):
        with pytest.raises(XMLSyntaxError, match="unterminated"):
            events_of("<a><b></b>")

    def test_content_after_root(self):
        with pytest.raises(XMLSyntaxError, match="after the root"):
            events_of("<a/><b/>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLSyntaxError, match="duplicate"):
            events_of('<a x="1" x="2"/>')


class TestDomEquivalence:
    @pytest.mark.parametrize(
        "source",
        [
            "<a/>",
            "<a>x</a>",
            "<a><b>1</b><c><d/></c>tail</a>",
            '<a k="v"><b a1="x" a2="y"/></a>',
            "<a>one<!-- c -->two</a>",
            "<po><items><item>1</item><item>2</item></items></po>",
        ],
    )
    def test_events_rebuild_the_dom(self, source):
        via_events = tree_from_events(events_of(source))
        via_dom = parse(source)
        assert via_events.root.structurally_equal(via_dom.root)

    def test_random_documents_agree(self):
        import random

        from repro.workloads.generators import (
            random_schema,
            sample_document,
        )
        from repro.xmltree.serializer import serialize

        rng = random.Random(5)
        checked = 0
        for _ in range(10):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, schema, max_depth=5)
            if doc is None:
                continue
            text = serialize(doc, indent="  ")
            rebuilt = tree_from_events(events_of(text))
            assert rebuilt.root.structurally_equal(parse(text).root)
            checked += 1
        assert checked >= 3
