"""Lex-time symbol interning: ``Element.sym`` and its fallbacks.

Parsing with ``symbols=`` interns element names into the given
:class:`~repro.automata.compiled.SymbolTable` as they are lexed;
validators then run content scans and child-type descent on the dense
ids.  The contract under test: interning never changes a verdict —
wrong tables, post-parse mutations, and labels outside the alphabet
all fall back to string lookups.
"""

from repro.automata.compiled import SymbolTable
from repro.core import streaming
from repro.core.cast import CastValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.streaming import StreamingCastValidator, StreamingValidator
from repro.core.validator import validate_document
from repro.schema.dtd import parse_dtd
from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment2,
    target_schema_experiment2,
)
from repro.xmltree.dom import Element
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize


def po_text(items: int = 5) -> str:
    return serialize(make_purchase_order(items), indent=" ")


class _BufferRecorder(list):
    """Wraps a frame dataclass to record each frame's text buffer as
    constructed (None for complex-typed frames, a list for simple)."""

    def __init__(self, module, name):
        super().__init__()
        self.real = getattr(module, name)

    def __call__(self, *args, **kwargs):
        frame = self.real(*args, **kwargs)
        self.append(frame.text_parts)
        return frame


def _record_frame_buffers(module, name) -> _BufferRecorder:
    recorder = _BufferRecorder(module, name)
    setattr(module, name, recorder)
    return recorder


class TestSymAssignment:
    def test_parse_interns_known_labels(self):
        table = SymbolTable(["a", "b"])
        document = parse("<a><b/><c/></a>", symbols=table)
        assert document.symbols is table
        root = document.root
        assert root.sym == table.ids["a"]
        b, c = root.children
        assert b.sym == table.ids["b"]
        assert c.sym == -1  # outside the table: fallback marker

    def test_parse_without_symbols(self):
        document = parse("<a><b/></a>")
        assert document.symbols is None
        assert document.root.sym == -1

    def test_relabel_resets_sym(self):
        table = SymbolTable(["a", "b"])
        document = parse("<a><b/></a>", symbols=table)
        child = document.root.children[0]
        assert child.sym >= 0
        child.label = "b"  # even a same-name relabel invalidates
        assert child.sym == -1

    def test_inserted_element_has_no_sym(self):
        table = SymbolTable(["a", "b"])
        document = parse("<a/>", symbols=table)
        document.root.append(Element("b"))
        assert document.root.children[0].sym == -1

    def test_copy_preserves_sym_and_table(self):
        table = SymbolTable(["a"])
        document = parse("<a/>", symbols=table)
        duplicate = document.copy()
        assert duplicate.symbols is table
        assert duplicate.root.sym == document.root.sym


class TestVerdictIdentity:
    def test_plain_validation_interned_vs_not(self):
        schema = source_schema_experiment2()
        text = po_text()
        plain = parse(text)
        interned = parse(text, symbols=schema.symbols)
        for collect_stats in (True, False):
            a = validate_document(schema, plain,
                                  collect_stats=collect_stats)
            b = validate_document(schema, interned,
                                  collect_stats=collect_stats)
            assert (a.valid, a.reason) == (b.valid, b.reason)
            assert a.valid

    def test_cast_interned_vs_not(self):
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        text = po_text()
        validator = CastValidator(pair, collect_stats=False)
        a = validator.validate(parse(text))
        b = validator.validate(parse(text, symbols=pair.symbols))
        assert (a.valid, a.reason) == (b.valid, b.reason)

    def test_cast_failure_reason_identical(self):
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        document = make_purchase_order(3)
        items = document.root.find("items")
        items.append(Element("bogus"))
        text = serialize(document)
        validator = CastValidator(pair, collect_stats=False)
        a = validator.validate(parse(text))
        b = validator.validate(parse(text, symbols=pair.symbols))
        assert not a.valid and not b.valid
        assert (a.reason, a.path) == (b.reason, b.path)

    def test_wrong_table_is_safe(self):
        # A document interned against some unrelated table must
        # validate exactly as an uninterned one: validators gate the
        # sym fast path on table identity, never on sym values.
        schema = source_schema_experiment2()
        text = po_text()
        alien = SymbolTable(sorted(schema.alphabet, reverse=True))
        mis_interned = parse(text, symbols=alien)
        report = validate_document(schema, mis_interned,
                                   collect_stats=False)
        assert report.valid

    def test_mutated_document_falls_back_per_node(self):
        schema = source_schema_experiment2()
        document = parse(po_text(), symbols=schema.symbols)
        item = document.root.find("items").children[0]
        item.label = item.label  # resets sym to -1, keeps validity
        report = validate_document(schema, document, collect_stats=False)
        assert report.valid

    def test_streaming_matches_dom_interned(self):
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        text = po_text()
        dom = CastValidator(pair, collect_stats=False).validate(
            parse(text, symbols=pair.symbols)
        )
        stream = StreamingCastValidator(pair).validate_text(text)
        assert (dom.valid, stream.valid) == (True, True)
        plain_schema = source_schema_experiment2()
        assert StreamingValidator(plain_schema).validate_text(text).valid

    def test_text_buffer_only_for_simple_frames_plain(self):
        # Complex-typed frames must not allocate a text buffer: only
        # simple-typed frames have a value to check, so the number of
        # list-carrying frames equals simple_values_checked exactly.
        schema = source_schema_experiment2()
        buffers = _record_frame_buffers(streaming, "_Frame")
        try:
            report = StreamingValidator(schema).validate_text(po_text())
        finally:
            streaming._Frame = buffers.real
        assert report.valid
        lists = [parts for parts in buffers if parts is not None]
        assert len(lists) == report.stats.simple_values_checked
        nones = len(buffers) - len(lists)
        assert nones == report.stats.elements_visited - len(lists)
        assert nones > 0  # the corpus does have complex frames

    def test_text_buffer_only_for_simple_frames_cast(self):
        pair = SchemaPair(
            source_schema_experiment2(), target_schema_experiment2()
        )
        # The fused kernel path allocates no _CastFrame at all; the
        # buffer-discipline contract applies to the event pipeline,
        # so instrument that path explicitly.
        buffers = _record_frame_buffers(streaming, "_CastFrame")
        try:
            validator = StreamingCastValidator(pair)
            for byte_skip in (False, True):
                buffers.clear()
                report = validator.validate_text_events(
                    po_text(), byte_skip=byte_skip
                )
                assert report.valid
                lists = [p for p in buffers if p is not None]
                assert len(lists) == report.stats.simple_values_checked
                assert len(buffers) == report.stats.elements_visited
        finally:
            streaming._CastFrame = buffers.real

    def test_dtd_cast_interned_vs_not(self):
        dtd = (
            "<!ELEMENT r (x, y*)>"
            "<!ELEMENT x (#PCDATA)>"
            "<!ELEMENT y (#PCDATA)>"
        )
        dtd_relaxed = (
            "<!ELEMENT r (x, y*, z?)>"
            "<!ELEMENT x (#PCDATA)>"
            "<!ELEMENT y (#PCDATA)>"
            "<!ELEMENT z (#PCDATA)>"
        )
        source = parse_dtd(dtd, roots=["r"])
        target = parse_dtd(dtd_relaxed, roots=["r"])
        pair = SchemaPair(source, target)
        validator = DTDCastValidator(pair, collect_stats=False)
        text = "<r><x>1</x><y>2</y><y>3</y></r>"
        a = validator.validate(parse(text))
        b = validator.validate(parse(text, symbols=pair.symbols))
        assert (a.valid, a.reason) == (b.valid, b.reason)
        assert a.valid
