"""Structural hash-consing invariants of the DOM layer.

The memoized pair-validation layer relies on exactly two properties:
structurally identical subtrees hash equally, and every DOM mutation
invalidates precisely the cached hashes on the mutated node's Dewey
path (its ancestor chain) while leaving every other cached hash alone.
"""

from repro.xmltree.dom import Element, Text, element
from repro.xmltree.parser import parse


def po_fragment() -> Element:
    return element(
        "item",
        element("productName", "Lawnmower"),
        element("quantity", "5"),
        element("USPrice", "148.95"),
        attrs={"partNum": "872-AA"},
    )


def assert_all_cached(root: Element) -> None:
    for node in root.iter_nodes():
        assert node.cached_structural_hash is not None


class TestHashEquality:
    def test_identical_structures_hash_equally(self):
        assert po_fragment().structural_hash() == po_fragment().structural_hash()

    def test_copy_hashes_equally(self):
        original = po_fragment()
        assert (
            original.copy().structural_hash() == original.structural_hash()
        )

    def test_parsed_and_built_trees_hash_equally(self):
        built = element("a", element("b", "x"), element("c"))
        parsed = parse("<a><b>x</b><c/></a>").root
        assert built.structural_hash() == parsed.structural_hash()

    def test_label_distinguishes(self):
        assert (
            element("a", "x").structural_hash()
            != element("b", "x").structural_hash()
        )

    def test_text_value_distinguishes(self):
        assert (
            element("a", "x").structural_hash()
            != element("a", "y").structural_hash()
        )

    def test_attributes_distinguish(self):
        assert (
            element("a", attrs={"k": "1"}).structural_hash()
            != element("a", attrs={"k": "2"}).structural_hash()
        )
        assert (
            element("a", attrs={"k": "1"}).structural_hash()
            != element("a").structural_hash()
        )

    def test_child_order_distinguishes(self):
        ab = element("r", element("a"), element("b"))
        ba = element("r", element("b"), element("a"))
        assert ab.structural_hash() != ba.structural_hash()

    def test_nesting_distinguishes(self):
        flat = element("r", element("a"), element("b"))
        nested = element("r", element("a", element("b")))
        assert flat.structural_hash() != nested.structural_hash()


class TestCaching:
    def test_parser_seals_every_node(self):
        document = parse("<a><b>x</b><c><d/></c></a>")
        assert_all_cached(document.root)

    def test_compute_caches_whole_subtree(self):
        root = po_fragment()
        root.structural_hash()
        assert_all_cached(root)

    def test_cached_value_is_stable(self):
        root = po_fragment()
        first = root.structural_hash()
        assert root.structural_hash() == first

    def test_deep_tree_does_not_recurse(self):
        # Deeper than the Python stack: iterative computation required.
        root = leaf = Element("n0")
        for i in range(1, 3000):
            leaf = leaf.append(Element(f"n{i}"))
        root.structural_hash()
        assert_all_cached(root)


class TestInvalidation:
    def make_tree(self):
        """root/a/b plus a sibling subtree root/s(/t), all sealed."""
        b = element("b", "leaf")
        a = element("a", b)
        s = element("s", element("t"))
        root = element("root", a, s)
        root.structural_hash()
        return root, a, b, s

    def assert_path_stale(self, stale, cached):
        for node in stale:
            assert node.cached_structural_hash is None
        for node in cached:
            assert node.cached_structural_hash is not None

    def test_label_setter_invalidates_dewey_path(self):
        root, a, b, s = self.make_tree()
        b.label = "renamed"
        self.assert_path_stale([b, a, root], [s, s.children[0], b.children[0]])

    def test_text_setter_invalidates_dewey_path(self):
        root, a, b, s = self.make_tree()
        text = b.children[0]
        assert isinstance(text, Text)
        text.value = "changed"
        self.assert_path_stale([text, b, a, root], [s])

    def test_append_invalidates_dewey_path(self):
        root, a, b, s = self.make_tree()
        a.append(element("new"))
        self.assert_path_stale([a, root], [b, s])

    def test_insert_invalidates_dewey_path(self):
        root, a, b, s = self.make_tree()
        s.insert(0, element("new"))
        self.assert_path_stale([s, root], [a, b])

    def test_remove_invalidates_dewey_path(self):
        root, a, b, s = self.make_tree()
        a.remove(b)
        self.assert_path_stale([a, root], [b, s])

    def test_explicit_invalidation_stops_at_stale_ancestor(self):
        root, a, b, s = self.make_tree()
        b.invalidate_structural_hash()
        assert root.cached_structural_hash is None
        # Re-invalidating is a no-op walk; siblings stay cached.
        b.invalidate_structural_hash()
        self.assert_path_stale([b, a, root], [s])

    def test_recompute_after_mutation_changes_hash(self):
        root, _, b, _ = self.make_tree()
        before = root.structural_hash()
        b.label = "renamed"
        assert root.structural_hash() != before

    def test_recompute_after_revert_restores_hash(self):
        root, _, b, _ = self.make_tree()
        before = root.structural_hash()
        b.label = "renamed"
        root.structural_hash()
        b.label = "b"
        assert root.structural_hash() == before
