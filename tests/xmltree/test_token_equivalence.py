"""Bulk lexer vs. reference scanner: identical token streams.

The regex-bulk tokenizer (:func:`repro.xmltree.lexer.iter_tokens`) and
the retired char-at-a-time implementation preserved in
:mod:`repro.xmltree.reference` are two independent lexers for the same
language.  On every corpus — generated documents, the paper's purchase
orders, adversarial shapes, and a malformed gallery — they must either
produce element-for-element identical token streams or raise the same
typed error with the same message (which embeds line and column).
"""

import random

import pytest

from repro.workloads.adversarial import (
    deep_document,
    entity_bomb,
    garbage_tail_document,
    truncated_document,
    wide_document,
)
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.lexer import iter_tokens
from repro.xmltree.parser import parse
from repro.xmltree.reference import (
    reference_parse,
    reference_tokens,
)
from repro.xmltree.serializer import serialize


def collect(token_fn, text):
    """``("ok", tokens)`` or ``("err", type, message)``."""
    try:
        return ("ok", list(token_fn(text)))
    except Exception as error:  # noqa: BLE001 — comparing failure modes
        return ("err", type(error), str(error))


def assert_same_stream(text):
    old = collect(reference_tokens, text)
    new = collect(iter_tokens, text)
    assert old == new, f"token streams diverged on {text[:80]!r}"


def assert_same_tree(text):
    """The new parser and the reference parser agree on the whole DOM
    (structural hash covers labels, attributes, text, and shape)."""
    old = reference_parse(text)
    new = parse(text)
    assert old.root.structural_hash() == new.root.structural_hash()
    assert old.doctype_name == new.doctype_name


WELL_FORMED = [
    "<a/>",
    "<a></a>",
    "<a>text</a>",
    "<a x='1' y=\"2\"><b/>tail</a>",
    "<a><!-- comment --><b>x</b><?pi data?></a>",
    "<a><![CDATA[<raw>&amp;]]></a>",
    "<a>one<!-- split -->two</a>",
    "<a>&lt;&amp;&gt;&#65;&#x42;</a>",
    "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>",
    "<?xml version='1.0'?>\n<a>\n  <b>x</b>\n</a>\n<!-- tail -->",
    "<a>\n\n  spaced\n</a>",
    "<!----><a/>",
    "<a><!-----></a>",  # comment body "-": lazy-match termination
    "<ns:a ns:x='1'><ns:b/></ns:a>",
]

MALFORMED = [
    "",
    "   ",
    "<",
    "<a",
    "<a x>",
    "<a x=>",
    "<a x='1' x='2'>",
    "<a><b></a></b>",
    "<a></b>",
    "<a>",
    "<a><b>",
    "</a>",
    "<a>unclosed",
    "<a><!-- never closed </a>",
    "<a><![CDATA[never closed</a>",
    "<a><?never closed</a>",
    "<a>]]></a>",
    "<a>&amp</a>",
    "<a>&nbsp;</a>",
    "<a>&#xZZ;</a>",
    "<a x='&amp'/>",
    "<a/><b/>",
    "<a/>trailing",
    "<9bad/>",
    "<a><9bad/></a>",
    "<a>&amp &lt;</a>",
    "<a -->",
    truncated_document(),
    garbage_tail_document(),
]


class TestFixedCorpora:
    @pytest.mark.parametrize("text", WELL_FORMED)
    def test_well_formed(self, text):
        assert_same_stream(text)

    @pytest.mark.parametrize("text", MALFORMED)
    def test_malformed_same_error(self, text):
        assert_same_stream(text)

    @pytest.mark.parametrize("text", WELL_FORMED)
    def test_parsers_agree_structurally(self, text):
        assert_same_tree(text)


class TestWorkloadCorpora:
    def test_purchase_orders(self):
        for items in (0, 1, 7, 40):
            document = make_purchase_order(items)
            for indent in ("", "  "):
                text = serialize(document, indent=indent)
                assert_same_stream(text)
                assert_same_tree(text)

    def test_adversarial_shapes_in_budget(self):
        # Small instances of the adversarial shapes: both tokenizers
        # must walk them identically (guard-tripping sizes are covered
        # by the guards tests; token equivalence needs the shape, not
        # the scale).
        for text in (
            deep_document(60),
            wide_document(200),
            entity_bomb(50),
        ):
            assert_same_stream(text)

    def test_generated_documents(self):
        streams_checked = 0
        for seed in range(12):
            try:
                schema = random_schema(random.Random(seed))
            except Exception:
                continue  # rare unproductive draw, documented by the API
            document = sample_document(random.Random(seed * 7 + 1), schema)
            if document is None:
                continue
            for indent in ("", " "):
                text = serialize(document, indent=indent)
                assert_same_stream(text)
                assert_same_tree(text)
                streams_checked += 1
        assert streams_checked >= 10  # the corpus actually exercised us

    def test_random_text_mutations_fail_identically(self):
        # Chop and splice well-formed documents at random: most results
        # are malformed in interesting ways; both lexers must agree on
        # every single one (verdict, message, and position).
        rng = random.Random(99)
        base = serialize(make_purchase_order(3), indent=" ")
        for _ in range(200):
            cut = rng.randrange(len(base))
            mutated = base[:cut] + rng.choice(
                ["", "<", ">", "&", "]]>", "<!--", "<x", "</x>", "'"]
            ) + base[cut + rng.randrange(3):]
            assert_same_stream(mutated)
