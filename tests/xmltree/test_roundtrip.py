"""Property-based round-trip tests: random trees survive
serialize → parse, and parsing is deterministic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.xmltree.dom import Element, Text
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

labels = st.sampled_from(["a", "b", "item", "shipTo", "x-y", "ns:tag"])
# Text that survives the whitespace-dropping default: never all-blank.
texts = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Po", "Sm"),
        whitelist_characters=" <>&\"'",
    ),
    min_size=1,
    max_size=20,
).filter(lambda value: value.strip() != "")
attr_names = st.sampled_from(["x", "y", "data-k", "id"])
attr_values = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters=" <&\"'",
    ),
    max_size=12,
)


@st.composite
def random_trees(draw, depth=3):
    label = draw(labels)
    attrs = draw(
        st.dictionaries(attr_names, attr_values, max_size=2)
    )
    node = Element(label, attrs)
    if depth > 0:
        children = draw(
            st.lists(
                st.one_of(
                    texts.map(Text),
                    random_trees(depth=depth - 1),
                ),
                max_size=3,
            )
        )
        for child in children:
            # Adjacent text nodes merge on reparse (XML has no notion of
            # text-node boundaries), so never generate them adjacent.
            if (
                isinstance(child, Text)
                and node.children
                and isinstance(node.children[-1], Text)
            ):
                continue
            node.append(child)
    return node


@given(random_trees())
def test_compact_serialize_parse_roundtrip(tree):
    again = parse(serialize(tree)).root
    assert tree.structurally_equal(again)
    assert _attributes_everywhere(tree) == _attributes_everywhere(again)


@given(random_trees())
def test_serialization_is_deterministic(tree):
    assert serialize(tree) == serialize(tree)


@given(random_trees())
def test_double_roundtrip_is_fixpoint(tree):
    once = serialize(parse(serialize(tree)).root)
    twice = serialize(parse(once).root)
    assert once == twice


def _attributes_everywhere(tree):
    collected = []
    for node in tree.iter():
        collected.append((node.dewey().path, tuple(node.attributes.items())))
    return collected
