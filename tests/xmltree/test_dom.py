"""Tests for the ordered labelled tree (DOM)."""

import pytest

from repro.dewey import Dewey
from repro.xmltree.dom import CHI, Document, Element, Text, element


class TestConstruction:
    def test_element_builder_with_strings(self):
        node = element("item", element("qty", "5"), "tail")
        assert node.label == "item"
        assert node.children[0].label == "qty"
        assert isinstance(node.children[1], Text)

    def test_text_label_is_chi(self):
        assert Text("x").label == CHI

    def test_append_sets_parent_and_index(self):
        parent = Element("p")
        first = parent.append(Element("a"))
        second = parent.append(Element("b"))
        assert (first.parent, first.index) == (parent, 0)
        assert (second.parent, second.index) == (parent, 1)

    def test_append_attached_node_rejected(self):
        parent = Element("p")
        child = parent.append(Element("a"))
        with pytest.raises(ValueError):
            Element("q").append(child)

    def test_insert_shifts_indices(self):
        parent = element("p", element("a"), element("c"))
        parent.insert(1, Element("b"))
        assert [c.label for c in parent.children] == ["a", "b", "c"]
        assert [c.index for c in parent.children] == [0, 1, 2]

    def test_insert_out_of_range(self):
        with pytest.raises(IndexError):
            Element("p").insert(1, Element("a"))

    def test_remove_detaches_and_renumbers(self):
        parent = element("p", element("a"), element("b"), element("c"))
        middle = parent.children[1]
        parent.remove(middle)
        assert middle.parent is None
        assert middle.index == -1
        assert [c.index for c in parent.children] == [0, 1]

    def test_remove_non_child_rejected(self):
        with pytest.raises(ValueError):
            Element("p").remove(Element("a"))


class TestNavigation:
    def setup_method(self):
        self.tree = element(
            "po",
            element("shipTo", element("name", "A")),
            element("items", element("item"), element("item")),
        )

    def test_child_elements_and_labels(self):
        assert [e.label for e in self.tree.child_elements()] == [
            "shipTo",
            "items",
        ]
        assert self.tree.child_labels() == ["shipTo", "items"]

    def test_child_labels_exclude_text(self):
        node = element("a", "text", element("b"))
        assert node.child_labels() == ["b"]

    def test_find_and_find_all(self):
        items = self.tree.find("items")
        assert items is not None
        assert len(items.find_all("item")) == 2
        assert self.tree.find("missing") is None

    def test_text_concatenation(self):
        node = element("a", "x", element("b"), "y")
        assert node.text() == "xy"

    def test_iter_preorder(self):
        labels = [e.label for e in self.tree.iter()]
        assert labels == ["po", "shipTo", "name", "items", "item", "item"]

    def test_iter_nodes_includes_text(self):
        assert self.tree.size() == 7  # 6 elements + 1 text

    def test_dewey_numbers(self):
        name = self.tree.find("shipTo").find("name")
        assert name.dewey() == Dewey((0, 0))
        assert self.tree.dewey() == Dewey(())

    def test_node_at_inverts_dewey(self):
        for node in self.tree.iter_nodes():
            assert self.tree.node_at(node.dewey()) is node

    def test_node_at_missing_path(self):
        with pytest.raises(KeyError):
            self.tree.node_at(Dewey((9, 9)))

    def test_root_and_depth(self):
        name = self.tree.find("shipTo").find("name")
        assert name.root() is self.tree
        assert name.depth() == 2


class TestCopyAndEquality:
    def test_copy_is_deep_and_detached(self):
        original = element("a", element("b", "t"), attrs={"k": "v"})
        clone = original.copy()
        assert clone is not original
        assert clone.structurally_equal(original)
        assert clone.attributes == {"k": "v"}
        clone.children[0].children[0].value = "changed"
        assert original.children[0].text() == "t"

    def test_structural_equality_ignores_attributes(self):
        left = element("a", attrs={"x": "1"})
        right = element("a", attrs={"x": "2"})
        assert left.structurally_equal(right)

    def test_structural_inequality_on_labels(self):
        assert not element("a").structurally_equal(element("b"))

    def test_structural_inequality_on_text(self):
        assert not element("a", "x").structurally_equal(element("a", "y"))

    def test_structural_inequality_on_shape(self):
        assert not element("a", element("b")).structurally_equal(
            element("a", "b")
        )


class TestDocument:
    def test_label_index(self):
        doc = Document(
            element("po", element("item"), element("x", element("item")))
        )
        assert len(doc.elements_with_label("item")) == 2
        assert doc.elements_with_label("missing") == []

    def test_label_index_in_document_order(self):
        doc = Document(
            element("r", element("a", element("b")), element("b"))
        )
        deweys = [e.dewey().path for e in doc.elements_with_label("b")]
        assert deweys == [(0, 0), (1,)]

    def test_labels_set(self):
        doc = Document(element("a", element("b"), element("b")))
        assert doc.labels() == {"a", "b"}

    def test_invalidate_index_after_mutation(self):
        doc = Document(element("a"))
        assert doc.elements_with_label("b") == []
        doc.root.append(Element("b"))
        doc.invalidate_index()
        assert len(doc.elements_with_label("b")) == 1

    def test_document_copy(self):
        doc = Document(element("a", element("b")), "a", "<!ELEMENT a (b)>")
        clone = doc.copy()
        assert clone.root.structurally_equal(doc.root)
        assert clone.doctype_name == "a"
        assert clone.internal_subset == "<!ELEMENT a (b)>"
