"""Tests for the XML scanner primitives."""

import pytest

from repro.errors import UnterminatedEntityError, XMLSyntaxError
from repro.xmltree.lexer import MASTER_RE, Scanner, is_name
from repro.xmltree.reference import ReferenceScanner


class TestIsName:
    def test_accepts_plain_names(self):
        assert is_name("purchaseOrder")
        assert is_name("_private")
        assert is_name("xsd:element")
        assert is_name("a-b.c_d")

    def test_rejects_bad_names(self):
        assert not is_name("")
        assert not is_name("9lives")
        assert not is_name("-leading")
        assert not is_name("sp ace")


class TestScannerBasics:
    def test_peek_and_advance(self):
        scanner = Scanner("abc")
        assert scanner.peek() == "a"
        assert scanner.peek(2) == "c"
        assert scanner.peek(3) == ""
        scanner.advance(2)
        assert scanner.peek() == "c"

    def test_expect_success_and_failure(self):
        scanner = Scanner("<tag>")
        scanner.expect("<")
        with pytest.raises(XMLSyntaxError):
            scanner.expect(">")

    def test_match_consumes_only_on_success(self):
        scanner = Scanner("abab")
        assert scanner.match("ab")
        assert not scanner.match("ba")
        assert scanner.pos == 2

    def test_skip_whitespace(self):
        scanner = Scanner("  \t\n x")
        assert scanner.skip_whitespace()
        assert scanner.peek() == "x"
        assert not scanner.skip_whitespace()

    def test_read_name(self):
        scanner = Scanner("shipTo>")
        assert scanner.read_name() == "shipTo"
        assert scanner.peek() == ">"

    def test_read_name_error_position(self):
        scanner = Scanner("  9bad")
        scanner.skip_whitespace()
        with pytest.raises(XMLSyntaxError):
            scanner.read_name()

    def test_read_until_consumes_delimiter(self):
        scanner = Scanner("hello-->after")
        assert scanner.read_until("-->", what="comment") == "hello"
        assert scanner.peek() == "a"

    def test_read_until_unterminated(self):
        scanner = Scanner("never ends")
        with pytest.raises(XMLSyntaxError, match="unterminated"):
            scanner.read_until("-->", what="comment")

    def test_read_quoted_both_quote_kinds(self):
        assert Scanner('"abc"').read_quoted() == "abc"
        assert Scanner("'x y'").read_quoted() == "x y"

    def test_read_quoted_requires_quote(self):
        with pytest.raises(XMLSyntaxError):
            Scanner("abc").read_quoted()


class TestLineColumn:
    def test_first_line(self):
        scanner = Scanner("abc\ndef")
        assert scanner.line_column(0) == (1, 1)
        assert scanner.line_column(2) == (1, 3)

    def test_after_newlines(self):
        scanner = Scanner("ab\ncd\nef")
        assert scanner.line_column(3) == (2, 1)
        assert scanner.line_column(7) == (3, 2)

    def test_error_carries_position(self):
        scanner = Scanner("ab\ncd")
        scanner.pos = 4
        error = scanner.error("boom")
        assert error.line == 2
        assert error.column == 2

    def test_newline_index_matches_reference_scanner(self):
        # The bulk scanner answers line_column from a once-built newline
        # index; the reference scanner recomputes with count/rfind per
        # call.  They must agree at every position of a gnarly corpus,
        # including positions on, before, and after each newline.
        corpus = "ab\ncd\n\n<e f='g'>\nhi\n</e>\n\n\nx\n"
        fast = Scanner(corpus)
        slow = ReferenceScanner(corpus)
        for pos in range(len(corpus) + 1):
            assert fast.line_column(pos) == slow.line_column(pos), pos

    def test_newline_index_no_newlines(self):
        corpus = "single line only"
        fast = Scanner(corpus)
        slow = ReferenceScanner(corpus)
        for pos in range(len(corpus) + 1):
            assert fast.line_column(pos) == slow.line_column(pos)


class TestMasterRegex:
    def test_every_arm_is_dispatchable(self):
        # Each alternation arm must resolve to a token kind through its
        # last-closing group; an arm whose groups all fail to participate
        # would make lastindex dispatch silently wrong.
        samples = {
            "text run": "text",
            "<a>": "start",
            "<a b='c' d=\"e\"/>": "start",
            "</a>": "end",
            "<!-- c -->": "comment",
            "<![CDATA[x]]>": "cdata",
            "<?pi data?>": "pi",
        }
        for sample in samples:
            m = MASTER_RE.match(sample)
            assert m is not None, sample
            assert m.end() == len(sample), sample
            assert m.lastindex is not None, sample


class TestEntityDecoding:
    def test_predefined_entities(self):
        scanner = Scanner("")
        raw = "a &lt; b &gt; c &amp; d &quot; e &apos;"
        assert scanner.decode_entities(raw, 0) == "a < b > c & d \" e '"

    def test_numeric_decimal(self):
        assert Scanner("").decode_entities("&#65;&#66;", 0) == "AB"

    def test_numeric_hex(self):
        assert Scanner("").decode_entities("&#x41;&#X42;", 0) == "AB"

    def test_no_entities_fast_path(self):
        text = "plain text"
        assert Scanner("").decode_entities(text, 0) is text

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            Scanner("").decode_entities("&nbsp;", 0)

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unterminated entity"):
            Scanner("").decode_entities("a &amp b", 0)

    def test_unterminated_entity_is_typed_with_position(self):
        # The hardened rule: an '&' with no ';' before the next '&' or
        # the end of the run is a typed error anchored at the '&'.
        scanner = Scanner("xx\nyy a &amp b")
        with pytest.raises(UnterminatedEntityError) as info:
            scanner.decode_entities("a &amp b", 6)
        assert info.value.line == 2
        assert info.value.column == 6  # the '&' itself, not the run start

    def test_unterminated_entity_at_end_of_run(self):
        with pytest.raises(UnterminatedEntityError):
            Scanner("").decode_entities("tail&", 0)

    def test_entity_followed_by_second_ampersand(self):
        # '&amp &lt;': the first reference never closes before the next
        # '&', so it must not borrow the second reference's semicolon.
        with pytest.raises(UnterminatedEntityError):
            Scanner("").decode_entities("&amp &lt;", 0)

    def test_bad_character_reference(self):
        with pytest.raises(XMLSyntaxError, match="bad character reference"):
            Scanner("").decode_entities("&#xZZ;", 0)

    def test_huge_character_reference(self):
        with pytest.raises(XMLSyntaxError, match="bad character reference"):
            Scanner("").decode_entities("&#99999999999;", 0)
