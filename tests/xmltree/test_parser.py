"""Tests for the XML document parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.dom import Element, Text
from repro.xmltree.parser import parse, parse_fragment


class TestBasicDocuments:
    def test_single_empty_element(self):
        doc = parse("<a/>")
        assert doc.root.label == "a"
        assert doc.root.children == []

    def test_open_close_pair(self):
        doc = parse("<a></a>")
        assert doc.root.label == "a"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b><d/></a>")
        assert [c.label for c in doc.root.children] == ["b", "d"]
        assert doc.root.children[0].children[0].label == "c"

    def test_text_content(self):
        doc = parse("<a>hello world</a>")
        (text,) = doc.root.children
        assert isinstance(text, Text)
        assert text.value == "hello world"

    def test_mixed_content_preserved(self):
        doc = parse("<a>x<b/>y</a>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_whitespace_only_text_dropped_by_default(self):
        doc = parse("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.label for c in doc.root.children] == ["b", "c"]

    def test_whitespace_kept_on_request(self):
        doc = parse("<a>\n  <b/>\n</a>", keep_whitespace=True)
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_xml_declaration_and_prolog_comment(self):
        doc = parse('<?xml version="1.0"?><!-- hi --><a/>')
        assert doc.root.label == "a"

    def test_trailing_comment_and_pi_allowed(self):
        doc = parse("<a/><!-- done --><?pi data?>")
        assert doc.root.label == "a"


class TestAttributes:
    def test_attributes_parsed_in_order(self):
        doc = parse('<a x="1" y="2"/>')
        assert list(doc.root.attributes.items()) == [("x", "1"), ("y", "2")]

    def test_single_quoted_attribute(self):
        assert parse("<a x='v'/>").root.attributes["x"] == "v"

    def test_attribute_entities_decoded(self):
        doc = parse('<a x="1&amp;2&lt;3"/>')
        assert doc.root.attributes["x"] == "1&2<3"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
            parse('<a x="1" x="2"/>')

    def test_attribute_requires_whitespace_separator(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1"y="2"/>')

    def test_whitespace_around_equals(self):
        assert parse('<a x = "1"/>').root.attributes["x"] == "1"


class TestEntitiesAndCData:
    def test_text_entities_decoded(self):
        assert parse("<a>&lt;tag&gt; &amp; more</a>").root.text() == "<tag> & more"

    def test_cdata_taken_verbatim(self):
        doc = parse("<a><![CDATA[<not> &amp; parsed]]></a>")
        assert doc.root.text() == "<not> &amp; parsed"

    def test_cdata_merges_with_text(self):
        doc = parse("<a>x<![CDATA[y]]>z</a>")
        assert doc.root.text() == "xyz"
        assert len(doc.root.children) == 1

    def test_numeric_references(self):
        assert parse("<a>&#65;&#x42;</a>").root.text() == "AB"

    def test_cdata_terminator_in_text_rejected(self):
        with pytest.raises(XMLSyntaxError, match="]]>"):
            parse("<a>bad ]]> text</a>")


class TestDoctype:
    def test_doctype_name_captured(self):
        doc = parse("<!DOCTYPE note SYSTEM 'note.dtd'><note/>")
        assert doc.doctype_name == "note"

    def test_internal_subset_captured_verbatim(self):
        source = "<!DOCTYPE a [<!ELEMENT a (b*)> <!ELEMENT b EMPTY>]><a/>"
        doc = parse(source)
        assert "<!ELEMENT a (b*)>" in doc.internal_subset
        assert "<!ELEMENT b EMPTY>" in doc.internal_subset

    def test_public_identifier(self):
        doc = parse('<!DOCTYPE a PUBLIC "-//X//DTD//EN" "a.dtd"><a/>')
        assert doc.doctype_name == "a"

    def test_subset_with_bracket_in_quotes(self):
        doc = parse("<!DOCTYPE a [<!ENTITY x \"]\">]><a/>")
        assert '"]"' in doc.internal_subset

    def test_unterminated_subset(self):
        with pytest.raises(XMLSyntaxError, match="unterminated DOCTYPE"):
            parse("<!DOCTYPE a [<!ELEMENT a EMPTY>")


class TestErrors:
    def test_mismatched_close_tag(self):
        with pytest.raises(XMLSyntaxError, match="mismatched close tag"):
            parse("<a><b></a></b>")

    def test_unterminated_element(self):
        with pytest.raises(XMLSyntaxError, match="unterminated element"):
            parse("<a><b></b>")

    def test_content_after_root(self):
        with pytest.raises(XMLSyntaxError, match="after the root"):
            parse("<a/><b/>")

    def test_missing_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("   ")

    def test_comment_with_double_dash(self):
        with pytest.raises(XMLSyntaxError, match="--"):
            parse("<a><!-- bad -- comment --></a>")

    def test_error_reports_line_number(self):
        try:
            parse("<a>\n<b>\n</a>")
        except XMLSyntaxError as error:
            assert error.line == 3
        else:
            pytest.fail("expected XMLSyntaxError")


class TestFragment:
    def test_parse_fragment_returns_element(self):
        fragment = parse_fragment("<item><qty>5</qty></item>")
        assert isinstance(fragment, Element)
        assert fragment.find("qty").text() == "5"

    def test_comments_and_pis_inside_content_skipped(self):
        fragment = parse_fragment("<a><!-- c --><?pi d?><b/></a>")
        assert [c.label for c in fragment.children] == ["b"]
