"""Tests for XML serialization."""

from repro.xmltree.dom import Document, element
from repro.xmltree.parser import parse
from repro.xmltree.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    write_file,
)


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_text_preserves_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('a"b<c&d') == "a&quot;b&lt;c&amp;d"


class TestCompactForm:
    def test_empty_element_self_closes(self):
        assert serialize(element("a")) == "<a/>"

    def test_nested(self):
        tree = element("a", element("b", "x"), element("c"))
        assert serialize(tree) == "<a><b>x</b><c/></a>"

    def test_attributes_rendered_in_order(self):
        tree = element("a", attrs={"x": "1", "y": "2"})
        assert serialize(tree) == '<a x="1" y="2"/>'

    def test_document_input(self):
        doc = Document(element("a"))
        assert serialize(doc) == "<a/>"

    def test_xml_declaration(self):
        out = serialize(element("a"), xml_declaration=True)
        assert out.startswith('<?xml version="1.0"')
        assert out.endswith("<a/>")


class TestPrettyForm:
    def test_indented_output(self):
        tree = element("a", element("b"), element("c", element("d")))
        expected = "<a>\n  <b/>\n  <c>\n    <d/>\n  </c>\n</a>\n"
        assert serialize(tree, indent="  ") == expected

    def test_text_content_stays_inline(self):
        tree = element("a", element("b", "keep me"))
        assert "<b>keep me</b>" in serialize(tree, indent="  ")

    def test_mixed_content_stays_inline(self):
        tree = element("a", "x", element("b"), "y")
        assert serialize(tree, indent="  ") == "<a>x<b/>y</a>\n"


class TestRoundTrip:
    def test_compact_roundtrip(self):
        source = '<a x="1&amp;2"><b>text &lt;here&gt;</b><c/></a>'
        doc = parse(source)
        again = parse(serialize(doc))
        assert doc.root.structurally_equal(again.root)
        assert again.root.attributes == doc.root.attributes

    def test_pretty_roundtrip_structure(self):
        doc = parse("<a><b>x</b><c><d/></c></a>")
        again = parse(serialize(doc, indent="  "))
        assert doc.root.structurally_equal(again.root)

    def test_write_file_returns_byte_count(self, tmp_path):
        path = tmp_path / "out.xml"
        tree = element("a", element("b", "x"))
        count = write_file(tree, str(path))
        assert count == path.stat().st_size
        assert parse(path.read_text()).root.structurally_equal(tree)
