"""Parser/lexer/event-stream resource guards against the adversarial corpus."""

import pytest

from repro.errors import (
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
    EntityExpansionError,
    ResourceLimitError,
    XMLSyntaxError,
)
from repro.guards import Limits, limits_scope
from repro.workloads.adversarial import (
    deep_document,
    entity_bomb,
    garbage_tail_document,
    oversized_document,
    truncated_document,
    wide_document,
)
from repro.xmltree.events import iterparse
from repro.xmltree.parser import parse, parse_file

TIGHT = Limits(
    max_document_bytes=10_000,
    max_tree_depth=50,
    max_entity_expansions=100,
)


class TestDepthGuard:
    def test_parse_rejects_deep_nesting(self):
        with pytest.raises(DocumentTooDeepError, match="max_tree_depth"):
            parse(deep_document(51), limits=TIGHT)

    def test_parse_allows_exact_bound(self):
        document = parse(deep_document(50), limits=TIGHT)
        assert document.root.label == "a"

    def test_iterparse_rejects_deep_nesting(self):
        with pytest.raises(DocumentTooDeepError):
            for _ in iterparse(deep_document(51), limits=TIGHT):
                pass

    def test_default_limit_beats_recursion_error(self):
        # Past the default bound but below the stack-death depth: the
        # guard must fire, not the interpreter.
        with pytest.raises(DocumentTooDeepError):
            parse(deep_document(250))

    def test_very_deep_document_never_reaches_the_stack(self):
        with pytest.raises(DocumentTooDeepError):
            parse(deep_document(100_000), limits=Limits(max_document_bytes=None))


class TestSizeGuard:
    def test_parse_rejects_oversized_text(self):
        with pytest.raises(DocumentTooLargeError, match="max_document_bytes"):
            parse(oversized_document(20_000), limits=TIGHT)

    def test_parse_file_checks_size_before_reading(self, tmp_path):
        path = tmp_path / "big.xml"
        path.write_text(oversized_document(20_000), encoding="utf-8")
        with pytest.raises(DocumentTooLargeError, match="big.xml"):
            parse_file(str(path), limits=TIGHT)

    def test_iterparse_rejects_oversized_text(self):
        with pytest.raises(DocumentTooLargeError):
            for _ in iterparse(oversized_document(20_000), limits=TIGHT):
                pass


class TestEntityGuard:
    def test_entity_bomb_rejected(self):
        with pytest.raises(EntityExpansionError, match="entity expansions"):
            parse(entity_bomb(101), limits=TIGHT)

    def test_under_the_bound_is_fine(self):
        document = parse(entity_bomb(100), limits=TIGHT)
        assert document.root.text() == "&" * 100

    def test_character_references_count(self):
        text = "<a>" + "&#x41;" * 101 + "</a>"
        with pytest.raises(EntityExpansionError):
            parse(text, limits=TIGHT)


class TestDeadlineGuard:
    def test_parse_deadline(self):
        limits = Limits(deadline_seconds=1e-9)
        with pytest.raises(DeadlineExceededError, match="deadline"):
            parse(wide_document(2000), limits=limits)

    def test_iterparse_deadline(self):
        limits = Limits(deadline_seconds=1e-9)
        with pytest.raises(DeadlineExceededError):
            for _ in iterparse(wide_document(2000), limits=limits):
                pass

    def test_no_deadline_by_default(self):
        document = parse(wide_document(2000))
        assert len(document.root.children) == 2000


class TestAmbientIntegration:
    def test_parse_uses_ambient_limits(self):
        with limits_scope(TIGHT):
            with pytest.raises(DocumentTooDeepError):
                parse(deep_document(51))

    def test_explicit_limits_override_ambient(self):
        with limits_scope(TIGHT):
            document = parse(
                deep_document(51), limits=Limits(max_tree_depth=60)
            )
            assert document.root.label == "a"


class TestMalformedInputsStayTyped:
    @pytest.mark.parametrize(
        "text", [truncated_document(), garbage_tail_document()]
    )
    def test_malformed_raises_syntax_not_limit(self, text):
        with pytest.raises(XMLSyntaxError):
            parse(text, limits=TIGHT)

    def test_limit_errors_are_not_syntax_errors(self):
        # The batch driver and CLI distinguish the two branches.
        with pytest.raises(ResourceLimitError):
            parse(deep_document(51), limits=TIGHT)
        assert not issubclass(ResourceLimitError, XMLSyntaxError)
