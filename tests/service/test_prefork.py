"""End-to-end multi-process ``repro serve --processes N`` tests.

The fleet-wide invariants from the single-process suite, re-proven
across children: every admitted request is answered, SIGTERM drains all
processes with zero losses, and admin mutations on one child propagate
to the others through the reload journal.
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.faultinject import http_json
from tests.service.test_cli_serve import REPO_ROOT, serve_env

DRAIN_LINE = re.compile(
    r"drained: admitted=(\d+) completed=(\d+) lost=(\d+) processes=(\d+)"
)


def po_xml(items: int = 3, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs))


@pytest.fixture()
def prefork_served():
    """``repro serve --demo --processes 2``; yields ``(proc, host, port)``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--demo", "--port", "0", "--processes", "2",
            "--drain-grace", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
        cwd=REPO_ROOT,
    )
    try:
        boot_line = proc.stdout.readline().strip()
        assert boot_line.startswith("listening on http://"), boot_line
        address = boot_line.rsplit("/", 1)[-1]
        host, _, port_text = address.partition(":")
        ready_line = proc.stdout.readline().strip()
        assert ready_line.startswith("ready: "), ready_line
        assert "across 2 processes" in ready_line, ready_line
        yield proc, host, int(port_text)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def parse_drain_line(proc) -> tuple:
    stdout, stderr = proc.communicate(timeout=30)
    match = DRAIN_LINE.search(stdout)
    assert match, (stdout, stderr)
    admitted, completed, lost, processes = map(int, match.groups())
    return admitted, completed, lost, processes


class TestPreforkServe:
    def test_concurrent_requests_and_clean_drain(self, prefork_served):
        proc, host, port = prefork_served
        xml = po_xml()
        results: list = []
        lock = threading.Lock()

        def client(count: int) -> None:
            for _ in range(count):
                result = http_json(
                    host, port, "POST", "/validate",
                    {"pair": "po-exp1", "xml": xml, "schema": "source"},
                    timeout=30.0,
                )
                with lock:
                    results.append(result)

        threads = [
            threading.Thread(target=client, args=(5,), daemon=True)
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(results) == 20
        assert all(status == 200 for status, _, _ in results)
        assert all(payload["valid"] for _, payload, _ in results)

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        admitted, completed, lost, processes = parse_drain_line(proc)
        assert processes == 2
        assert lost == 0
        assert admitted == completed == 20

    def test_sigterm_under_inflight_load_loses_nothing(
        self, prefork_served
    ):
        proc, host, port = prefork_served
        xml = po_xml(200)
        results: list = []
        lock = threading.Lock()

        def client() -> None:
            try:
                result = http_json(
                    host, port, "POST", "/validate",
                    {"pair": "po-exp2", "xml": xml}, timeout=30.0,
                )
            except OSError:
                # Connection refused after the listener stopped: the
                # request was never admitted anywhere, which is fine.
                return
            with lock:
                results.append(result)

        threads = [
            threading.Thread(target=client, daemon=True) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=30.0)
        assert proc.wait(timeout=30) == 0
        admitted, completed, lost, processes = parse_drain_line(proc)
        assert processes == 2
        # THE fleet-wide invariant: accepted-but-unanswered == 0
        # across every child.
        assert lost == 0
        assert admitted == completed
        for status, payload, _ in results:
            if status == 200:
                assert payload["valid"] is True
            else:
                assert status == 503
                assert payload["error"]["code"] == "draining"

    def test_hot_pair_propagates_to_every_child(self, prefork_served):
        proc, host, port = prefork_served
        status, created, _ = http_json(
            host, port, "POST", "/admin/pairs",
            {
                "name": "hot-note",
                "source_text": "<!ELEMENT note (#PCDATA)>",
                "source_kind": "dtd",
                "target_text": "<!ELEMENT note (#PCDATA)>",
                "target_kind": "dtd",
            },
        )
        assert status == 201, created

        # Let every child's journal watcher pick the record up, then
        # hammer enough requests that the kernel spreads them over both
        # listeners: all must know the pair.
        deadline = time.monotonic() + 15.0
        streak = 0
        while streak < 20:
            status, payload, _ = http_json(
                host, port, "POST", "/validate",
                {"pair": "hot-note", "xml": "<note>x</note>",
                 "schema": "source"},
            )
            if status == 200:
                assert payload["valid"] is True
                streak += 1
            else:
                assert status == 404, payload
                streak = 0
                assert time.monotonic() < deadline, (
                    "hot pair never reached every child"
                )
                time.sleep(0.1)

        status, retired, _ = http_json(
            host, port, "DELETE", "/admin/pairs/hot-note"
        )
        assert status == 200, retired

        # Retirement propagates the same way: eventually every child
        # answers 404 and no child resurrects the pair.
        deadline = time.monotonic() + 15.0
        streak = 0
        while streak < 20:
            status, payload, _ = http_json(
                host, port, "POST", "/validate",
                {"pair": "hot-note", "xml": "<note>x</note>",
                 "schema": "source"},
            )
            if status == 404:
                streak += 1
            else:
                assert status == 200, payload
                streak = 0
                assert time.monotonic() < deadline, (
                    "retirement never reached every child"
                )
                time.sleep(0.1)

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        _, _, lost, processes = parse_drain_line(proc)
        assert lost == 0 and processes == 2
