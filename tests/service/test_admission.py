"""Unit tests for the admission controller (no HTTP involved)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.errors import (
    DrainingError,
    OverloadedError,
    RateLimitedError,
)


def held_slots(controller: AdmissionController, count: int):
    """Occupy ``count`` slots from background threads; returns
    ``(release_event, acquired_barrier)``."""
    release = threading.Event()
    acquired = threading.Barrier(count + 1)

    def hold() -> None:
        with controller.slot():
            acquired.wait(timeout=5.0)
            release.wait(timeout=10.0)

    for _ in range(count):
        threading.Thread(target=hold, daemon=True).start()
    acquired.wait(timeout=5.0)
    return release


class TestAdmission:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(max_concurrent=3, max_queue=0)
        release = held_slots(controller, 3)
        assert controller.inflight == 3
        assert controller.stats.peak_inflight == 3
        release.set()
        assert controller.await_idle(timeout=5.0)
        assert controller.stats.completed == 3

    def test_sheds_when_queue_full(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        release = held_slots(controller, 1)
        with pytest.raises(OverloadedError) as info:
            controller.acquire()
        assert info.value.code == "overloaded"
        assert info.value.retry_after > 0
        assert controller.stats.shed_queue_full == 1
        release.set()

    def test_sheds_when_queue_outwaits_budget(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout=0.1
        )
        release = held_slots(controller, 1)
        started = time.monotonic()
        with pytest.raises(OverloadedError):
            controller.acquire()
        assert time.monotonic() - started < 5.0
        assert controller.stats.shed_queue_timeout == 1
        release.set()

    def test_queued_request_gets_freed_slot(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout=5.0
        )
        release = held_slots(controller, 1)
        admitted = threading.Event()

        def waiter() -> None:
            with controller.slot():
                admitted.set()

        threading.Thread(target=waiter, daemon=True).start()
        time.sleep(0.05)
        assert not admitted.is_set()
        release.set()
        assert admitted.wait(timeout=5.0)
        assert controller.stats.queued == 1
        assert controller.stats.shed == 0

    def test_drain_refuses_new_work(self):
        controller = AdmissionController(max_concurrent=2)
        controller.start_drain()
        with pytest.raises(DrainingError) as info:
            controller.acquire()
        assert info.value.code == "draining"
        assert controller.stats.shed_draining == 1

    def test_drain_wakes_queued_waiters(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout=30.0
        )
        release = held_slots(controller, 1)
        outcome: list = []

        def waiter() -> None:
            try:
                controller.acquire()
            except DrainingError as error:
                outcome.append(error)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        controller.start_drain()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "waiter did not wake on drain"
        assert len(outcome) == 1
        release.set()

    def test_await_idle_times_out_while_busy(self):
        controller = AdmissionController(max_concurrent=1)
        release = held_slots(controller, 1)
        assert controller.await_idle(timeout=0.05) is False
        release.set()
        assert controller.await_idle(timeout=5.0) is True

    def test_release_without_acquire_is_an_error(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            controller.release()

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout=0)


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        now = 100.0
        assert all(bucket.allow("c", now) for _ in range(3))
        assert bucket.allow("c", now) is False

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.allow("c", 100.0)
        assert bucket.allow("c", 100.0) is False
        assert bucket.allow("c", 100.2) is True

    def test_clients_are_independent(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.allow("a", 100.0)
        assert bucket.allow("a", 100.0) is False
        assert bucket.allow("b", 100.0) is True

    def test_full_buckets_are_pruned(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        bucket.MAX_CLIENTS = 4
        for index in range(5):
            assert bucket.allow(f"client-{index}", 100.0 + index * 10)
        assert len(bucket._buckets) <= 5

    def test_controller_rate_limits_per_client(self):
        controller = AdmissionController(
            max_concurrent=8, rate=1.0, burst=2
        )
        with controller.slot("1.2.3.4"):
            pass
        with controller.slot("1.2.3.4"):
            pass
        with pytest.raises(RateLimitedError) as info:
            controller.acquire("1.2.3.4")
        assert info.value.code == "rate-limited"
        assert controller.stats.rate_limited == 1
        # Other clients are unaffected.
        with controller.slot("5.6.7.8"):
            pass
