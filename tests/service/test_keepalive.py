"""Wire-level keep-alive and pipelining tests.

These assert the persistent-connection contract on raw sockets: reuse
across requests, in-order pipelined answers, and — critically — that
every path which may leave unread body bytes on the wire (shed before
body read, truncated body) closes the connection instead of letting the
next request line be parsed out of stale body bytes.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.server import ServiceConfig
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.faultinject import KeepAliveClient
from tests.service.conftest import boot


def po_xml(items: int = 3, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs))


def validate_payload() -> dict:
    return {"pair": "po-exp1", "xml": po_xml(), "schema": "source"}


class TestKeepAlive:
    def test_two_requests_reuse_one_connection(self, demo_service):
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            for _ in range(2):
                client.send("POST", "/validate", validate_payload())
                status, payload, headers = client.read_response()
                assert status == 200
                assert payload["valid"] is True
                assert headers.get("connection") != "close"

    def test_get_and_post_interleave_on_one_connection(self, demo_service):
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            client.send("GET", "/healthz")
            status, payload, headers = client.read_response()
            assert status == 200 and payload["ready"] is True
            assert headers.get("connection") != "close"
            client.send("POST", "/validate", validate_payload())
            status, payload, _ = client.read_response()
            assert status == 200 and payload["valid"] is True

    def test_pipelined_pair_answered_in_order(self, demo_service):
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            # Both requests hit the wire before any response is read;
            # distinct documents prove answer order matches send order.
            one = {"pair": "po-exp1", "xml": po_xml(1), "schema": "source"}
            two = {"pair": "po-exp1", "xml": "<not-po/>", "schema": "source"}
            client.send_raw(
                client.encode("POST", "/validate", one)
                + client.encode("POST", "/validate", two)
            )
            status, payload, _ = client.read_response()
            assert status == 200 and payload["valid"] is True
            status, payload, _ = client.read_response()
            assert status == 200 and payload["valid"] is False

    def test_client_connection_close_is_honored(self, demo_service):
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            client.send(
                "POST", "/validate", validate_payload(),
                headers={"Connection": "close"},
            )
            status, _, headers = client.read_response()
            assert status == 200
            assert headers.get("connection") == "close"
            assert client.server_closed()

    def test_request_cap_closes_connection(self):
        handle = boot(ServiceConfig(max_requests_per_connection=2))
        try:
            with KeepAliveClient(handle.host, handle.port) as client:
                client.send("GET", "/healthz")
                _, _, headers = client.read_response()
                assert headers.get("connection") != "close"
                client.send("GET", "/healthz")
                _, _, headers = client.read_response()
                assert headers.get("connection") == "close"
                assert client.server_closed()
        finally:
            handle.service.close()

    def test_keep_alive_disabled_closes_every_response(self):
        handle = boot(ServiceConfig(keep_alive=False))
        try:
            with KeepAliveClient(handle.host, handle.port) as client:
                client.send("GET", "/healthz")
                status, _, headers = client.read_response()
                assert status == 200
                assert headers.get("connection") == "close"
                assert client.server_closed()
        finally:
            handle.service.close()

    def test_mid_pipeline_shed_gets_503_and_close(self):
        # One slot, no queue: while a slow request holds the slot, a
        # pipelined burst on a second connection sheds.  The shed
        # happens *before* the body read, so the server cannot know
        # where the rejected request's body ends — it must close.
        release = threading.Event()
        entered = threading.Event()

        def hold_slot(route):
            entered.set()
            release.wait(15.0)

        handle = boot(
            ServiceConfig(max_concurrent=1, max_queue=0),
            after_admit_hook=hold_slot,
        )
        try:
            blocker = KeepAliveClient(handle.host, handle.port)
            blocker.send("POST", "/validate", validate_payload())
            assert entered.wait(10.0)
            with KeepAliveClient(handle.host, handle.port) as client:
                client.send_raw(
                    client.encode("POST", "/validate", validate_payload())
                    + client.encode("GET", "/healthz")
                )
                status, payload, headers = client.read_response()
                assert status == 503
                assert payload["error"]["code"] == "overloaded"
                assert headers.get("connection") == "close"
                # The pipelined follow-up is never answered: the server
                # closed rather than misparse the unread body bytes.
                assert client.server_closed()
            release.set()
            status, payload, _ = blocker.read_response()
            assert status == 200 and payload["valid"] is True
            blocker.close()
        finally:
            release.set()
            handle.service.close()

    def test_truncated_body_400_closes_connection(self, demo_service):
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            head = (
                "POST /validate HTTP/1.1\r\n"
                "Host: service\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: 500\r\n"
                "\r\n"
            ).encode("ascii")
            client.send_raw(head + b'{"pair": "po-exp1"')
            import socket

            client.sock.shutdown(socket.SHUT_WR)
            status, payload, headers = client.read_response()
            assert status == 400
            assert payload["error"]["code"] == "truncated-body"
            assert headers.get("connection") == "close"
            assert client.server_closed()

    def test_healthz_after_validation_errors_keeps_connection(
        self, demo_service
    ):
        # Typed validation errors (body fully read) must NOT cost the
        # connection — only unread-body paths do.
        with KeepAliveClient(demo_service.host, demo_service.port) as client:
            client.send(
                "POST", "/validate",
                {"pair": "no-such-pair", "xml": "<x/>", "schema": "source"},
            )
            status, payload, headers = client.read_response()
            assert status == 404
            assert payload["error"]["code"] == "unknown-pair"
            assert headers.get("connection") != "close"
            client.send("GET", "/healthz")
            status, _, _ = client.read_response()
            assert status == 200
