"""Evolution-chain endpoints: ``POST /cast-chain`` and parametric
update programs over the wire — typed statuses, never bare 500s."""

import pytest

from repro.service.registry import (
    PairSpec,
    ServiceRegistry,
    demo_chain_spec,
    demo_specs,
)
from repro.service.server import ValidationService
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment1,
)
from repro.xmltree.serializer import serialize

from tests.service.conftest import ServiceHandle


def po_xml(items: int = 3, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs))


@pytest.fixture(scope="module")
def chain_service():
    # po-id revalidates against the *same* schema, so deleting the
    # optional shipDate is statically always-safe — the wire-visible
    # zero-traversal verdict.
    identity = PairSpec(
        "po-id", source_schema_experiment1(), source_schema_experiment1()
    )
    registry = ServiceRegistry(
        [*demo_specs(), identity, demo_chain_spec()]
    )
    service = ValidationService(registry)
    host, port = service.start()
    assert service.wait_ready(60.0), service.warm_error
    handle = ServiceHandle(service, host, port)
    yield handle
    service.close()


class TestCastChain:
    def test_pairs_lists_chain_length(self, chain_service):
        status, payload, _ = chain_service.get("/pairs")
        assert status == 200
        by_name = {p["name"]: p for p in payload["pairs"]}
        assert by_name["po-chain"]["chain_length"] == 3
        assert "chain_length" not in by_name["po-exp1"]

    def test_valid_document(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-chain", {"pair": "po-chain", "xml": po_xml()}
        )
        assert status == 200
        assert payload["valid"] is True
        assert payload["chain_length"] == 3

    def test_invalid_document_reports_hop_diagnostics(self, chain_service):
        # billTo missing: legal at revision 0, required by the last hop.
        status, payload, _ = chain_service.post(
            "/cast-chain",
            {"pair": "po-chain", "xml": po_xml(with_billto=False)},
        )
        assert status == 200
        assert payload["valid"] is False
        assert payload["diagnostics"]

    def test_chain_mismatch_on_plain_pair(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-chain", {"pair": "po-exp1", "xml": po_xml()}
        )
        assert status == 400
        assert payload["error"]["code"] == "chain-mismatch"

    def test_plain_cast_works_on_chain_pair(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast", {"pair": "po-chain", "xml": po_xml()}
        )
        assert status == 200
        assert payload["valid"] is True


class TestProgramOverWire:
    def test_classification_in_payload(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-with-mods",
            {
                "pair": "po-id",
                "xml": po_xml(),
                "program": [{"op": "delete", "label": "shipDate"}],
            },
        )
        assert status == 200
        assert payload["valid"] is True
        assert payload["classification"] == "always-safe"
        assert payload["mods_applied"] == 1

    def test_require_safe_is_422(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-with-mods",
            {
                "pair": "po-exp2",
                "xml": po_xml(),
                "program": [{"op": "delete", "label": "street"}],
                "require_safe": True,
            },
        )
        assert status == 422
        assert payload["error"]["code"] == "unsafe-update-program"

    def test_mods_and_program_conflict_is_400(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-with-mods",
            {
                "pair": "po-exp2",
                "xml": po_xml(),
                "mods": [{"op": "delete", "path": "1"}],
                "program": [{"op": "delete", "label": "shipDate"}],
            },
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_malformed_program_is_400(self, chain_service):
        status, payload, _ = chain_service.post(
            "/cast-with-mods",
            {
                "pair": "po-exp2",
                "xml": po_xml(),
                "program": [{"op": "explode"}],
            },
        )
        assert status == 400
        assert payload["error"]["code"] != "internal"
