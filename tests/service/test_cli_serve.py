"""End-to-end ``repro serve`` tests: a real subprocess, real signals.

This is the CI smoke contract: boot, probe, validate, SIGTERM, and a
clean exit with zero accepted-but-unanswered requests.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.faultinject import http_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


def serve_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


@pytest.fixture()
def served():
    """``repro serve --demo --port 0`` as a subprocess; yields
    ``(proc, host, port)`` after the ready line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--demo", "--port", "0", "--drain-grace", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=serve_env(),
        cwd=REPO_ROOT,
    )
    try:
        boot_line = proc.stdout.readline().strip()
        assert boot_line.startswith("listening on http://"), boot_line
        address = boot_line.rsplit("/", 1)[-1]
        host, _, port_text = address.partition(":")
        ready_line = proc.stdout.readline().strip()
        assert ready_line.startswith("ready: "), ready_line
        yield proc, host, int(port_text)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


class TestServeCommand:
    def test_boot_validate_sigterm_clean_exit(self, served):
        proc, host, port = served

        status, payload, _ = http_json(host, port, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload, _ = http_json(host, port, "GET", "/readyz")
        assert status == 200 and payload["ready"] is True

        xml = serialize(make_purchase_order(3))
        status, payload, _ = http_json(
            host, port, "POST", "/validate",
            {"pair": "po-exp1", "xml": xml, "schema": "source"},
        )
        assert status == 200
        assert payload["valid"] is True

        # Zero in-flight lost: everything admitted was completed.
        status, payload, _ = http_json(host, port, "GET", "/healthz")
        admission = payload["admission"]
        assert admission["admitted"] == admission["completed"] == 1

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0

    def test_sigterm_during_inflight_request_drains(self, served):
        """SIGTERM racing an in-flight request: the request is answered
        and the exit is still clean."""
        import threading

        proc, host, port = served
        xml = serialize(make_purchase_order(200))
        results: list = []

        def client() -> None:
            results.append(http_json(
                host, port, "POST", "/validate",
                {"pair": "po-exp2", "xml": xml}, timeout=30.0,
            ))

        threads = [
            threading.Thread(target=client, daemon=True)
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=30.0)
        assert proc.wait(timeout=20) == 0
        # Every request the server admitted was answered 200; ones that
        # arrived after drain began were refused with a typed 503.
        for status, payload, _ in results:
            if status == 200:
                assert payload["valid"] is True
            else:
                assert status == 503
                assert payload["error"]["code"] == "draining"

    def test_usage_errors_exit_2(self):
        for argv in (
            ["serve"],  # no pairs at all
            ["serve", "--demo", "--pair", "broken-flag"],
            ["serve", "--demo", "--pair-timeout", "po-exp1=-1"],
            ["serve", "--demo", "--pair-timeout", "ghost=2"],
        ):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True,
                text=True,
                env=serve_env(),
                cwd=REPO_ROOT,
                timeout=60,
            )
            assert proc.returncode == 2, (argv, proc.stderr)
            assert "error:" in proc.stderr
