"""Service-level fault injection: every attack gets a typed answer.

The contract under test (the "no bare 500" guarantee): adversarial
requests — lying headers, truncated bodies, malformed JSON, hostile
documents, bursts, overload — are answered with the *deliberate* status
and stable machine code from ``repro.service.diagnostics``, never a
hang and never an unmapped 500.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.server import ServiceConfig
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.faultinject import (
    ADVERSARIAL_CASES,
    CORPUS_LIMITS,
    post_with_content_length,
    post_without_content_length,
)
from tests.service.conftest import boot


def po_xml(items: int = 3) -> str:
    return serialize(make_purchase_order(items))


class TestRequestEnvelopeFaults:
    def test_oversized_content_length_is_413_before_any_read(
        self, demo_service
    ):
        """A Content-Length beyond the byte bound is rejected from the
        header alone — the server never buffers a byte of the body."""
        status, payload, headers = post_with_content_length(
            demo_service.host,
            demo_service.port,
            "/validate",
            claimed_length=10_000_000_000,
            body=b"",
        )
        assert status == 413
        assert payload["error"]["code"] == "doc-too-large"
        assert headers.get("connection") == "close"

    def test_truncated_body_is_typed_400(self, demo_service):
        status, payload, _ = post_with_content_length(
            demo_service.host,
            demo_service.port,
            "/validate",
            claimed_length=5000,
            body=b'{"pair": "po-exp1"',
        )
        assert status == 400
        assert payload["error"]["code"] == "truncated-body"

    def test_missing_content_length_is_411(self, demo_service):
        status, payload, _ = post_without_content_length(
            demo_service.host, demo_service.port, "/validate"
        )
        assert status == 411
        assert payload["error"]["code"] == "length-required"

    def test_malformed_json_is_400(self, demo_service):
        body = b"this is not json {"
        status, payload, _ = post_with_content_length(
            demo_service.host,
            demo_service.port,
            "/validate",
            claimed_length=len(body),
            body=body,
            close_early=False,
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_non_object_json_is_400(self, demo_service):
        status, payload, _ = demo_service.post("/validate", [1, 2, 3])
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_missing_fields_are_400(self, demo_service):
        status, payload, _ = demo_service.post("/validate", {})
        assert status == 400
        assert payload["error"]["code"] == "bad-request"
        status, payload, _ = demo_service.post(
            "/validate", {"pair": "po-exp1"}
        )
        assert status == 400

    def test_unknown_pair_is_404(self, demo_service):
        status, payload, _ = demo_service.post(
            "/validate", {"pair": "no-such-pair", "xml": "<a/>"}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-pair"

    def test_unknown_route_is_404(self, demo_service):
        status, payload, _ = demo_service.post("/frobnicate", {})
        assert status == 404
        assert payload["error"]["code"] == "unknown-route"

    def test_wrong_method_is_405(self, demo_service):
        status, payload, _ = demo_service.get("/validate")
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"
        status, payload, _ = demo_service.post("/healthz", {})
        assert status == 405

    def test_bad_mod_operations_are_400(self, demo_service):
        for mods in (
            "not-a-list",
            [{"no-op-field": 1}],
            [{"op": "explode", "path": ""}],
            [{"op": "rename", "path": "9999.9999", "label": "x"}],
            [{"op": "rename", "path": "not.a.path", "label": "x"}],
        ):
            status, payload, _ = demo_service.post(
                "/cast-with-mods",
                {"pair": "po-exp1", "xml": po_xml(), "mods": mods},
            )
            assert status == 400, f"mods={mods!r} gave {status}"
            assert payload["error"]["code"] == "bad-request"


class TestAdversarialDocuments:
    """The on-disk adversarial corpus, delivered over HTTP: each case
    maps to its guard's status code via the shared error taxonomy."""

    #: corpus name -> (HTTP status, machine code) under CORPUS_LIMITS.
    EXPECTED = {
        "deep-nesting": (422, "doc-too-deep"),
        "entity-bomb": (422, "entity-expansion"),
        "oversized": (413, "doc-too-large"),
        "truncated": (400, "xml-syntax"),
        "garbage-tail": (400, "xml-syntax"),
    }

    @pytest.fixture()
    def guarded_service(self):
        from repro.service.registry import ServiceRegistry, demo_specs
        from repro.service.server import ValidationService

        registry = ServiceRegistry(
            demo_specs(), default_limits=CORPUS_LIMITS
        )
        service = ValidationService(registry)
        host, port = service.start()
        assert service.wait_ready(30.0)
        from tests.service.conftest import ServiceHandle

        yield ServiceHandle(service, host, port)
        service.close()

    def test_every_corpus_case_gets_its_typed_status(
        self, guarded_service
    ):
        assert set(self.EXPECTED) == set(ADVERSARIAL_CASES)
        for name, (text, _error) in ADVERSARIAL_CASES.items():
            status, payload, _ = guarded_service.post(
                "/validate",
                {"pair": "po-exp1", "xml": text, "schema": "source"},
            )
            want_status, want_code = self.EXPECTED[name]
            assert status == want_status, (
                f"{name}: expected {want_status}, got {status}"
            )
            assert payload["error"]["code"] == want_code, name
            assert payload["diagnostics"], name

    def test_syntax_diagnostics_carry_position(self, guarded_service):
        status, payload, _ = guarded_service.post(
            "/validate", {"pair": "po-exp1", "xml": "<open"}
        )
        assert status == 400
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["code"] == "xml-syntax"
        assert diagnostic["line"] >= 1


class TestOverloadFaults:
    def test_burst_beyond_rate_limit_is_429_with_retry_after(self):
        handle = boot(ServiceConfig(rate=1.0, burst=2))
        try:
            codes = []
            for _ in range(4):
                status, payload, headers = handle.post(
                    "/validate", {"pair": "po-exp1", "xml": po_xml()}
                )
                codes.append(status)
                if status == 429:
                    assert payload["error"]["code"] == "rate-limited"
                    assert "Retry-After" in headers
            assert codes.count(200) == 2
            assert codes.count(429) == 2
        finally:
            handle.service.close()

    def test_queue_overflow_is_503_with_retry_after(self):
        entered = threading.Semaphore(0)
        release = threading.Event()

        def hold(route: str) -> None:
            entered.release()
            release.wait(timeout=30.0)

        handle = boot(
            ServiceConfig(
                max_concurrent=1, max_queue=0, queue_timeout=0.2
            ),
            after_admit_hook=hold,
        )
        try:
            blocker_result = []

            def blocker() -> None:
                blocker_result.append(
                    handle.post(
                        "/validate",
                        {"pair": "po-exp1", "xml": po_xml()},
                        timeout=30.0,
                    )
                )

            thread = threading.Thread(target=blocker, daemon=True)
            thread.start()
            assert entered.acquire(timeout=10.0)
            status, payload, headers = handle.post(
                "/validate", {"pair": "po-exp1", "xml": po_xml()}
            )
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert "Retry-After" in headers
            release.set()
            thread.join(timeout=30.0)
            assert blocker_result[0][0] == 200
        finally:
            release.set()
            handle.service.close()

    def test_drain_refusals_are_typed_503(self):
        # Drain with a request in flight: the listener stays up until
        # it finishes, and refusals in that window are typed 503s (an
        # *idle* drain stops immediately — nothing left to refuse).
        entered = threading.Event()
        release = threading.Event()

        def hold(route: str) -> None:
            entered.set()
            release.wait(timeout=30.0)

        handle = boot(after_admit_hook=hold)
        try:
            threading.Thread(
                target=lambda: handle.post(
                    "/validate",
                    {"pair": "po-exp1", "xml": po_xml()},
                    timeout=30.0,
                ),
                daemon=True,
            ).start()
            assert entered.wait(timeout=10.0)
            handle.service.begin_drain()
            status, payload, _ = handle.post(
                "/validate", {"pair": "po-exp1", "xml": po_xml()}
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
        finally:
            release.set()
            handle.service.close()


class TestNoBareFiveHundred:
    def test_handler_bug_is_structured_500(self):
        """A defect outside the taxonomy collapses to a structured
        ``internal`` record — message withheld, diagnostics intact."""

        def explode(route: str) -> None:
            raise RuntimeError("injected defect: secret internals")

        handle = boot(after_admit_hook=explode)
        try:
            status, payload, _ = handle.post(
                "/validate", {"pair": "po-exp1", "xml": po_xml()}
            )
            assert status == 500
            assert payload["error"]["code"] == "internal"
            assert "secret" not in payload["error"]["message"]
            assert payload["diagnostics"] == []
        finally:
            handle.service.close()
