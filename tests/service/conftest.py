"""Service-suite fixtures: an in-process warmed demo service."""

from __future__ import annotations

import pytest

from repro.service.registry import ServiceRegistry, demo_specs
from repro.service.server import ServiceConfig, ValidationService

from tests.faultinject import http_json


class ServiceHandle:
    """A booted service plus a JSON client bound to its port."""

    def __init__(self, service: ValidationService, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port

    def request(self, method: str, path: str, payload=None,
                timeout: float = 10.0):
        return http_json(
            self.host, self.port, method, path, payload, timeout=timeout
        )

    def get(self, path: str):
        return self.request("GET", path)

    def post(self, path: str, payload: dict, timeout: float = 10.0):
        return self.request("POST", path, payload, timeout=timeout)


def boot(config: ServiceConfig = None, *, after_admit_hook=None,
         wait: bool = True) -> ServiceHandle:
    registry = ServiceRegistry(demo_specs())
    service = ValidationService(
        registry, config, after_admit_hook=after_admit_hook
    )
    host, port = service.start()
    if wait:
        assert service.wait_ready(30.0), service.warm_error
    return ServiceHandle(service, host, port)


@pytest.fixture()
def demo_service():
    handle = boot()
    yield handle
    handle.service.close()
