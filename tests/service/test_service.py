"""Happy-path and lifecycle tests for the validation service."""

from __future__ import annotations

import threading
import time

import pytest

from repro.guards import Limits
from repro.service.errors import NotReadyError, UnknownPairError
from repro.service.registry import (
    PairSpec,
    ServiceRegistry,
    demo_specs,
)
from repro.service.server import ServiceConfig, ValidationService
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.service.conftest import boot


def po_xml(items: int = 3, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs))


class TestRegistry:
    def test_lookup_before_warm_is_not_ready(self):
        registry = ServiceRegistry(demo_specs())
        with pytest.raises(NotReadyError):
            registry.get("po-exp1")

    def test_lookup_by_name_fingerprint_and_prefix(self):
        registry = ServiceRegistry(demo_specs())
        registry.warm()
        entry = registry.get("po-exp1")
        assert registry.get(entry.fingerprint) is entry
        assert registry.get(entry.fingerprint[:12]) is entry

    def test_unknown_and_short_prefix_lookups_fail(self):
        registry = ServiceRegistry(demo_specs())
        registry.warm()
        with pytest.raises(UnknownPairError):
            registry.get("no-such-pair")
        entry = registry.get("po-exp1")
        # Below the minimum prefix length even a correct prefix misses.
        with pytest.raises(UnknownPairError):
            registry.get(entry.fingerprint[:4])

    def test_warm_is_idempotent(self):
        registry = ServiceRegistry(demo_specs())
        first = registry.warm()
        assert registry.warm() == first

    def test_per_pair_limits_override_default(self):
        tight = Limits(deadline_seconds=0.5)
        specs = demo_specs()
        specs[0] = PairSpec(
            specs[0].name, specs[0].source, specs[0].target, limits=tight
        )
        registry = ServiceRegistry(
            specs, default_limits=Limits(deadline_seconds=9.0)
        )
        registry.warm()
        assert registry.get("po-exp1").limits.deadline_seconds == 0.5
        assert registry.get("po-exp2").limits.deadline_seconds == 9.0

    def test_empty_and_duplicate_specs_rejected(self):
        with pytest.raises(ValueError):
            ServiceRegistry([])
        specs = demo_specs()
        twice = [specs[0], specs[0]]
        with pytest.raises(ValueError):
            ServiceRegistry(twice)

    def test_artifact_cache_round_trip(self, tmp_path):
        cold = ServiceRegistry(demo_specs(), cache_dir=str(tmp_path))
        cold.warm()
        assert not any(e.from_cache for e in cold.entries())
        warm = ServiceRegistry(demo_specs(), cache_dir=str(tmp_path))
        warm.warm()
        assert all(e.from_cache for e in warm.entries())
        assert [e.fingerprint for e in warm.entries()] == [
            e.fingerprint for e in cold.entries()
        ]


class TestEndpoints:
    def test_healthz_reports_counters(self, demo_service):
        status, payload, _ = demo_service.get("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["ready"] is True
        assert payload["admission"]["admitted"] == 0

    def test_pairs_lists_fingerprints_and_budgets(self, demo_service):
        status, payload, _ = demo_service.get("/pairs")
        assert status == 200
        names = [p["name"] for p in payload["pairs"]]
        assert names == ["po-exp1", "po-exp2"]
        for pair in payload["pairs"]:
            assert len(pair["fingerprint"]) == 64
            assert "max_document_bytes" in pair

    def test_validate_valid_document(self, demo_service):
        status, payload, _ = demo_service.post(
            "/validate",
            {"pair": "po-exp1", "xml": po_xml(), "schema": "source"},
        )
        assert status == 200
        assert payload["valid"] is True
        assert payload["diagnostics"] == []
        assert payload["pair"] == "po-exp1"
        assert payload["elapsed_ms"] >= 0

    def test_validate_by_fingerprint(self, demo_service):
        _, pairs, _ = demo_service.get("/pairs")
        fingerprint = pairs["pairs"][0]["fingerprint"]
        status, payload, _ = demo_service.post(
            "/validate",
            {"pair": fingerprint, "xml": po_xml(), "schema": "source"},
        )
        assert status == 200
        assert payload["fingerprint"] == fingerprint

    def test_invalid_document_is_200_with_diagnostics(self, demo_service):
        # Valid XML that violates the target schema (exp1 makes billTo
        # required): a verdict, not an error — the request succeeded.
        status, payload, _ = demo_service.post(
            "/cast",
            {"pair": "po-exp1", "xml": po_xml(3, with_billto=False)},
        )
        assert status == 200
        assert payload["valid"] is False
        assert len(payload["diagnostics"]) == 1
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["code"] == "validation-failed"
        assert diagnostic["message"]

    def test_cast_valid_document(self, demo_service):
        status, payload, _ = demo_service.post(
            "/cast", {"pair": "po-exp1", "xml": po_xml()}
        )
        assert status == 200
        assert payload["valid"] is True

    def test_cast_with_mods_rename(self, demo_service):
        # Experiment 1's schema change renames shipTo/billTo types; a
        # no-op mod list keeps the document valid.
        status, payload, _ = demo_service.post(
            "/cast-with-mods",
            {"pair": "po-exp1", "xml": po_xml(), "mods": []},
        )
        assert status == 200
        assert payload["valid"] is True
        assert payload["mods_applied"] == 0

    def test_cast_with_mods_applies_operations(self, demo_service):
        # Dewey 2.0.0.0: items -> first item -> productName -> text.
        status, payload, _ = demo_service.post(
            "/cast-with-mods",
            {
                "pair": "po-exp2",
                "xml": po_xml(3, with_billto=True),
                "mods": [
                    {
                        "op": "replace-text",
                        "path": "2.0.0.0",
                        "value": "Lawnmower model 7",
                    }
                ],
            },
        )
        assert status == 200
        assert payload["valid"] is True
        assert payload["mods_applied"] == 1

    def test_healthz_counts_completed_requests(self, demo_service):
        demo_service.post(
            "/validate", {"pair": "po-exp1", "xml": po_xml()}
        )
        _, payload, _ = demo_service.get("/healthz")
        assert payload["admission"]["admitted"] == 1
        assert payload["admission"]["completed"] == 1


class TestLifecycle:
    def test_readyz_flips_after_warm(self):
        # Stall warm-up behind an event so the pre-ready window is
        # deterministic, not a race against schema compilation.
        gate = threading.Event()
        registry = ServiceRegistry(demo_specs())
        original_warm = registry.warm

        def gated_warm():
            gate.wait(timeout=30.0)
            return original_warm()

        registry.warm = gated_warm
        service = ValidationService(registry)
        host, port = service.start()
        from tests.faultinject import http_json

        try:
            status, payload, headers = http_json(
                host, port, "GET", "/readyz"
            )
            assert status == 503
            assert payload["ready"] is False
            assert "retry-after" in {k.lower() for k in headers}
            # healthz answers 200 while warming: the process is alive.
            status, _, _ = http_json(host, port, "GET", "/healthz")
            assert status == 200
            # POSTs are refused with a typed 503 while warming.
            status, payload, _ = http_json(
                host, port, "POST", "/validate",
                {"pair": "po-exp1", "xml": "<a/>"},
            )
            assert status == 503
            assert payload["error"]["code"] == "not-ready"
            gate.set()
            assert service.wait_ready(30.0)
            status, payload, _ = http_json(host, port, "GET", "/readyz")
            assert status == 200
            assert payload["ready"] is True
            assert payload["pairs"] == 2
        finally:
            gate.set()
            service.close()

    def test_drain_finishes_inflight_and_stops(self):
        entered = threading.Event()
        release = threading.Event()

        def hold(route: str) -> None:
            entered.set()
            release.wait(timeout=30.0)

        handle = boot(after_admit_hook=hold)
        service = handle.service
        results: list = []

        def client() -> None:
            results.append(
                handle.post(
                    "/validate",
                    {"pair": "po-exp1", "xml": po_xml()},
                    timeout=30.0,
                )
            )

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        assert entered.wait(timeout=10.0)
        service.begin_drain()
        # New work is refused while the held request is still in flight.
        status, payload, _ = handle.post(
            "/validate", {"pair": "po-exp1", "xml": po_xml()}
        )
        assert status == 503
        assert payload["error"]["code"] == "draining"
        assert not service.stopped
        release.set()
        thread.join(timeout=30.0)
        assert results and results[0][0] == 200, (
            "in-flight request must complete during drain"
        )
        assert service._stopped.wait(10.0)
        stats = service.admission.stats
        assert stats.admitted == stats.completed

    def test_close_is_immediate(self):
        handle = boot()
        handle.service.close()
        assert handle.service.stopped

    def test_double_start_rejected(self, demo_service):
        with pytest.raises(RuntimeError):
            demo_service.service.start()


class TestConfig:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_timeout=0)
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout=-1)


class TestResidualDeadline:
    def test_validation_budget_is_whats_left_of_the_request(self):
        """The admission-time deadline propagates: validation gets the
        *residual* request budget, not a fresh clock."""
        handle = boot(
            ServiceConfig(request_timeout=0.4),
            after_admit_hook=lambda route: time.sleep(0.5),
        )
        try:
            status, payload, _ = handle.post(
                "/validate",
                {"pair": "po-exp1", "xml": po_xml()},
                timeout=30.0,
            )
            assert status == 408
            assert payload["error"]["code"] in (
                "deadline-exceeded", "request-timeout"
            )
        finally:
            handle.service.close()

    def test_pair_deadline_tighter_than_request_wins(self):
        entry_limits = Limits(deadline_seconds=5.0)
        registry = ServiceRegistry(
            demo_specs(limits=entry_limits)
        )
        registry.warm()
        service = ValidationService(
            registry, ServiceConfig(request_timeout=30.0)
        )
        from repro.guards import Deadline

        entry = registry.get("po-exp1")
        limits = service._residual_limits(entry, Deadline(30.0))
        assert limits.deadline_seconds <= 5.0
