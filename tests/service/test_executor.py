"""Fleet-backed dispatch: the resident worker pool behind the service.

Parity tests pin the contract that dispatching through ``FleetExecutor``
is observationally identical to inline execution — same verdicts, same
typed errors — and that worker recycling is invisible to clients.
"""

from __future__ import annotations

import pytest

from repro.service.server import ServiceConfig
from repro.workloads.purchase_orders import make_purchase_order
from repro.xmltree.serializer import serialize

from tests.service.conftest import boot


def po_xml(items: int = 3, **kwargs) -> str:
    return serialize(make_purchase_order(items, **kwargs))


@pytest.fixture(scope="module")
def fleet_service():
    handle = boot(ServiceConfig(fleet_workers=2))
    yield handle
    handle.service.close()


@pytest.fixture(scope="module")
def inline_service():
    handle = boot()
    yield handle
    handle.service.close()


def strip_timing(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k != "elapsed_ms"}


class TestFleetParity:
    def test_healthz_reports_the_fleet(self, fleet_service):
        status, payload, _ = fleet_service.get("/healthz")
        assert status == 200
        fleet = payload["executor"]
        assert fleet["workers"] == 2
        assert fleet["alive"] == 2

    @pytest.mark.parametrize("route", ["/validate", "/cast"])
    def test_verdict_parity_with_inline(
        self, fleet_service, inline_service, route
    ):
        request = {"pair": "po-exp1", "xml": po_xml(), "schema": "source"}
        status_f, fleet, _ = fleet_service.post(route, dict(request))
        status_i, inline, _ = inline_service.post(route, dict(request))
        assert status_f == status_i == 200
        assert strip_timing(fleet) == strip_timing(inline)

    def test_cast_with_mods_through_the_fleet(self, fleet_service):
        status, payload, _ = fleet_service.post(
            "/cast-with-mods",
            {
                "pair": "po-exp1",
                "xml": po_xml(2),
                "mods": [],
            },
        )
        assert status == 200
        assert payload["mods_applied"] == 0

    def test_invalid_document_verdict_parity(
        self, fleet_service, inline_service
    ):
        request = {"pair": "po-exp1", "xml": "<wrong/>", "schema": "source"}
        status_f, fleet, _ = fleet_service.post("/validate", dict(request))
        status_i, inline, _ = inline_service.post(
            "/validate", dict(request)
        )
        assert status_f == status_i == 200
        assert fleet["valid"] is False
        assert strip_timing(fleet) == strip_timing(inline)

    def test_typed_error_parity(self, fleet_service, inline_service):
        request = {"pair": "po-exp1", "xml": "<broken", "schema": "source"}
        status_f, fleet, _ = fleet_service.post("/validate", dict(request))
        status_i, inline, _ = inline_service.post(
            "/validate", dict(request)
        )
        assert status_f == status_i
        assert fleet["error"]["code"] == inline["error"]["code"]

    def test_unknown_pair_rejected_before_dispatch(self, fleet_service):
        status, payload, _ = fleet_service.post(
            "/validate",
            {"pair": "nope", "xml": "<x/>", "schema": "source"},
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-pair"

    def test_hot_pair_served_by_the_fleet(self, fleet_service):
        # A pair registered after the workers were forked travels a
        # spawn-safe route; the fleet must still serve it.
        status, created, _ = fleet_service.post(
            "/admin/pairs",
            {
                "name": "fleet-note",
                "source_text": "<!ELEMENT note (#PCDATA)>",
                "source_kind": "dtd",
                "target_text": "<!ELEMENT note (#PCDATA)>",
                "target_kind": "dtd",
            },
        )
        assert status == 201
        status, verdict, _ = fleet_service.post(
            "/validate",
            {"pair": "fleet-note", "xml": "<note>x</note>",
             "schema": "source"},
        )
        assert status == 200 and verdict["valid"] is True
        status, _, _ = fleet_service.request(
            "DELETE", "/admin/pairs/fleet-note"
        )
        assert status == 200


class TestWorkerRecycling:
    def test_recycled_workers_stay_invisible_to_clients(self):
        handle = boot(
            ServiceConfig(fleet_workers=2, max_requests_per_worker=3)
        )
        try:
            for _ in range(12):
                status, payload, _ = handle.post(
                    "/validate",
                    {"pair": "po-exp1", "xml": po_xml(1),
                     "schema": "source"},
                )
                assert status == 200 and payload["valid"] is True
            describe = handle.service.executor.describe()
            assert describe["recycled"] > 0
            assert describe["crashed"] == 0
            # A replacement for the last recycled worker may still be
            # mid-spawn; full strength returns shortly.
            import time

            deadline = time.monotonic() + 10.0
            while describe["alive"] < 2:
                assert time.monotonic() < deadline, describe
                time.sleep(0.1)
                describe = handle.service.executor.describe()
        finally:
            handle.service.close()
