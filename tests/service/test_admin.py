"""Hot pair register/retire through the ``/admin/pairs`` plane."""

from __future__ import annotations

import pytest

from repro.service.server import ServiceConfig

from tests.service.conftest import boot

NOTE_DTD = "<!ELEMENT note (#PCDATA)>"
MEMO_DTD = "<!ELEMENT note (line+)>\n<!ELEMENT line (#PCDATA)>"


def note_pair(name: str = "note-pair") -> dict:
    return {
        "name": name,
        "source_text": NOTE_DTD,
        "source_kind": "dtd",
        "target_text": NOTE_DTD,
        "target_kind": "dtd",
    }


class TestAdminRegister:
    def test_register_validate_retire_round_trip(self, demo_service):
        status, payload, _ = demo_service.post(
            "/admin/pairs", note_pair()
        )
        assert status == 201
        assert payload["created"] is True
        assert payload["name"] == "note-pair"
        fingerprint = payload["fingerprint"]
        assert len(fingerprint) == 64

        # The hot pair serves validation traffic immediately.
        status, verdict, _ = demo_service.post(
            "/validate",
            {"pair": "note-pair", "xml": "<note>hi</note>",
             "schema": "source"},
        )
        assert status == 200 and verdict["valid"] is True

        status, gone, _ = demo_service.request(
            "DELETE", f"/admin/pairs/{fingerprint}"
        )
        assert status == 200
        assert gone["retired"] == "note-pair"

        status, error, _ = demo_service.post(
            "/validate",
            {"pair": "note-pair", "xml": "<note>hi</note>",
             "schema": "source"},
        )
        assert status == 404
        assert error["error"]["code"] == "unknown-pair"

    def test_reregister_same_content_is_idempotent(self, demo_service):
        status, first, _ = demo_service.post("/admin/pairs", note_pair())
        assert status == 201 and first["created"] is True
        status, again, _ = demo_service.post("/admin/pairs", note_pair())
        assert status == 200
        assert again["created"] is False
        assert again["fingerprint"] == first["fingerprint"]

    def test_same_name_different_content_conflicts(self, demo_service):
        demo_service.post("/admin/pairs", note_pair())
        conflicting = note_pair()
        conflicting["target_text"] = MEMO_DTD
        status, payload, _ = demo_service.post(
            "/admin/pairs", conflicting
        )
        assert status == 409
        assert payload["error"]["code"] == "pair-conflict"

    def test_same_content_under_other_name_conflicts(self, demo_service):
        demo_service.post("/admin/pairs", note_pair())
        status, payload, _ = demo_service.post(
            "/admin/pairs", note_pair("note-alias")
        )
        assert status == 409
        assert payload["error"]["code"] == "pair-conflict"

    def test_generation_visible_in_pairs_listing(self, demo_service):
        _, before, _ = demo_service.get("/pairs")
        _, created, _ = demo_service.post("/admin/pairs", note_pair())
        _, after, _ = demo_service.get("/pairs")
        assert after["generation"] == before["generation"] + 1
        assert created["generation"] == after["generation"]
        names = [p["name"] for p in after["pairs"]]
        assert "note-pair" in names

    def test_unusable_inline_schema_is_a_400(self, demo_service):
        broken = note_pair()
        broken["source_text"] = "<!ELEMENT note"
        status, payload, _ = demo_service.post("/admin/pairs", broken)
        # Inline text fails at parse time (xml-syntax); either way the
        # contract is a typed 400, never a 500.
        assert status == 400
        assert payload["error"]["code"] in ("bad-request", "xml-syntax")

    def test_unreadable_schema_path_is_a_400(self, demo_service):
        status, payload, _ = demo_service.post(
            "/admin/pairs",
            {"name": "ghost", "source": "/no/such/schema.dtd",
             "target": "/no/such/schema.dtd"},
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"


class TestAdminRetire:
    def test_cannot_retire_last_pair(self):
        handle = boot()
        try:
            _, pairs, _ = handle.get("/pairs")
            names = [p["name"] for p in pairs["pairs"]]
            for name in names[:-1]:
                status, _, _ = handle.request(
                    "DELETE", f"/admin/pairs/{name}"
                )
                assert status == 200
            status, payload, _ = handle.request(
                "DELETE", f"/admin/pairs/{names[-1]}"
            )
            assert status == 400
            assert payload["error"]["code"] == "bad-request"
        finally:
            handle.service.close()

    def test_retire_unknown_pair_is_404(self, demo_service):
        status, payload, _ = demo_service.request(
            "DELETE", "/admin/pairs/no-such-pair"
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown-pair"

    def test_delete_without_key_is_malformed(self, demo_service):
        status, payload, _ = demo_service.request(
            "DELETE", "/admin/pairs/"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_delete_on_validation_route_is_405(self, demo_service):
        status, payload, _ = demo_service.request("DELETE", "/validate")
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"


class TestAdminGating:
    def test_admin_disabled_hides_the_plane(self):
        handle = boot(ServiceConfig(admin=False))
        try:
            status, payload, _ = handle.post("/admin/pairs", note_pair())
            assert status == 404
            assert payload["error"]["code"] == "unknown-route"
            status, payload, _ = handle.request(
                "DELETE", "/admin/pairs/po-exp1"
            )
            assert status == 404
        finally:
            handle.service.close()

    def test_draining_service_sheds_admin_mutations(self, demo_service):
        # Flip only the admission gate: the listener stays up, so the
        # request must reach the admin plane and be shed there.
        demo_service.service.admission.start_drain()
        status, payload, _ = demo_service.post(
            "/admin/pairs", note_pair()
        )
        assert status == 503
        assert payload["error"]["code"] == "draining"

    def test_get_on_admin_route_is_405(self, demo_service):
        status, payload, _ = demo_service.get("/admin/pairs")
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"
