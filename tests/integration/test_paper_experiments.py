"""Integration tests pinning the paper's Section 6 experiments.

These are the executable versions of EXPERIMENTS.md: each test asserts
the *shape* the paper reports (constant vs linear, orderings, per-item
slopes), at small scale so the suite stays fast.
"""

import pytest

from repro.baselines.full import FullValidator
from repro.bench.harness import (
    run_dtd_index,
    run_table2,
    run_table3,
    run_tree_modifications,
)
from repro.core.cast import CastValidator
from repro.workloads.purchase_orders import make_purchase_order

SIZES = (2, 50, 100)


class TestExperiment1Shape:
    def test_cast_constant_full_linear(self, exp1_pair):
        cast = CastValidator(exp1_pair)
        full = FullValidator(exp1_pair.target)
        cast_nodes = []
        full_nodes = []
        for count in SIZES:
            doc = make_purchase_order(count)
            cast_nodes.append(cast.validate(doc).stats.nodes_visited)
            full_nodes.append(full.validate(doc).stats.nodes_visited)
        # Constant vs linear.
        assert len(set(cast_nodes)) == 1
        slope_low = (full_nodes[1] - full_nodes[0]) / (SIZES[1] - SIZES[0])
        slope_high = (full_nodes[2] - full_nodes[1]) / (SIZES[2] - SIZES[1])
        assert slope_low == pytest.approx(slope_high)
        assert slope_low == 9  # 5 elements + 4 text nodes per item

    def test_invalid_documents_detected_in_constant_work(self, exp1_pair):
        cast = CastValidator(exp1_pair)
        reports = [
            cast.validate(make_purchase_order(count, with_billto=False))
            for count in SIZES
        ]
        assert not any(report.valid for report in reports)
        visited = {report.stats.nodes_visited for report in reports}
        assert len(visited) == 1


class TestExperiment2Shape:
    def test_both_linear_cast_below_full(self, exp2_pair):
        cast = CastValidator(exp2_pair)
        full = FullValidator(exp2_pair.target)
        rows = []
        for count in SIZES:
            doc = make_purchase_order(count)
            rows.append(
                (
                    cast.validate(doc).stats.nodes_visited,
                    full.validate(doc).stats.nodes_visited,
                )
            )
        for cast_nodes, full_nodes in rows:
            assert cast_nodes < full_nodes
        cast_slope = (rows[2][0] - rows[1][0]) / (SIZES[2] - SIZES[1])
        full_slope = (rows[2][1] - rows[1][1]) / (SIZES[2] - SIZES[1])
        assert cast_slope == 3  # item + quantity + its text
        assert full_slope == 9

    def test_paper_slopes_are_what_we_encode(self):
        from repro.workloads.purchase_orders import PAPER_TABLE3_NODES

        paper_cast_slope = (
            PAPER_TABLE3_NODES[1000][0] - PAPER_TABLE3_NODES[100][0]
        ) / 900
        paper_full_slope = (
            PAPER_TABLE3_NODES[1000][1] - PAPER_TABLE3_NODES[100][1]
        ) / 900
        assert paper_cast_slope == 12
        assert paper_full_slope == 15


class TestHarnessRunners:
    def test_table2_rows(self):
        rows = run_table2(item_counts=(2, 50))
        assert [row["items"] for row in rows] == [2, 50]
        assert all(row["bytes"] > 0 for row in rows)

    def test_table3_rows(self):
        rows = run_table3(item_counts=(2, 50))
        for row in rows:
            assert row["cast_nodes"] < row["full_nodes"]
            assert row["paper_cast"] < row["paper_full"]

    def test_tree_modifications_rows(self):
        rows = run_tree_modifications(
            item_count=20, edit_counts=(1, 5), repeat=1
        )
        assert rows[0]["cast_nodes"] < rows[1]["cast_nodes"]
        assert all(
            row["cast_nodes"] < row["full_nodes"] for row in rows
        )
        assert all(
            row["pair_state"] < row["preproc_cells"] for row in rows
        )

    def test_dtd_index_rows(self):
        rows = run_dtd_index(sizes=(5, 50), repeat=1)
        for row in rows:
            assert row["index_nodes"] <= row["tree_nodes"]
            assert row["tree_nodes"] < row["full_nodes"]

    def test_reports_render(self):
        from repro.bench.harness import (
            report_dtd_index,
            report_table2,
            report_table3,
            report_tree_modifications,
        )

        assert "Table 2" in report_table2(run_table2(item_counts=(2,)))
        assert "Table 3" in report_table3(run_table3(item_counts=(2,)))
        assert "A5" in report_tree_modifications(
            run_tree_modifications(item_count=5, edit_counts=(1,), repeat=1)
        )
        assert "A3" in report_dtd_index(run_dtd_index(sizes=(5,), repeat=1))


class TestAblationRunners:
    def test_string_cast_rows(self):
        from repro.bench.ablations import run_string_cast

        rows = run_string_cast(lengths=(10, 100))
        for row in rows:
            assert row["cast_symbols"] <= row["plain_symbols"] or (
                # disjoint case: plain rejects on symbol 1, cast at 0
                row["cast_symbols"] <= 1
            )

    def test_mods_position_rows(self):
        from repro.bench.ablations import run_mods_position

        rows = run_mods_position(length=200, positions=(0.0, 1.0))
        front, back = rows
        assert front["forward_symbols"] < front["reverse_symbols"]
        assert back["reverse_symbols"] < back["forward_symbols"]
        assert front["auto_choice"] == "forward"
        assert back["auto_choice"] == "reverse"

    def test_precompute_rows(self):
        from repro.bench.ablations import run_precompute

        rows = run_precompute(sizes=(4,), repeat=1)
        assert rows[0]["build_ms"] > 0
        assert rows[0]["r_sub"] >= 0
