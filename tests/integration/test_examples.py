"""Every example script must run cleanly and print its narrative."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": ["preprocessed pair", "VALID", "INVALID"],
    "message_broker.py": ["forwarded", "bounced", "nodes visited"],
    "editor_session.py": ["Δ^ε_billTo", "materializing"],
    "schema_evolution.py": ["survive", "migrating v1 -> v3"],
    "string_revalidation.py": ["immediate-accept", "strategy=reverse"],
    "document_repair.py": ["fabricated required <billTo>", "target-valid"],
    "identity_constraints.py": ["duplicate", "REJECTED (identity)"],
    "validation_service.py": [
        "readyz -> 200",
        "[unknown-pair]",
        "zero lost",
    ],
}


def test_examples_discovered():
    assert {path.name for path in EXAMPLES} == set(EXPECTED_MARKERS)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    for marker in EXPECTED_MARKERS[script.name]:
        assert marker in completed.stdout, (script.name, marker)
