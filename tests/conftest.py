"""Shared fixtures: the paper's schemas and canonical documents."""

from __future__ import annotations

import pytest

from repro.schema.registry import SchemaPair
from repro.workloads.purchase_orders import (
    make_purchase_order,
    source_schema_experiment1,
    source_schema_experiment2,
    target_schema_experiment1,
    target_schema_experiment2,
)


@pytest.fixture(scope="session")
def exp1_source():
    return source_schema_experiment1()


@pytest.fixture(scope="session")
def exp1_target():
    return target_schema_experiment1()


@pytest.fixture(scope="session")
def exp2_source():
    return source_schema_experiment2()


@pytest.fixture(scope="session")
def exp2_target():
    return target_schema_experiment2()


@pytest.fixture(scope="session")
def exp1_pair(exp1_source, exp1_target):
    return SchemaPair(exp1_source, exp1_target)


@pytest.fixture(scope="session")
def exp2_pair(exp2_source, exp2_target):
    return SchemaPair(exp2_source, exp2_target)


@pytest.fixture()
def po_doc_with_billto():
    return make_purchase_order(5, with_billto=True)


@pytest.fixture()
def po_doc_without_billto():
    return make_purchase_order(5, with_billto=False)
