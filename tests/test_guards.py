"""Unit tests for the resource-guard subsystem itself."""

import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
    ResourceLimitError,
    StateBudgetExceededError,
)
from repro.guards import (
    DEFAULT_LIMITS,
    UNLIMITED,
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    get_limits,
    limits_scope,
    resolve_limits,
    set_limits,
    state_budget,
)


class TestLimits:
    def test_defaults_are_all_enabled_except_deadline(self):
        assert DEFAULT_LIMITS.max_document_bytes is not None
        assert DEFAULT_LIMITS.max_tree_depth is not None
        assert DEFAULT_LIMITS.max_entity_expansions is not None
        assert DEFAULT_LIMITS.max_dfa_states is not None
        assert DEFAULT_LIMITS.deadline_seconds is None

    def test_unlimited_disables_everything(self):
        assert UNLIMITED.max_document_bytes is None
        assert UNLIMITED.max_tree_depth is None
        assert UNLIMITED.max_dfa_states is None

    @pytest.mark.parametrize(
        "field",
        [
            "max_document_bytes",
            "max_tree_depth",
            "max_entity_expansions",
            "max_dfa_states",
        ],
    )
    def test_integer_fields_reject_non_positive(self, field):
        with pytest.raises(ValueError, match=field):
            Limits(**{field: 0})
        with pytest.raises(ValueError, match=field):
            Limits(**{field: -5})

    def test_deadline_rejects_non_positive(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            Limits(deadline_seconds=0)
        with pytest.raises(ValueError, match="deadline_seconds"):
            Limits(deadline_seconds=-1.0)

    def test_with_overrides_returns_new_validated_copy(self):
        tightened = DEFAULT_LIMITS.with_overrides(max_tree_depth=3)
        assert tightened.max_tree_depth == 3
        assert DEFAULT_LIMITS.max_tree_depth != 3
        assert tightened.max_document_bytes == DEFAULT_LIMITS.max_document_bytes
        with pytest.raises(ValueError):
            DEFAULT_LIMITS.with_overrides(max_tree_depth=0)

    def test_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_LIMITS.max_tree_depth = 1  # type: ignore[misc]


class TestAmbientLimits:
    def test_default_ambient_is_default_limits(self):
        assert get_limits() == DEFAULT_LIMITS

    def test_scope_installs_and_restores(self):
        custom = Limits(max_tree_depth=7)
        before = get_limits()
        with limits_scope(custom):
            assert get_limits() is custom
            assert resolve_limits(None) is custom
        assert get_limits() is before

    def test_scope_restores_on_error(self):
        before = get_limits()
        with pytest.raises(RuntimeError):
            with limits_scope(Limits(max_tree_depth=7)):
                raise RuntimeError("boom")
        assert get_limits() is before

    def test_nested_scopes(self):
        outer, inner = Limits(max_tree_depth=9), Limits(max_tree_depth=4)
        with limits_scope(outer):
            with limits_scope(inner):
                assert get_limits() is inner
            assert get_limits() is outer

    def test_set_limits_returns_previous(self):
        custom = Limits(max_tree_depth=11)
        previous = set_limits(custom)
        try:
            assert get_limits() is custom
        finally:
            set_limits(previous)

    def test_resolve_explicit_wins_over_ambient(self):
        explicit = Limits(max_tree_depth=2)
        with limits_scope(Limits(max_tree_depth=99)):
            assert resolve_limits(explicit) is explicit

    def test_state_budget_follows_ambient(self):
        with limits_scope(Limits(max_dfa_states=123)):
            assert state_budget() == 123
        assert state_budget(Limits(max_dfa_states=7)) == 7
        assert state_budget(UNLIMITED) is None


class TestDeadline:
    def test_start_none_is_none(self):
        assert Deadline.start(None) is None

    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        deadline.check()  # does not raise

    def test_expired_deadline_raises_on_check(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError, match="deadline"):
            deadline.check()

    def test_tick_is_amortized(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        # The first stride-1 ticks never read the clock.
        for _ in range(Deadline.stride - 1):
            deadline.tick()
        with pytest.raises(DeadlineExceededError):
            deadline.tick()

    def test_limits_deadline_factory(self):
        assert DEFAULT_LIMITS.deadline() is None
        token = Limits(deadline_seconds=30).deadline()
        assert isinstance(token, Deadline)
        assert token.budget == 30

    def test_remaining_counts_down_from_budget(self):
        deadline = Deadline(60.0)
        remaining = deadline.remaining()
        assert 0.0 < remaining <= 60.0
        time.sleep(0.002)
        assert deadline.remaining() < remaining

    def test_remaining_never_negative_after_expiry(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        assert deadline.expired()
        assert deadline.remaining() == 0.0


class TestGuardChecks:
    def test_document_size(self):
        limits = Limits(max_document_bytes=10)
        check_document_size(10, limits)
        with pytest.raises(DocumentTooLargeError, match="12 bytes"):
            check_document_size(12, limits)
        check_document_size(10**12, UNLIMITED)

    def test_depth(self):
        limits = Limits(max_tree_depth=3)
        check_depth(3, limits)
        with pytest.raises(DocumentTooDeepError, match="depth 4"):
            check_depth(4, limits)
        check_depth(10**6, UNLIMITED)

    def test_error_taxonomy(self):
        # Every guard error is a ResourceLimitError and a ReproError;
        # the state-budget error doubles as ValueError for backward
        # compatibility with the position-cap contract.
        from repro.errors import ReproError

        for cls in (
            DocumentTooLargeError,
            DocumentTooDeepError,
            DeadlineExceededError,
            StateBudgetExceededError,
        ):
            assert issubclass(cls, ResourceLimitError)
            assert issubclass(cls, ReproError)
        assert issubclass(StateBudgetExceededError, ValueError)
