"""Tests for random schema/document generation."""

import random

import pytest

from repro.core.validator import validate_document, validate_element
from repro.remodel.derivative import matches
from repro.schema.model import ComplexType, Schema, complex_type
from repro.schema.productive import is_fully_productive
from repro.schema.simple import builtin
from repro.workloads.generators import (
    TreeSampler,
    random_regex,
    random_schema,
    random_simple_type,
    random_text_for,
    random_word,
    sample_document,
    sample_valid_tree,
)


class TestRandomRegex:
    def test_symbols_come_from_palette(self):
        rng = random.Random(1)
        for _ in range(20):
            expr = random_regex(rng, ["x", "y"])
            assert expr.symbols() <= {"x", "y"}

    def test_empty_palette_gives_epsilon(self):
        assert random_regex(random.Random(1), []).nullable()

    def test_deterministic_under_seed(self):
        first = random_regex(random.Random(5), ["a", "b"])
        second = random_regex(random.Random(5), ["a", "b"])
        assert first == second


class TestRandomSimpleType:
    def test_generated_types_validate_their_own_samples(self):
        rng = random.Random(3)
        for i in range(40):
            declaration = random_simple_type(rng, f"T{i}")
            for _ in range(5):
                text = random_text_for(rng, declaration)
                assert declaration.validate(text), (declaration, text)


class TestRandomWord:
    def test_words_are_members(self):
        from repro.remodel.glushkov import compile_dfa
        from repro.remodel.parser import parse_content_model

        rng = random.Random(11)
        for source in ("(a,(b|c)*,d?)", "(a|b)+", "a{2,5}", "(a?,b?,c?)"):
            expr = parse_content_model(source)
            dfa = compile_dfa(expr, frozenset("abcd"))
            for _ in range(20):
                word = random_word(rng, dfa)
                assert word is not None
                assert matches(expr, word), (source, word)

    def test_empty_language_returns_none(self):
        from repro.automata.dfa import DFA

        assert random_word(random.Random(1), DFA.empty_language({"a"})) is None

    def test_allowed_restriction(self):
        from repro.remodel.glushkov import compile_dfa
        from repro.remodel.parser import parse_content_model

        dfa = compile_dfa(parse_content_model("(a|b)*"), frozenset("ab"))
        rng = random.Random(2)
        for _ in range(10):
            word = random_word(rng, dfa, allowed=frozenset({"a"}))
            assert word is not None
            assert set(word) <= {"a"}

    def test_max_length_soft_bound_terminates(self):
        from repro.remodel.glushkov import compile_dfa
        from repro.remodel.parser import parse_content_model

        dfa = compile_dfa(parse_content_model("a+"), frozenset("a"))
        word = random_word(random.Random(1), dfa, max_length=3)
        assert word is not None


class TestRandomSchema:
    def test_always_productive(self):
        rng = random.Random(21)
        produced = 0
        for _ in range(15):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            assert is_fully_productive(schema)
            produced += 1
        assert produced >= 10

    def test_reproducible_under_seed(self):
        one = random_schema(random.Random(9))
        two = random_schema(random.Random(9))
        assert set(one.types) == set(two.types)
        assert one.roots == two.roots


class TestTreeSampling:
    def test_sampled_trees_validate(self):
        rng = random.Random(31)
        for _ in range(10):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            doc = sample_document(rng, schema, max_depth=6)
            if doc is None:
                continue
            assert validate_document(schema, doc).valid

    def test_feasibility_respects_depth(self):
        # A chain A→B→C (simple) needs 4 levels: a, b, c, text.
        schema = Schema(
            {
                "A": complex_type("A", "(b)", {"b": "B"}),
                "B": complex_type("B", "(c)", {"c": "C"}),
                "C": builtin("string"),
            },
            {"a": "A"},
        )
        sampler = TreeSampler(schema, max_depth=8)
        assert not sampler.feasible("A", 3)
        assert sampler.feasible("A", 4)
        assert sampler.feasible("C", 2)
        assert not sampler.feasible("C", 1)

    def test_sample_raises_when_infeasible(self):
        schema = Schema(
            {
                "A": complex_type("A", "(b)", {"b": "B"}),
                "B": builtin("string"),
            },
            {"a": "A"},
        )
        from repro.errors import SchemaError

        with pytest.raises(SchemaError, match="cannot produce"):
            sample_valid_tree(
                random.Random(1), schema, "A", "a", max_depth=2
            )

    def test_recursive_schema_bounded_sampling(self):
        schema = Schema(
            {"N": complex_type("N", "(n?)", {"n": "N"})},
            {"n": "N"},
        )
        rng = random.Random(4)
        for _ in range(10):
            tree = sample_valid_tree(rng, schema, "N", "n", max_depth=5)
            assert validate_element(schema, "N", tree).valid
            # Depth bounded by the budget.
            deepest = max(
                node.depth() for node in tree.iter_nodes()
            )
            assert deepest <= 5
