"""Tests for document edit drivers and schema perturbation."""

import random

from repro.core.updates import UpdateSession
from repro.schema.model import ComplexType
from repro.workloads.generators import random_schema, sample_document
from repro.workloads.mutations import (
    deletable_leaves,
    perturb_schema,
    random_edits,
)
from repro.workloads.purchase_orders import make_purchase_order


class TestRandomEdits:
    def test_edits_applied_and_counted(self):
        rng = random.Random(1)
        session = UpdateSession(make_purchase_order(10))
        applied = random_edits(rng, session, 10)
        assert applied > 0
        assert session.update_count == applied

    def test_result_document_always_materializable(self):
        rng = random.Random(7)
        for seed in range(10):
            session = UpdateSession(make_purchase_order(5))
            random_edits(random.Random(seed), session, 8)
            result = session.result_document()
            assert result.root.label  # materialization succeeded

    def test_no_deletes_mode(self):
        rng = random.Random(3)
        session = UpdateSession(make_purchase_order(5))
        random_edits(rng, session, 15, allow_deletes=False)
        root = session.document.root
        assert not any(
            session.is_deleted(node)
            for element in root.iter()
            for node in [element, *element.children]
        )

    def test_custom_label_palette(self):
        rng = random.Random(5)
        session = UpdateSession(make_purchase_order(3))
        random_edits(rng, session, 10, labels=["zzz"])
        new_labels = {
            element.label
            for element in session.document.root.iter()
            if session.is_inserted(element)
            or (session.is_touched(element)
                and session.proj_old(element) != element.label)
        }
        assert new_labels <= {"zzz"}


class TestDeletableLeaves:
    def test_leaves_have_no_live_children(self):
        session = UpdateSession(make_purchase_order(2))
        for leaf in deletable_leaves(session):
            session.delete(leaf)  # must never raise


class TestPerturbSchema:
    def test_perturbation_changes_something(self):
        rng = random.Random(13)
        changed = 0
        for _ in range(10):
            try:
                schema = random_schema(rng)
            except Exception:
                continue
            perturbed = perturb_schema(rng, schema)
            assert set(perturbed.roots) == set(schema.roots)
            for name in schema.types:
                if name not in perturbed.types:
                    continue
                before = schema.types[name]
                after = perturbed.types[name]
                if isinstance(before, ComplexType) != isinstance(
                    after, ComplexType
                ):
                    changed += 1
                elif isinstance(before, ComplexType):
                    if (before.content.to_source()
                            != after.content.to_source()):
                        changed += 1
                elif before != after:
                    changed += 1
        assert changed >= 5

    def test_perturbed_schema_is_usable(self):
        rng = random.Random(17)
        from repro.schema.registry import SchemaPair

        built = 0
        for _ in range(10):
            try:
                schema = random_schema(rng)
                perturbed = perturb_schema(rng, schema)
                SchemaPair(schema, perturbed)
                built += 1
            except Exception:
                continue
        assert built >= 6
