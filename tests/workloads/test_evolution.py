"""The k-hop purchase-order drift workload keeps its premises."""

import pytest

from repro.core.cast import cast_text
from repro.core.validator import validate_document
from repro.schema.registry import SchemaPair
from repro.workloads.evolution import (
    DRIFT_KINDS,
    conforming_document,
    drift_chain,
    violating_document,
)
from repro.xmltree.parser import parse


def valid_under(schema, text) -> bool:
    document = parse(text, symbols=schema.symbols)
    return validate_document(schema, document, collect_stats=False).valid


class TestDriftChain:
    def test_hop_count_and_names(self):
        schemas, kinds = drift_chain(3)
        assert len(schemas) == 4
        assert kinds == ["tighten"] * 3
        assert schemas[0].name == "po-rev0"
        assert schemas[3].name == "po-rev3"

    def test_plan_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            drift_chain(2, ["tighten"])
        with pytest.raises(ValueError):
            drift_chain(0)
        with pytest.raises(ValueError):
            drift_chain(1, ["transmogrify"])

    def test_every_kind_changes_the_schema(self):
        for kind in DRIFT_KINDS:
            schemas, _ = drift_chain(1, [kind])
            pair = SchemaPair(schemas[0], schemas[1])
            assert pair.source is not pair.target


class TestDocuments:
    def test_conforming_document_valid_everywhere(self):
        schemas, _ = drift_chain(4, ["tighten", "rename", "loosen",
                                     "tighten"])
        text = conforming_document(schemas)
        for schema in schemas:
            assert valid_under(schema, text)

    def test_violating_documents_keep_the_premise(self):
        # Premise-valid (revision 0) but rejected by the chain — the
        # contract both the fuzzer and the bench corpus rely on.
        kinds = ["tighten", "rename", "loosen", "tighten"]
        schemas, kinds = drift_chain(4, kinds)
        for hop in range(len(kinds)):
            text = violating_document(schemas, kinds, hop)
            assert valid_under(schemas[0], text), f"hop {hop}"
            rejected = any(
                not cast_text(
                    SchemaPair(schemas[i], schemas[i + 1]), text
                ).valid
                for i in range(len(kinds))
            )
            assert rejected, f"hop {hop} document tripped no hop"

    def test_violating_hop_out_of_range(self):
        schemas, kinds = drift_chain(2)
        with pytest.raises(ValueError):
            violating_document(schemas, kinds, 2)
