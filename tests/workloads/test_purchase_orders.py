"""Tests for the paper's purchase-order workload."""

from repro.core.validator import validate_document
from repro.workloads.purchase_orders import (
    PAPER_ITEM_COUNTS,
    PAPER_TABLE2_FILE_SIZES,
    PAPER_TABLE3_NODES,
    document_size_bytes,
    make_purchase_order,
    source_schema_experiment1,
    source_schema_experiment2,
    target_schema_experiment1,
    target_schema_experiment2,
)


class TestSchemas:
    def test_experiment1_schemas_differ_in_billto_only(
        self, exp1_source, exp1_target
    ):
        optional = exp1_source.content_dfa("POType")
        required = exp1_target.content_dfa("POType")
        assert optional.accepts(["shipTo", "items"])
        assert not required.accepts(["shipTo", "items"])
        assert required.is_subset_of(optional)

    def test_experiment2_schemas_differ_in_quantity_only(
        self, exp2_source, exp2_target
    ):
        src_quantity = exp2_source.type(
            exp2_source.type("Item").child_types["quantity"]
        )
        tgt_quantity = exp2_target.type(
            exp2_target.type("Item").child_types["quantity"]
        )
        assert src_quantity.validate("150")
        assert not tgt_quantity.validate("150")
        assert tgt_quantity.is_subsumed_by(src_quantity)


class TestDocuments:
    def test_generated_documents_valid_under_both_experiment_sources(
        self, exp1_source, exp2_source
    ):
        doc = make_purchase_order(10)
        assert validate_document(exp1_source, doc).valid
        assert validate_document(exp2_source, doc).valid

    def test_without_billto_valid_only_under_optional_schema(
        self, exp1_source, exp1_target
    ):
        doc = make_purchase_order(5, with_billto=False)
        assert validate_document(exp1_source, doc).valid
        assert not validate_document(exp1_target, doc).valid

    def test_item_count_respected(self):
        for count in (0, 1, 7):
            doc = make_purchase_order(count)
            assert len(doc.root.find("items").children) == count

    def test_quantity_override(self, exp2_target):
        doc = make_purchase_order(4, quantity_of=lambda i: 150)
        assert not validate_document(exp2_target, doc).valid

    def test_document_sizes_grow_linearly(self):
        sizes = {
            count: document_size_bytes(make_purchase_order(count))
            for count in (2, 100, 1000)
        }
        per_item = (sizes[1000] - sizes[100]) / 900
        assert 100 < per_item < 400  # same order as the paper's ~216 B

    def test_paper_constants_consistent(self):
        assert set(PAPER_TABLE2_FILE_SIZES) == set(PAPER_ITEM_COUNTS)
        assert set(PAPER_TABLE3_NODES) == set(PAPER_ITEM_COUNTS)
        for cast_nodes, xerces_nodes in PAPER_TABLE3_NODES.values():
            assert cast_nodes < xerces_nodes
