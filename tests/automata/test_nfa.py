"""Tests for NFAs, subset construction, and reversal."""

import itertools

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, reverse, reverse_dfa
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm


class TestNFABasics:
    def test_simple_acceptance(self):
        nfa = NFA({"a", "b"}, 2, {(0, "a"): {1}}, starts=(0,), finals=(1,))
        assert nfa.accepts(["a"])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts([])

    def test_nondeterministic_branching(self):
        # a then (b|c) via two parallel paths.
        nfa = NFA(
            {"a", "b", "c"},
            4,
            {(0, "a"): {1, 2}, (1, "b"): {3}, (2, "c"): {3}},
            starts=(0,),
            finals=(3,),
        )
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["a", "c"])
        assert not nfa.accepts(["a", "b", "c"])

    def test_epsilon_closure(self):
        nfa = NFA(
            {"a"},
            3,
            {(1, "a"): {2}},
            starts=(0,),
            finals=(2,),
            epsilon={0: {1}},
        )
        assert nfa.epsilon_closure({0}) == {0, 1}
        assert nfa.accepts(["a"])

    def test_multiple_start_states(self):
        nfa = NFA(
            {"a", "b"},
            3,
            {(0, "a"): {2}, (1, "b"): {2}},
            starts=(0, 1),
            finals=(2,),
        )
        assert nfa.accepts(["a"])
        assert nfa.accepts(["b"])

    def test_out_of_alphabet_symbol_rejected(self):
        nfa = NFA({"a"}, 1, {}, starts=(0,), finals=(0,))
        assert not nfa.accepts(["z"])


class TestDeterminize:
    def test_determinize_preserves_language(self):
        nfa = NFA(
            {"a", "b"},
            4,
            {(0, "a"): {1, 2}, (1, "a"): {3}, (2, "b"): {3}},
            starts=(0,),
            finals=(3,),
        )
        dfa = nfa.determinize()
        for word in itertools.chain.from_iterable(
            itertools.product("ab", repeat=n) for n in range(5)
        ):
            assert dfa.accepts(list(word)) == nfa.accepts(list(word))

    def test_result_is_complete(self):
        nfa = NFA({"a", "b"}, 2, {(0, "a"): {1}}, starts=(0,), finals=(1,))
        dfa = nfa.determinize()
        for row in dfa.transitions:
            assert set(row) == {"a", "b"}


class TestReverse:
    def test_reverse_recognizes_reversed_words(self):
        dfa = compile_dfa(pcm("(a,b,c)"), frozenset("abc"))
        rev = reverse(dfa)
        assert rev.accepts(["c", "b", "a"])
        assert not rev.accepts(["a", "b", "c"])

    def test_reverse_dfa_equivalence(self):
        dfa = compile_dfa(pcm("(a,(b|c)*,a?)"), frozenset("abc"))
        rev = reverse_dfa(dfa)
        for word in itertools.chain.from_iterable(
            itertools.product("abc", repeat=n) for n in range(5)
        ):
            word = list(word)
            assert rev.accepts(list(reversed(word))) == dfa.accepts(word)

    def test_double_reverse_is_identity_language(self):
        dfa = compile_dfa(pcm("(a,b?)+"), frozenset("ab"))
        double = reverse_dfa(reverse_dfa(dfa))
        assert double.equivalent(dfa)

    def test_reverse_of_epsilon_language(self):
        rev = reverse_dfa(DFA.epsilon_language({"a"}))
        assert rev.accepts([])
        assert not rev.accepts(["a"])
