"""Tests for string edit scripts and affix tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata.edits import (
    Delete,
    EditScript,
    Insert,
    Replace,
    common_affix_lengths,
)
from repro.errors import UpdateError


class TestCommonAffixLengths:
    def test_identical_strings(self):
        prefix, suffix = common_affix_lengths(list("abc"), list("abc"))
        assert prefix == 3
        assert suffix == 0  # suffix is computed after the prefix

    def test_disjoint_strings(self):
        assert common_affix_lengths(list("abc"), list("xyz")) == (0, 0)

    def test_middle_edit(self):
        prefix, suffix = common_affix_lengths(list("aXb"), list("aYb"))
        assert (prefix, suffix) == (1, 1)

    def test_front_edit(self):
        prefix, suffix = common_affix_lengths(list("Xab"), list("Yab"))
        assert (prefix, suffix) == (0, 2)

    def test_back_edit(self):
        prefix, suffix = common_affix_lengths(list("abX"), list("abY"))
        assert (prefix, suffix) == (2, 0)

    def test_insertion(self):
        prefix, suffix = common_affix_lengths(list("ab"), list("aXb"))
        assert prefix == 1
        assert suffix == 1

    def test_no_overlap(self):
        # "aa" vs "aaa": prefix 2, suffix must not double-count.
        prefix, suffix = common_affix_lengths(list("aa"), list("aaa"))
        assert prefix + suffix <= 2
        assert prefix == 2

    @given(
        st.lists(st.sampled_from("ab"), max_size=8),
        st.lists(st.sampled_from("ab"), max_size=8),
    )
    def test_affix_regions_actually_match(self, original, modified):
        prefix, suffix = common_affix_lengths(original, modified)
        assert original[:prefix] == modified[:prefix]
        if suffix:
            assert original[-suffix:] == modified[-suffix:]
        assert prefix + suffix <= min(len(original), len(modified))


class TestEditScript:
    def test_insert(self):
        script = EditScript(list("abc"))
        script.apply(Insert(1, "X"))
        assert script.modified == list("aXbc")

    def test_delete(self):
        script = EditScript(list("abc"))
        script.apply(Delete(1))
        assert script.modified == list("ac")

    def test_replace(self):
        script = EditScript(list("abc"))
        script.apply(Replace(2, "Z"))
        assert script.modified == list("abZ")

    def test_sequential_positions_refer_to_current_string(self):
        script = EditScript(list("abcd"))
        script.apply(Delete(0))      # bcd
        script.apply(Insert(3, "X"))  # bcdX
        script.apply(Replace(0, "Y"))  # YcdX
        assert script.modified == list("YcdX")

    def test_out_of_range_operations(self):
        script = EditScript(list("ab"))
        with pytest.raises(UpdateError):
            script.apply(Insert(5, "x"))
        with pytest.raises(UpdateError):
            script.apply(Delete(2))
        with pytest.raises(UpdateError):
            script.apply(Replace(-1, "x"))

    def test_untouched_margins_are_sound(self):
        script = EditScript(list("abcdefgh"))
        script.apply(Replace(3, "X"))
        prefix = script.untouched_prefix
        suffix = script.untouched_suffix
        assert script.original[:prefix] == script.modified[:prefix]
        if suffix:
            assert script.original[-suffix:] == script.modified[-suffix:]
        assert prefix <= 3

    @given(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=10),
        st.lists(
            st.tuples(st.integers(0, 20), st.sampled_from("IDR"),
                      st.sampled_from("abc")),
            max_size=6,
        ),
    )
    def test_margins_sound_under_random_scripts(self, original, raw_ops):
        script = EditScript(original)
        for position, kind, symbol in raw_ops:
            n = len(script.current)
            try:
                if kind == "I":
                    script.apply(Insert(position % (n + 1), symbol))
                elif kind == "D" and n:
                    script.apply(Delete(position % n))
                elif kind == "R" and n:
                    script.apply(Replace(position % n, symbol))
            except UpdateError:
                pass
        prefix = script.untouched_prefix
        suffix = script.untouched_suffix
        assert script.original[:prefix] == script.modified[:prefix]
        if suffix:
            assert script.original[-suffix:] == script.modified[-suffix:]
        assert prefix + suffix <= min(
            len(script.original), len(script.modified)
        )
