"""Tests for the DFA core: construction, execution, algebra,
minimization."""

import itertools

import pytest

from repro.automata.dfa import DFA, harmonize
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm


def dfa_of(source, alphabet=("a", "b", "c")):
    return compile_dfa(pcm(source), frozenset(alphabet))


class TestConstruction:
    def test_complete_rows_required(self):
        with pytest.raises(ValueError, match="transition row"):
            DFA({"a", "b"}, [{"a": 0}], 0, (0,))

    def test_out_of_range_successor(self):
        with pytest.raises(ValueError):
            DFA({"a"}, [{"a": 5}], 0, (0,))

    def test_out_of_range_start(self):
        with pytest.raises(ValueError, match="start"):
            DFA({"a"}, [{"a": 0}], 3, (0,))

    def test_from_partial_adds_sink(self):
        dfa = DFA.from_partial({"a", "b"}, 2, {(0, "a"): 1}, 0, (1,))
        assert dfa.num_states == 3
        assert dfa.accepts(["a"])
        assert not dfa.accepts(["b"])
        assert not dfa.accepts(["a", "a"])

    def test_canned_languages(self):
        assert DFA.empty_language({"a"}).is_empty()
        assert DFA.universal_language({"a"}).is_universal()
        eps = DFA.epsilon_language({"a"})
        assert eps.accepts([]) and not eps.accepts(["a"])


class TestExecution:
    def test_run_and_trace(self):
        dfa = dfa_of("(a,b)")
        states = list(dfa.trace(["a", "b"]))
        assert len(states) == 3
        assert states[0] == dfa.start
        assert states[-1] in dfa.finals

    def test_run_from_intermediate_state(self):
        dfa = dfa_of("(a,b)")
        middle = dfa.run(["a"])
        assert dfa.run(["b"], start=middle) in dfa.finals

    def test_accepts(self):
        dfa = dfa_of("(a,(b|c)*)")
        assert dfa.accepts(["a", "b", "c", "b"])
        assert not dfa.accepts(["b"])


class TestAnalyses:
    def test_reachable_states(self):
        dfa = DFA.from_partial({"a"}, 3, {(0, "a"): 1, (2, "a"): 2}, 0, (1,))
        reachable = dfa.reachable_states()
        assert 0 in reachable and 1 in reachable
        assert 2 not in reachable

    def test_coreachable_and_dead(self):
        # State layout: 0 -a-> 1 (final); sink added by from_partial.
        dfa = DFA.from_partial({"a"}, 2, {(0, "a"): 1}, 0, (1,))
        dead = dfa.dead_states()
        assert dfa.run(["a", "a"]) in dead  # the sink
        assert 0 not in dead

    def test_empty_and_universal(self):
        assert dfa_of("(a,b)").is_empty() is False
        assert not dfa_of("(a|b|c)*").is_empty()
        assert dfa_of("(a|b|c)*").is_universal()
        assert not dfa_of("a*").is_universal()  # b rejected

    def test_shortest_accepted(self):
        assert dfa_of("(a,b?,c)").shortest_accepted() == ["a", "c"]
        assert dfa_of("a*").shortest_accepted() == []
        assert DFA.empty_language({"a"}).shortest_accepted() is None

    def test_states_reaching(self):
        dfa = dfa_of("(a,b)")
        reaching = dfa.states_reaching(dfa.finals)
        assert dfa.start in reaching


class TestAlgebra:
    def test_with_alphabet_preserves_language(self):
        small = compile_dfa(pcm("(a,b)"), frozenset({"a", "b"}))
        wide = small.with_alphabet({"a", "b", "z"})
        assert wide.accepts(["a", "b"])
        assert not wide.accepts(["z"])
        assert not wide.accepts(["a", "z"])

    def test_with_alphabet_must_grow(self):
        with pytest.raises(ValueError):
            dfa_of("(a,b)").with_alphabet({"a"})

    def test_complement(self):
        dfa = dfa_of("(a,b)")
        comp = dfa.complement()
        for word in (["a", "b"], ["a"], [], ["c"]):
            assert comp.accepts(word) != dfa.accepts(word)

    def test_intersection_union_difference(self):
        left = dfa_of("(a|b)*")
        right = dfa_of("(a,(a|b|c)*)")
        both = left.intersection(right)
        either = left.union(right)
        only_left = left.difference(right)
        for word in itertools.chain.from_iterable(
            itertools.product("abc", repeat=n) for n in range(4)
        ):
            word = list(word)
            assert both.accepts(word) == (
                left.accepts(word) and right.accepts(word)
            )
            assert either.accepts(word) == (
                left.accepts(word) or right.accepts(word)
            )
            assert only_left.accepts(word) == (
                left.accepts(word) and not right.accepts(word)
            )

    def test_product_requires_harmonized_alphabets(self):
        left = compile_dfa(pcm("a"), frozenset({"a"}))
        right = compile_dfa(pcm("b"), frozenset({"b"}))
        with pytest.raises(ValueError, match="harmonized"):
            left.intersection(right)
        a, b = harmonize(left, right)
        assert a.alphabet == b.alphabet == {"a", "b"}

    def test_subset_relation(self):
        required = dfa_of("(a,b,c)")
        optional = dfa_of("(a,b?,c)")
        assert required.is_subset_of(optional)
        assert not optional.is_subset_of(required)

    def test_equivalence(self):
        assert dfa_of("(a,b?)").equivalent(dfa_of("(a|(a,b))"))
        assert not dfa_of("(a,b?)").equivalent(dfa_of("(a,b)"))

    def test_intersects_with_restriction(self):
        left = dfa_of("(a|b)+")
        right = dfa_of("(b|c)+")
        assert left.intersects(right)  # b+
        assert left.intersects(right, restrict_to={"b"})
        assert not left.intersects(right, restrict_to={"a"})
        assert not left.intersects(right, restrict_to=set())

    def test_intersects_epsilon_case(self):
        assert dfa_of("a*").intersects(dfa_of("b*"), restrict_to=set())


class TestMinimize:
    def test_minimization_reduces_states(self):
        # Build a bloated DFA for a* via subset construction detour.
        from repro.automata.nfa import reverse_dfa

        dfa = dfa_of("(a|b)*,a,(a|b)")  # classic exponential-ish example
        minimal = dfa.minimize()
        assert minimal.num_states <= dfa.num_states
        for word in itertools.chain.from_iterable(
            itertools.product("ab", repeat=n) for n in range(6)
        ):
            assert minimal.accepts(list(word)) == dfa.accepts(list(word))

    def test_minimize_empty_language(self):
        minimal = DFA.empty_language({"a", "b"}).minimize()
        assert minimal.num_states == 1
        assert minimal.is_empty()

    def test_minimize_universal(self):
        big = DFA(
            {"a"},
            [{"a": 1}, {"a": 0}],
            0,
            (0, 1),
        )
        assert big.minimize().num_states == 1

    def test_minimal_automata_equal_up_to_iso(self):
        left = dfa_of("(a,b?,c)").minimize()
        right = dfa_of("((a,c)|(a,b,c))").minimize()
        assert left.num_states == right.num_states
        assert left.equivalent(right)

    def test_trim_unreachable(self):
        dfa = DFA.from_partial(
            {"a"}, 4, {(0, "a"): 1, (2, "a"): 3, (3, "a"): 3}, 0, (1,)
        )
        trimmed = dfa.trim_unreachable()
        assert trimmed.num_states < dfa.num_states
        assert trimmed.accepts(["a"])
