"""Property-based tests of the DFA algebra.

Random DFAs are generated directly (not via regexes), so these cover
the automata layer independent of the Glushkov pipeline: boolean-algebra
laws, minimization canonicality, and the reachability analyses.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA, harmonize
from repro.automata.nfa import reverse_dfa

ALPHABET = ("a", "b")


@st.composite
def dfas(draw, max_states=5):
    n = draw(st.integers(1, max_states))
    rows = [
        {symbol: draw(st.integers(0, n - 1)) for symbol in ALPHABET}
        for _ in range(n)
    ]
    start = draw(st.integers(0, n - 1))
    finals = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return DFA(ALPHABET, rows, start, finals)


def words(max_len=5):
    for length in range(max_len + 1):
        yield from (list(w) for w in itertools.product(ALPHABET,
                                                       repeat=length))


@given(dfas())
@settings(max_examples=120, deadline=None)
def test_complement_involution(dfa):
    assert dfa.complement().complement().equivalent(dfa)


@given(dfas())
@settings(max_examples=120, deadline=None)
def test_complement_flips_membership(dfa):
    comp = dfa.complement()
    for word in words(4):
        assert comp.accepts(word) != dfa.accepts(word)


@given(dfas(), dfas())
@settings(max_examples=80, deadline=None)
def test_de_morgan(left, right):
    union = left.union(right)
    via_complement = (
        left.complement().intersection(right.complement()).complement()
    )
    assert union.equivalent(via_complement)


@given(dfas(), dfas())
@settings(max_examples=80, deadline=None)
def test_intersection_commutes_on_language(left, right):
    forward = left.intersection(right)
    backward = right.intersection(left)
    assert forward.equivalent(backward)


@given(dfas())
@settings(max_examples=120, deadline=None)
def test_minimize_preserves_language(dfa):
    minimal = dfa.minimize()
    for word in words(5):
        assert minimal.accepts(word) == dfa.accepts(word)


@given(dfas())
@settings(max_examples=120, deadline=None)
def test_minimize_is_canonical_in_size(dfa):
    once = dfa.minimize()
    twice = once.minimize()
    assert once.num_states == twice.num_states
    # Equivalent DFAs minimize to the same state count.
    assert dfa.complement().complement().minimize().num_states == \
        once.num_states


@given(dfas(), dfas())
@settings(max_examples=80, deadline=None)
def test_subset_relation_via_membership(left, right):
    included = left.is_subset_of(right)
    witness_exists = any(
        left.accepts(word) and not right.accepts(word) for word in words(5)
    )
    if witness_exists:
        assert not included
    # (no witness up to length 5 does not imply inclusion; one-sided)


@given(dfas(), dfas())
@settings(max_examples=80, deadline=None)
def test_inclusion_is_a_preorder(left, right):
    assert left.is_subset_of(left)
    if left.is_subset_of(right) and right.is_subset_of(left):
        assert left.equivalent(right)


@given(dfas())
@settings(max_examples=80, deadline=None)
def test_dead_states_never_accept(dfa):
    dead = dfa.dead_states()
    for word in words(4):
        trace = list(dfa.trace(word))
        if dfa.accepts(word):
            # No prefix of an accepted word sits in a dead state.
            assert not any(state in dead for state in trace)


@given(dfas())
@settings(max_examples=60, deadline=None)
def test_reverse_dfa_language(dfa):
    rev = reverse_dfa(dfa)
    for word in words(4):
        assert rev.accepts(list(reversed(word))) == dfa.accepts(word)


@given(dfas())
@settings(max_examples=80, deadline=None)
def test_empty_and_universal_against_membership(dfa):
    members = [word for word in words(4) if dfa.accepts(word)]
    if dfa.is_empty():
        assert not members
    if not members:
        # Could still accept longer words; check consistency only.
        pass
    if dfa.is_universal():
        assert len(members) == sum(1 for _ in words(4))


@given(dfas())
@settings(max_examples=60, deadline=None)
def test_shortest_accepted_is_member_and_minimal(dfa):
    shortest = dfa.shortest_accepted()
    if shortest is None:
        assert dfa.is_empty()
        return
    assert dfa.accepts(shortest)
    for word in words(len(shortest) - 1 if shortest else -1):
        assert not dfa.accepts(word) or len(word) >= len(shortest)


@given(dfas(), dfas())
@settings(max_examples=60, deadline=None)
def test_harmonize_preserves_languages(left, right):
    wide_left, wide_right = harmonize(left, right)
    for word in words(4):
        assert wide_left.accepts(word) == left.accepts(word)
        assert wide_right.accepts(word) == right.accepts(word)
