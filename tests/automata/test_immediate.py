"""Tests for immediate decision automata (Definitions 6-8, Theorem 3,
Proposition 3)."""

import itertools

import pytest

from repro.automata.dfa import DFA, harmonize
from repro.automata.immediate import Decision, ImmediateDecisionAutomaton
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm

ABC = frozenset("abc")


def dfa_of(source, alphabet=ABC):
    return compile_dfa(pcm(source), frozenset(alphabet))


class TestFromDfa:
    def test_ia_is_universal_residual(self):
        immed = ImmediateDecisionAutomaton.from_dfa(dfa_of("a,(a|b|c)*"))
        # After the first a the residual language is Σ*.
        result = immed.scan(["a", "b", "c"])
        assert result.accepted
        assert result.decision is Decision.IMMEDIATE_ACCEPT
        assert result.symbols_scanned == 1

    def test_ir_is_empty_residual(self):
        immed = ImmediateDecisionAutomaton.from_dfa(dfa_of("(a,b)"))
        result = immed.scan(["b", "a", "a", "a"])
        assert not result.accepted
        assert result.decision is Decision.IMMEDIATE_REJECT
        assert result.symbols_scanned == 1

    def test_language_preserved(self):
        dfa = dfa_of("(a,(b|c)*,a?)")
        immed = ImmediateDecisionAutomaton.from_dfa(dfa)
        for word in itertools.chain.from_iterable(
            itertools.product("abc", repeat=n) for n in range(5)
        ):
            assert immed.accepts(list(word)) == dfa.accepts(list(word))

    def test_no_early_decision_without_cause(self):
        immed = ImmediateDecisionAutomaton.from_dfa(dfa_of("(a,b)"))
        result = immed.scan(["a", "b"])
        assert result.accepted
        assert result.decision is Decision.ACCEPT_AT_END
        assert result.symbols_scanned == 2

    def test_unknown_symbol_rejects(self):
        immed = ImmediateDecisionAutomaton.from_dfa(dfa_of("(a,b)"))
        result = immed.scan(["a", "zzz", "b"])
        assert not result.accepted

    def test_ia_ir_disjoint_guard(self):
        dfa = dfa_of("(a)")
        with pytest.raises(ValueError, match="disjoint"):
            ImmediateDecisionAutomaton(dfa, ia={0}, ir={0})


class TestFromPair:
    def test_subsumed_residual_accepts_immediately(self):
        source = dfa_of("(a,b?,c)")
        target = dfa_of("(a,b,c)")
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        # After a,b the residuals are both exactly {c}: accept.
        result = immed.scan(["a", "b", "c"])
        assert result.accepted
        assert result.decision is Decision.IMMEDIATE_ACCEPT
        assert result.symbols_scanned == 2

    def test_dead_residual_rejects_immediately(self):
        source = dfa_of("(a,b?,c)")
        target = dfa_of("(a,b,c)")
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        # After a,c (valid in source), target is dead: reject.
        result = immed.scan(["a", "c"])
        assert not result.accepted
        assert result.symbols_scanned == 2

    def test_recognizes_intersection_language(self):
        source = dfa_of("(a|b)+")
        target = dfa_of("(a,(a|b|c)*)")
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        for word in itertools.chain.from_iterable(
            itertools.product("abc", repeat=n) for n in range(5)
        ):
            word = list(word)
            if source.accepts(word):  # the schema-cast promise
                assert immed.accepts(word) == target.accepts(word)

    def test_theorem3_over_source_words(self):
        """Theorem 3: for all s ∈ L(a), c_immed accepts s iff s ∈ L(b)."""
        source = dfa_of("(a,(b|c)*)")
        target = dfa_of("(a,b*,c?)")
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        for word in itertools.chain.from_iterable(
            itertools.product("abc", repeat=n) for n in range(6)
        ):
            word = list(word)
            if source.accepts(word):
                assert immed.accepts(word) == target.accepts(word)

    def test_pair_state_roundtrip(self):
        source, target = harmonize(dfa_of("(a,b)"), dfa_of("(a|b)"))
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        for qa in range(source.num_states):
            for qb in range(target.num_states):
                state = immed.pair_state(qa, qb)
                assert immed.unpair_state(state) == (qa, qb)

    def test_pair_state_bounds(self):
        immed = ImmediateDecisionAutomaton.from_pair(
            dfa_of("(a)"), dfa_of("(a)")
        )
        with pytest.raises(ValueError):
            immed.pair_state(999, 0)

    def test_pair_helpers_rejected_on_plain_automaton(self):
        immed = ImmediateDecisionAutomaton.from_dfa(dfa_of("(a)"))
        with pytest.raises(ValueError):
            immed.pair_state(0, 0)

    def test_scan_from_arbitrary_pair_state(self):
        """The with-modifications scan starts mid-automaton."""
        source = dfa_of("(a,b,c)")
        target = dfa_of("(a,b,c)")
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        qa = source.run(["a"])
        qb = target.run(["a"])
        start = immed.pair_state(qa, qb)
        # Identical automata: the diagonal is subsumed, instant accept.
        result = immed.scan(["b", "c"], start=start)
        assert result.accepted
        assert result.symbols_scanned == 0

    def test_identical_automata_diagonal_in_ia(self):
        dfa = dfa_of("(a,(b|c)*,a?)")
        immed = ImmediateDecisionAutomaton.from_pair(dfa, dfa)
        live = dfa.reachable_states() & dfa.coreachable_states()
        for q in live:
            assert immed.pair_state(q, q) in immed.ia


class TestOptimalityProposition3:
    """c_immed decides at least as early as any sound decision point.

    Brute-force oracle: after prefix p of s ∈ L(a), acceptance is forced
    iff every source-viable continuation of p that a accepts is accepted
    by b (checked semantically via residual-language inclusion), and
    rejection is forced iff no continuation is accepted by both.
    c_immed must decide exactly at the first forced position.
    """

    @pytest.mark.parametrize(
        "src, tgt",
        [
            ("(a,b?,c)", "(a,b,c)"),
            ("(a,(b|c)*)", "(a,b*,c?)"),
            ("(a|b)+", "(a,(a|b)*)"),
            ("(a,b){1,3}", "(a,b)+"),
        ],
    )
    def test_decision_point_is_earliest(self, src, tgt):
        source, target = harmonize(dfa_of(src), dfa_of(tgt))
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        words = [
            list(word)
            for n in range(6)
            for word in itertools.product("abc", repeat=n)
            if source.accepts(word)
        ]
        for word in words:
            result = immed.scan(word)
            oracle = _earliest_decision(source, target, word)
            assert result.accepted == target.accepts(word)
            assert result.symbols_scanned == oracle, (word, result)


def _earliest_decision(source, target, word):
    """First prefix length at which the verdict is information-
    theoretically forced, given the promise word ∈ L(source)."""
    for length in range(len(word) + 1):
        qa = source.run(word[:length])
        qb = target.run(word[:length])
        # Residual languages from (qa, qb).
        forced_accept = _residual_subset(source, qa, target, qb)
        forced_reject = not _residual_intersects(source, qa, target, qb)
        if forced_accept or forced_reject:
            return length
    return len(word)


def _residual_subset(source, qa, target, qb):
    shifted_a = DFA(source.alphabet, source.transitions, qa, source.finals)
    shifted_b = DFA(target.alphabet, target.transitions, qb, target.finals)
    return shifted_a.is_subset_of(shifted_b)


def _residual_intersects(source, qa, target, qb):
    shifted_a = DFA(source.alphabet, source.transitions, qa, source.finals)
    shifted_b = DFA(target.alphabet, target.transitions, qb, target.finals)
    return shifted_a.intersects(shifted_b)
