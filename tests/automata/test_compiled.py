"""Compiled dense tables must be interchangeable with the dict rows."""

import itertools
import random

import pytest

from repro.automata.compiled import (
    CompiledDFA,
    CompiledImmediate,
    SymbolTable,
)
from repro.automata.dfa import harmonize
from repro.automata.immediate import ImmediateDecisionAutomaton
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm


def dfa_of(source, alphabet="abc"):
    return compile_dfa(pcm(source), frozenset(alphabet))


def all_words(alphabet="abc", max_len=5):
    for n in range(max_len + 1):
        for word in itertools.product(alphabet, repeat=n):
            yield list(word)


class TestSymbolTable:
    def test_bijective_and_deterministic(self):
        table = SymbolTable(sorted(["b", "a", "c", "a"]))
        assert table.labels == ("a", "b", "c")
        assert [table.id(label) for label in "abc"] == [0, 1, 2]
        assert [table.label(i) for i in range(3)] == ["a", "b", "c"]
        assert len(table) == 3
        assert "a" in table and "z" not in table

    def test_unknown_labels_encode_to_minus_one(self):
        table = SymbolTable(["a", "b"])
        assert table.encode(["a", "z", "b"]) == [0, -1, 1]
        assert table.id("z") == -1


class TestCompiledDFA:
    @pytest.mark.parametrize(
        "expression",
        ["(a,b,c)", "(a|b)*", "(a,(b|c)*)", "(a?,b+,c{0,2})"],
    )
    def test_agrees_with_dict_rows_on_all_words(self, expression):
        dfa = dfa_of(expression)
        table = SymbolTable(sorted(dfa.alphabet))
        compiled = CompiledDFA.from_dfa(dfa, table)
        for word in all_words():
            assert compiled.accepts(table.encode(word)) == dfa.accepts(word)
            assert compiled.run(table.encode(word)) == dfa.run(word)

    def test_superset_table_marks_foreign_symbols(self):
        # Pair-style compilation: the table covers labels the DFA's
        # alphabet does not; those columns are -1 and reject.
        dfa = dfa_of("(a,b)", "ab")
        table = SymbolTable(["a", "b", "z"])
        compiled = CompiledDFA.from_dfa(dfa, table)
        assert all(row[table.id("z")] == -1 for row in compiled.rows)
        assert compiled.accepts(table.encode(["a", "b"]))
        assert not compiled.accepts(table.encode(["a", "z"]))
        assert compiled.run(table.encode(["a", "z"])) == -1

    def test_unknown_symbol_rejects(self):
        dfa = dfa_of("(a,b)", "ab")
        table = SymbolTable(sorted(dfa.alphabet))
        assert not compiled_accepts(dfa, table, ["a", "q"])

    def test_run_from_resumes_mid_word(self):
        dfa = dfa_of("(a,b,c)")
        table = SymbolTable(sorted(dfa.alphabet))
        compiled = CompiledDFA.from_dfa(dfa, table)
        midway = compiled.run(table.encode(["a"]))
        assert compiled.run_from(midway, table.encode(["b", "c"])) == dfa.run(
            ["a", "b", "c"]
        )


def compiled_accepts(dfa, table, word):
    return CompiledDFA.from_dfa(dfa, table).accepts(table.encode(word))


class TestCompiledImmediate:
    def pair_machines(self, source_expr, target_expr, alphabet="abc"):
        source, target = harmonize(
            dfa_of(source_expr, alphabet), dfa_of(target_expr, alphabet)
        )
        immed = ImmediateDecisionAutomaton.from_pair(source, target)
        table = SymbolTable(sorted(alphabet) + ["zz"])  # superset table
        return immed, CompiledImmediate.from_immediate(immed, table), table

    @pytest.mark.parametrize(
        ("source_expr", "target_expr"),
        [
            ("(a,(b|c)*)", "(a,b*,c{0,2})"),
            ("(a|b)*", "(a|b)*"),
            ("(a,a)", "(b,b)"),
            ("(a,b?,c)", "(a,b,c)"),
        ],
    )
    def test_scan_matches_dict_scan_exactly(self, source_expr, target_expr):
        immed, compiled, table = self.pair_machines(source_expr, target_expr)
        for word in all_words():
            dict_result = immed.scan(word)
            accepted, scanned, early, _state = compiled.scan(
                table.encode(word)
            )
            assert accepted == dict_result.accepted, word
            assert scanned == dict_result.symbols_scanned, word
            assert early == dict_result.early, word
            assert compiled.decide(table.encode(word)) == dict_result.accepted

    def test_unknown_and_foreign_symbols_reject(self):
        # Languages overlap but neither contains the other, so the scan
        # must actually consume symbols (start is neither IA nor IR).
        immed, compiled, table = self.pair_machines("(a,(b|c))", "(a,b)")
        assert compiled.decide(table.encode(["a", "b"]))
        # Not interned at all vs interned-but-foreign: both reject the
        # same way the dict row's missing key does.
        assert not compiled.decide(table.encode(["a", "??"]))
        assert not compiled.decide(table.encode(["a", "zz"]))
        assert immed.scan(["a", "zz"]).accepted is False

    def test_random_words_against_dict_scan(self):
        rng = random.Random(7)
        immed, compiled, table = self.pair_machines(
            "(a,(b|c)*,a?)", "(a,b*,(c|a){0,3})"
        )
        alphabet = ["a", "b", "c", "zz", "??"]
        for _ in range(300):
            word = [
                rng.choice(alphabet) for _ in range(rng.randint(0, 12))
            ]
            dict_result = immed.scan(word)
            accepted, scanned, early, _ = compiled.scan(table.encode(word))
            assert accepted == dict_result.accepted, word
            assert scanned == dict_result.symbols_scanned, word
            assert early == dict_result.early, word


class TestSchemaCompiledCaches:
    def test_schema_compiled_content_dfa_is_cached_and_complete(
        self, exp2_source
    ):
        compiled = exp2_source.compiled_content_dfa("POType")
        assert compiled is exp2_source.compiled_content_dfa(
            "POType"
        )
        # Content DFAs are complete over the schema alphabet: no -1.
        assert all(entry >= 0 for row in compiled.rows for entry in row)

    def test_pair_target_content_marks_source_only_labels(
        self, exp1_pair
    ):
        compiled = exp1_pair.target_content("POType")
        assert compiled.symbols is exp1_pair.symbols
        dict_dfa = exp1_pair.target.content_dfa("POType")
        for label in exp1_pair.symbols.labels:
            sid = exp1_pair.symbols.id(label)
            expected = (
                dict_dfa.transitions[dict_dfa.start].get(label, -1)
                if label in dict_dfa.alphabet
                else -1
            )
            assert compiled.rows[compiled.start][sid] == expected
