"""State budgets on every exponential automaton-construction path."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.immediate import ImmediateDecisionAutomaton
from repro.automata.nfa import NFA
from repro.errors import StateBudgetExceededError
from repro.guards import Limits, limits_scope
from repro.remodel.parser import parse_content_model
from repro.remodel.glushkov import compile_dfa, glushkov_nfa
from repro.workloads.adversarial import (
    exponential_dfa_source,
    repeat_bomb_source,
)


def exponential_nfa(n: int) -> NFA:
    """Glushkov NFA of ``(a|b)*,a,(a|b)^n`` — minimal DFA has 2^n states."""
    return glushkov_nfa(parse_content_model(exponential_dfa_source(n)))


class TestSubsetConstructionBudget:
    def test_explicit_budget(self):
        with pytest.raises(StateBudgetExceededError, match="max_dfa_states"):
            exponential_nfa(16).determinize(max_states=500)

    def test_ambient_budget(self):
        with limits_scope(Limits(max_dfa_states=500)):
            with pytest.raises(StateBudgetExceededError):
                exponential_nfa(16).determinize()

    def test_within_budget_is_unchanged(self):
        dfa = exponential_nfa(4).determinize(max_states=500)
        assert dfa.accepts(["a", "b", "b", "b", "b"])
        assert not dfa.accepts(["b", "b", "b", "b", "b"])

    def test_budget_is_exact_not_approximate(self):
        # A 3-state NFA determinizes to few states; a budget of 1 must
        # still allow the start subset and fail only on growth.
        nfa = exponential_nfa(2)
        with pytest.raises(StateBudgetExceededError):
            nfa.determinize(max_states=1)


class TestProductBudget:
    def _pair(self, n: int) -> tuple[DFA, DFA]:
        a = exponential_nfa(n).determinize(max_states=None)
        b = compile_dfa(parse_content_model(f"(a|b){{0,{2 ** n}}}"))
        return a, b

    def test_product_respects_ambient_budget(self):
        a, b = self._pair(6)
        with limits_scope(Limits(max_dfa_states=10)):
            with pytest.raises(StateBudgetExceededError):
                a.product(b, lambda x, y: x and y)

    def test_intersects_respects_ambient_budget(self):
        a, b = self._pair(6)
        with limits_scope(Limits(max_dfa_states=10)):
            with pytest.raises(StateBudgetExceededError):
                a.intersects(b)


class TestPairAutomatonBudget:
    def test_from_pair_rejects_oversized_product(self):
        a = exponential_nfa(8).determinize(max_states=None)
        b = exponential_nfa(8).determinize(max_states=None)
        with limits_scope(Limits(max_dfa_states=100)):
            with pytest.raises(StateBudgetExceededError, match="pair"):
                ImmediateDecisionAutomaton.from_pair(a, b)


class TestNormalizationBudget:
    def test_positions_capped_by_ambient_budget(self):
        with limits_scope(Limits(max_dfa_states=100)):
            with pytest.raises(StateBudgetExceededError, match="positions"):
                compile_dfa(parse_content_model("(a{0,500})"))

    def test_budget_error_is_a_value_error(self):
        # The historical contract: position-cap failures were
        # ValueError("... positions"); the typed error must still
        # satisfy callers catching that.
        with limits_scope(Limits(max_dfa_states=100)):
            with pytest.raises(ValueError, match="positions"):
                compile_dfa(parse_content_model("(a{0,500})"))

    def test_deep_repeat_nesting_is_typed_not_recursion_error(self):
        # Below MAX_POSITIONS but past the interpreter's stack: the
        # lowering of a{0,50000} nests that many optionals.
        with pytest.raises(StateBudgetExceededError, match="nests too deeply"):
            compile_dfa(parse_content_model(repeat_bomb_source(50_000)))


class TestSchemaCompilationEndToEnd:
    def test_schema_content_compilation_is_guarded(self):
        from repro.schema.model import Schema, complex_type
        from repro.schema.simple import builtin

        schema = Schema(
            {
                "T": complex_type(
                    "T", exponential_dfa_source(16), {"a": "S", "b": "S"}
                ),
                "S": builtin("string"),
            },
            {"t": "T"},
        )
        with limits_scope(Limits(max_dfa_states=200)):
            with pytest.raises(StateBudgetExceededError):
                # The Glushkov automaton of this model is ambiguous, so
                # compilation falls back to subset construction — the
                # guarded path.
                schema.content_dfa("T")
