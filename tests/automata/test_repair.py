"""Tests for edit distance from a string to a regular language."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA
from repro.automata.edits import EditScript
from repro.automata.repair import language_edit_distance, repair_word
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm


def dfa_of(source, alphabet="abc"):
    return compile_dfa(pcm(source), frozenset(alphabet))


class TestDistance:
    def test_member_needs_zero_edits(self):
        dfa = dfa_of("(a,b?,c)")
        distance, ops = language_edit_distance(dfa, ["a", "b", "c"])
        assert distance == 0
        assert ops == []

    def test_single_substitution(self):
        dfa = dfa_of("(a,b)")
        distance, _ = language_edit_distance(dfa, ["a", "c"])
        assert distance == 1

    def test_single_insertion(self):
        dfa = dfa_of("(a,b,c)")
        distance, _ = language_edit_distance(dfa, ["a", "c"])
        assert distance == 1

    def test_single_deletion(self):
        dfa = dfa_of("(a,c)")
        distance, _ = language_edit_distance(dfa, ["a", "b", "c"])
        assert distance == 1

    def test_empty_word_to_required_content(self):
        dfa = dfa_of("(a,b,c)")
        distance, _ = language_edit_distance(dfa, [])
        assert distance == 3

    def test_everything_deleted(self):
        dfa = dfa_of("a*")
        distance, _ = language_edit_distance(dfa, ["b", "b"])
        # Either delete both or substitute both: cost 2.
        assert distance == 2

    def test_empty_language_returns_none(self):
        assert language_edit_distance(DFA.empty_language({"a"}), ["a"]) is None

    def test_unknown_symbols_handled(self):
        dfa = dfa_of("(a,b)")
        distance, _ = language_edit_distance(dfa, ["zzz", "b"])
        assert distance == 1  # substitute zzz -> a


class TestScripts:
    @pytest.mark.parametrize(
        "model, word",
        [
            ("(a,b,c)", []),
            ("(a,b,c)", ["c", "b", "a"]),
            ("(a,(b|c)*)", ["b", "b"]),
            ("(a,b){2}", ["a", "b", "b"]),
            ("a+", ["b", "c", "b"]),
            ("(a?,b?,c?)", ["c", "a"]),
        ],
    )
    def test_script_applies_to_membership(self, model, word):
        dfa = dfa_of(model)
        distance, ops = language_edit_distance(dfa, word)
        script = EditScript(list(word))
        script.apply_all(ops)
        assert dfa.accepts(script.modified), (ops, script.modified)
        assert len(ops) == distance

    def test_repair_word_convenience(self):
        dfa = dfa_of("(a,b,c)")
        assert repair_word(dfa, ["a", "c"]) == ["a", "b", "c"]
        assert repair_word(DFA.empty_language({"a"}), ["a"]) is None

    def test_deterministic_output(self):
        dfa = dfa_of("(a|b),(a|b)")
        first = language_edit_distance(dfa, ["c"])
        second = language_edit_distance(dfa, ["c"])
        assert first == second


class TestOptimality:
    def _bruteforce(self, dfa, word, alphabet, best_known):
        """Breadth-first search over edit scripts up to best_known."""
        if dfa.accepts(word):
            return 0
        frontier = {tuple(word)}
        for depth in range(1, best_known + 1):
            next_frontier = set()
            for candidate in frontier:
                candidate = list(candidate)
                for i in range(len(candidate) + 1):
                    for symbol in alphabet:
                        inserted = candidate[:i] + [symbol] + candidate[i:]
                        next_frontier.add(tuple(inserted))
                for i in range(len(candidate)):
                    deleted = candidate[:i] + candidate[i + 1:]
                    next_frontier.add(tuple(deleted))
                    for symbol in alphabet:
                        replaced = list(candidate)
                        replaced[i] = symbol
                        next_frontier.add(tuple(replaced))
            if any(dfa.accepts(list(candidate))
                   for candidate in next_frontier):
                return depth
            frontier = next_frontier
        return best_known

    @pytest.mark.parametrize(
        "model", ["(a,b)", "(a,(b|c)*,a)", "a{2,3}", "(a|b),(c?)"]
    )
    def test_distance_is_minimal(self, model):
        dfa = dfa_of(model)
        for length in range(4):
            for word in itertools.product("abc", repeat=length):
                word = list(word)
                distance, _ = language_edit_distance(dfa, word)
                if distance <= 2:  # brute force stays tractable
                    expected = self._bruteforce(dfa, word, "abc", 3)
                    assert distance == expected, (model, word)


@given(
    st.lists(st.sampled_from("abc"), max_size=6),
    st.sampled_from(["(a,b?,c)", "(a|b)+", "(a,(b|c)*)", "a{1,3}"]),
)
@settings(max_examples=150, deadline=None)
def test_repair_property(word, model):
    dfa = dfa_of(model)
    distance, ops = language_edit_distance(dfa, word)
    script = EditScript(list(word))
    script.apply_all(ops)
    assert dfa.accepts(script.modified)
    assert distance == len(ops)
    # Zero distance iff already a member.
    assert (distance == 0) == dfa.accepts(word)
