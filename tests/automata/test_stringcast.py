"""Tests for string schema-cast validation (Sections 4.2 and 4.3)."""

import itertools

import pytest

from repro.automata.stringcast import (
    Strategy,
    StringCastValidator,
    StringUpdateRevalidator,
)
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm


def dfa_of(source, alphabet="abc"):
    return compile_dfa(pcm(source), frozenset(alphabet))


def all_words(alphabet="abc", max_len=5):
    for n in range(max_len + 1):
        for word in itertools.product(alphabet, repeat=n):
            yield list(word)


class TestValidateNoModifications:
    def test_paper_billto_example(self):
        validator = StringCastValidator(
            dfa_of("(shipTo,billTo?,items)", ["shipTo", "billTo", "items"]),
            dfa_of("(shipTo,billTo,items)", ["shipTo", "billTo", "items"]),
        )
        with_billto = validator.validate(["shipTo", "billTo", "items"])
        assert with_billto.accepted
        assert with_billto.pair_symbols == 2  # decided after billTo
        without = validator.validate(["shipTo", "items"])
        assert not without.accepted

    def test_agrees_with_target_on_promised_words(self):
        source = dfa_of("(a,(b|c)*)")
        target = dfa_of("(a,b*,c{0,2})")
        validator = StringCastValidator(source, target)
        for word in all_words():
            if source.accepts(word):
                assert validator.validate(word).accepted == target.accepts(
                    word
                )

    def test_equal_languages_decide_instantly(self):
        source = dfa_of("(a,b,c)")
        validator = StringCastValidator(source, dfa_of("(a,b,c)"))
        result = validator.validate(["a", "b", "c"])
        assert result.accepted
        assert result.symbols_scanned == 0

    def test_disjoint_languages_decide_instantly(self):
        validator = StringCastValidator(dfa_of("(a,a)"), dfa_of("(b,b)"))
        result = validator.validate(["a", "a"])
        assert not result.accepted
        assert result.symbols_scanned == 0

    def test_symbols_scanned_bounded_by_length(self):
        validator = StringCastValidator(dfa_of("(a|b)*"), dfa_of("(a)*"))
        for word in all_words("ab", 4):
            result = validator.validate(word)
            assert result.symbols_scanned <= len(word)


class TestValidateModified:
    @pytest.fixture()
    def validator(self):
        return StringCastValidator(dfa_of("(a,(b|c)*)"), dfa_of("(a,b*,c?)"))

    def test_correct_verdicts_all_strategies(self, validator):
        source = validator.source
        target = validator.target
        for original in all_words(max_len=4):
            if not source.accepts(original):
                continue
            for modified in all_words(max_len=4):
                expected = target.accepts(modified)
                for strategy in (
                    Strategy.FORWARD,
                    Strategy.REVERSE,
                    Strategy.PLAIN,
                    Strategy.AUTO,
                ):
                    result = validator.validate_modified(
                        original, modified, strategy=strategy
                    )
                    assert result.accepted == expected, (
                        original,
                        modified,
                        strategy,
                    )

    def test_explicit_affix_hints_respected(self, validator):
        original = ["a", "b", "b"]
        modified = ["a", "c", "b"]
        result = validator.validate_modified(
            original, modified, prefix=1, suffix=1
        )
        assert result.accepted == validator.target.accepts(modified)

    def test_forward_reuses_suffix(self):
        # Single-schema: unchanged tail re-synchronizes instantly.
        revalidator = StringUpdateRevalidator(dfa_of("(a,b)*"))
        original = ["a", "b"] * 20
        modified = ["b", "b"] + original[2:]  # damage the front
        result = revalidator.revalidate(
            original, modified, strategy=Strategy.FORWARD
        )
        assert not result.accepted
        # Decided within the modified window, far less than full length.
        assert result.symbols_scanned <= 4

    def test_reverse_strategy_on_appends(self):
        revalidator = StringUpdateRevalidator(dfa_of("a*,b"))
        original = ["a"] * 30 + ["b"]
        modified = ["a"] * 30 + ["b", "b"]
        result = revalidator.revalidate(original, modified)
        assert result.strategy is Strategy.REVERSE
        assert not result.accepted
        assert result.symbols_scanned <= 4

    def test_plain_strategy_when_everything_changed(self):
        revalidator = StringUpdateRevalidator(dfa_of("(a|b)+"))
        original = ["a", "a", "a"]
        modified = ["b", "b"]
        result = revalidator.revalidate(original, modified)
        assert result.strategy is Strategy.PLAIN
        assert result.accepted

    def test_counters_populated(self, validator):
        original = ["a", "b", "b", "b"]
        modified = ["a", "c", "b", "b"]
        result = validator.validate_modified(
            original, modified, strategy=Strategy.FORWARD
        )
        assert result.target_symbols >= 0
        assert result.symbols_scanned <= len(modified)


class TestSingleSchemaUpdate:
    def test_noop_edit_accepts_immediately(self):
        revalidator = StringUpdateRevalidator(dfa_of("(a,(b|c)*)"))
        word = ["a", "b", "c", "b"]
        result = revalidator.revalidate(word, list(word))
        assert result.accepted
        assert result.symbols_scanned == 0

    def test_exhaustive_agreement(self):
        dfa = dfa_of("(a,b?,c)")
        revalidator = StringUpdateRevalidator(dfa)
        for original in all_words(max_len=4):
            if not dfa.accepts(original):
                continue
            for modified in all_words(max_len=4):
                result = revalidator.revalidate(original, modified)
                assert result.accepted == dfa.accepts(modified), (
                    original,
                    modified,
                )

    def test_broken_promise_does_not_crash(self):
        revalidator = StringUpdateRevalidator(dfa_of("(a,b)"))
        # Original contains a symbol outside the alphabet entirely.
        result = revalidator.validate_modified(
            ["z", "b"], ["a", "b"], strategy=Strategy.PLAIN
        )
        assert result.accepted  # plain scan ignores the bogus original
