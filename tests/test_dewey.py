"""Tests for Dewey decimal numbers and the modification trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dewey import Dewey, DeweyTrie

paths = st.lists(st.integers(min_value=0, max_value=9), max_size=6).map(tuple)


class TestDewey:
    def test_root_is_empty_path(self):
        root = Dewey()
        assert root.is_root()
        assert root.depth == 0
        assert str(root) == ""

    def test_child_extends_path(self):
        node = Dewey((1, 2)).child(0)
        assert node.path == (1, 2, 0)

    def test_parent_of_child_roundtrip(self):
        node = Dewey((3, 1, 4))
        assert node.child(7).parent() == node

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            Dewey().parent()

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Dewey((0, -1))

    def test_negative_child_ordinal_rejected(self):
        with pytest.raises(ValueError):
            Dewey().child(-1)

    def test_parse_roundtrip(self):
        assert Dewey.parse("1.0.2").path == (1, 0, 2)
        assert Dewey.parse("") == Dewey()
        assert Dewey.parse(str(Dewey((5, 6)))) == Dewey((5, 6))

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Dewey.parse("1.x.2")

    def test_ancestor_relationship(self):
        ancestor = Dewey((1,))
        descendant = Dewey((1, 2, 3))
        assert ancestor.is_ancestor_of(descendant)
        assert not descendant.is_ancestor_of(ancestor)
        assert not ancestor.is_ancestor_of(ancestor)

    def test_descendant_or_self(self):
        node = Dewey((1, 2))
        assert node.is_descendant_or_self(node)
        assert node.is_descendant_or_self(Dewey((1,)))
        assert not node.is_descendant_or_self(Dewey((2,)))

    def test_document_order_is_tuple_order(self):
        assert Dewey((0,)) < Dewey((1,))
        assert Dewey((1,)) < Dewey((1, 0))
        assert Dewey((1, 9)) < Dewey((2,))

    def test_hashable_and_eq(self):
        assert len({Dewey((1, 2)), Dewey((1, 2)), Dewey((2, 1))}) == 2

    @given(paths)
    def test_parse_str_roundtrip_property(self, path):
        dewey = Dewey(path)
        assert Dewey.parse(str(dewey)) == dewey

    @given(paths, st.integers(min_value=0, max_value=9))
    def test_child_parent_inverse_property(self, path, ordinal):
        dewey = Dewey(path)
        assert dewey.child(ordinal).parent() == dewey


class TestDeweyTrie:
    def test_empty_trie_reports_nothing(self):
        trie = DeweyTrie()
        assert not trie.contains(Dewey())
        assert not trie.subtree_modified(Dewey())
        assert len(trie) == 0

    def test_exact_containment(self):
        trie = DeweyTrie()
        trie.insert(Dewey((1, 2)))
        assert trie.contains(Dewey((1, 2)))
        assert not trie.contains(Dewey((1,)))
        assert not trie.contains(Dewey((1, 2, 0)))

    def test_subtree_modified_sees_descendants(self):
        trie = DeweyTrie()
        trie.insert(Dewey((0, 3, 1)))
        assert trie.subtree_modified(Dewey())
        assert trie.subtree_modified(Dewey((0,)))
        assert trie.subtree_modified(Dewey((0, 3)))
        assert trie.subtree_modified(Dewey((0, 3, 1)))
        assert not trie.subtree_modified(Dewey((0, 3, 1, 0)))
        assert not trie.subtree_modified(Dewey((1,)))
        assert not trie.subtree_modified(Dewey((0, 2)))

    def test_duplicate_insert_counts_once(self):
        trie = DeweyTrie()
        trie.insert(Dewey((1,)))
        trie.insert(Dewey((1,)))
        assert len(trie) == 1

    def test_marked_paths_in_document_order(self):
        trie = DeweyTrie()
        for path in [(2,), (0, 1), (0,), (1, 5, 2)]:
            trie.insert(Dewey(path))
        assert [d.path for d in trie.marked_paths()] == [
            (0,),
            (0, 1),
            (1, 5, 2),
            (2,),
        ]

    @given(st.lists(paths, max_size=12))
    def test_subtree_modified_matches_bruteforce(self, inserted):
        trie = DeweyTrie()
        for path in inserted:
            trie.insert(Dewey(path))
        queries = inserted + [(), (0,), (1, 1)]
        for query in queries:
            expected = any(
                mark[: len(query)] == tuple(query) for mark in inserted
            )
            assert trie.subtree_modified(Dewey(query)) == expected

    @given(st.lists(paths, max_size=12))
    def test_contains_matches_set(self, inserted):
        trie = DeweyTrie()
        for path in inserted:
            trie.insert(Dewey(path))
        marks = set(inserted)
        assert len(trie) == len(marks)
        for mark in marks:
            assert trie.contains(Dewey(mark))
