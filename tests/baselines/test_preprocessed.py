"""Tests for the document-preprocessing incremental baseline."""

import pytest

from repro.baselines.preprocessed import PreprocessedIncrementalValidator
from repro.core.validator import validate_document
from repro.errors import UpdateError
from repro.schema.dtd import parse_dtd
from repro.xmltree.parser import parse

DTD = """
<!ELEMENT list (item*, summary?)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT summary (#PCDATA)>
"""


@pytest.fixture()
def schema():
    return parse_dtd(DTD, roots=["list"])


@pytest.fixture()
def validator(schema):
    return PreprocessedIncrementalValidator(schema)


class TestPreprocess:
    def test_annotates_every_element(self, validator):
        doc = parse("<list><item>1</item><item>2</item></list>")
        report = validator.preprocess(doc)
        assert report.valid
        assert validator.memory_cells() == 3  # list + 2 items

    def test_memory_grows_with_document(self, validator, schema):
        small = parse("<list><item>1</item></list>")
        validator.preprocess(small)
        small_cells = validator.memory_cells()
        big = parse(
            "<list>" + "<item>1</item>" * 50 + "</list>"
        )
        other = PreprocessedIncrementalValidator(schema)
        other.preprocess(big)
        assert other.memory_cells() > small_cells * 10

    def test_invalid_document_not_annotated(self, validator):
        report = validator.preprocess(parse("<list><wrong/></list>"))
        assert not report.valid
        assert validator.memory_cells() == 0

    def test_updates_require_preprocess(self, validator):
        with pytest.raises(UpdateError, match="preprocess"):
            validator.insert_element(parse("<list/>").root, 0, "item")


class TestIncrementalUpdates:
    def test_valid_insert(self, validator, schema):
        doc = parse("<list><item>1</item></list>")
        validator.preprocess(doc)
        report = validator.insert_element(doc.root, 1, "item")
        assert report.valid
        assert validate_document(schema, doc).valid

    def test_invalid_insert_detected(self, validator):
        doc = parse("<list><item>1</item></list>")
        validator.preprocess(doc)
        report = validator.insert_element(doc.root, 0, "summary")
        assert not report.valid  # summary must come after items

    def test_delete_leaf(self, validator, schema):
        doc = parse("<list><item>1</item><item>2</item></list>")
        validator.preprocess(doc)
        item = doc.root.children[0]
        validator.delete(item.children[0])
        report = validator.delete(item)
        assert report.valid
        assert len(doc.root.children) == 1

    def test_delete_non_leaf_rejected(self, validator):
        doc = parse("<list><item>1</item></list>")
        validator.preprocess(doc)
        with pytest.raises(UpdateError, match="leaf"):
            validator.delete(doc.root.children[0])

    def test_rename_rechecks_parent_and_subtree(self, validator, schema):
        doc = parse("<list><item>1</item></list>")
        validator.preprocess(doc)
        report = validator.rename(doc.root.children[0], "summary")
        assert report.valid
        assert validate_document(schema, doc).valid

    def test_rename_to_invalid_position(self, validator):
        doc = parse(
            "<list><summary>s</summary></list>"
        )
        validator.preprocess(doc)
        # Renaming summary to an unknown label breaks the content model.
        report = validator.rename(doc.root.children[0], "bogus")
        assert not report.valid
