"""Tests for the full-traversal (Xerces-style) baseline."""

from repro.baselines.full import FullValidator
from repro.core.validator import validate_document
from repro.workloads.purchase_orders import make_purchase_order


class TestFullValidator:
    def test_precompiles_content_models(self, exp2_target):
        validator = FullValidator(exp2_target)
        assert set(validator.schema._dfas) >= {
            "POType", "USAddress", "Items", "Item",
        }

    def test_matches_validate_document(self, exp2_target):
        validator = FullValidator(exp2_target)
        doc = make_purchase_order(10)
        assert validator.validate(doc).valid
        bad = make_purchase_order(5, quantity_of=lambda i: 500)
        assert not validator.validate(bad).valid

    def test_visits_every_node(self, exp2_target):
        validator = FullValidator(exp2_target)
        doc = make_purchase_order(20)
        report = validator.validate(doc)
        # Full traversal touches every element and text node.
        assert report.stats.nodes_visited == doc.size()

    def test_work_scales_linearly(self, exp2_target):
        validator = FullValidator(exp2_target)
        small = validator.validate(make_purchase_order(10))
        large = validator.validate(make_purchase_order(100))
        ratio = (
            large.stats.nodes_visited / small.stats.nodes_visited
        )
        assert 5 < ratio < 12  # ~10x items → ~10x work
