"""Fault-injection harness for the resource-guarded pipeline.

Shared machinery for the robustness suites (``tests/core``,
``tests/xmltree``, ``tests/schema``, ``tests/service``): an on-disk
adversarial corpus with the error class each input must produce,
picklable worker fault hooks for
:func:`repro.core.batch.validate_batch`, and raw-socket HTTP clients
that express the wire-level attacks (lying ``Content-Length``,
truncated bodies) the service suite throws at ``repro serve``.

The harness encodes the batch contract under attack:

* every adversarial *document* yields its specific typed
  :class:`~repro.errors.ReproError` subclass — from direct entry points
  as a raised exception, from the batch driver as
  ``DocumentResult.error_type``;
* every injected *worker* fault (hard crash, unexpected exception,
  transient IO error) costs at most that one document — the rest of the
  batch completes normally.

Hooks are module-level functions (not closures/lambdas) so they pickle
under spawn-based multiprocessing, and key off the document *filename*
so tests choose victims by naming files, with no shared state between
parent and workers.
"""

from __future__ import annotations

import os

from repro.errors import (
    DocumentTooDeepError,
    DocumentTooLargeError,
    EntityExpansionError,
    XMLSyntaxError,
)
from repro.guards import Limits
from repro.workloads.adversarial import (
    deep_document,
    entity_bomb,
    garbage_tail_document,
    oversized_document,
    truncated_document,
)

#: Tight limits matched to the miniature corpus below — small enough
#: that every guard trips in milliseconds.
CORPUS_LIMITS = Limits(
    max_document_bytes=10_000,
    max_tree_depth=50,
    max_entity_expansions=100,
)

#: name -> (document text, error class required under CORPUS_LIMITS).
ADVERSARIAL_CASES = {
    "deep-nesting": (deep_document(200), DocumentTooDeepError),
    "entity-bomb": (entity_bomb(500), EntityExpansionError),
    "oversized": (oversized_document(20_000), DocumentTooLargeError),
    "truncated": (truncated_document(), XMLSyntaxError),
    "garbage-tail": (garbage_tail_document(), XMLSyntaxError),
}


def write_corpus(directory) -> dict[str, str]:
    """Write the adversarial corpus; returns ``name -> path``."""
    paths = {}
    for name, (text, _expected) in ADVERSARIAL_CASES.items():
        path = os.path.join(str(directory), f"{name}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        paths[name] = path
    return paths


def expected_error(name: str) -> type:
    return ADVERSARIAL_CASES[name][1]


# -- worker fault hooks (picklable, filename-keyed) ---------------------------


def crash_hook(path: str) -> None:
    """Kill the worker process dead — no exception, no cleanup."""
    if "CRASH" in os.path.basename(path):
        os._exit(17)


def midchunk_crash_hook(path: str) -> None:
    """Kill the worker when it reaches the ``KILLMID`` document.

    The same kill as :func:`crash_hook` under a distinct marker, meant
    for chunk-recovery tests: force one big chunk
    (``chunk_size=len(paths)``) and name the victim mid-list, so the
    worker dies with some documents of its chunk already reported and
    the rest never attempted — the scheduler must recover the tail and
    blame exactly the victim."""
    if "KILLMID" in os.path.basename(path):
        os._exit(23)


def bug_hook(path: str) -> None:
    """An unexpected (non-Repro, non-OS) exception inside the worker."""
    if "BUG" in os.path.basename(path):
        raise RuntimeError("injected defect")


def fuse_oserror_hook(path: str) -> None:
    """Raise ``OSError`` once per ``<path>.fuse`` sidecar file: the
    first attempt consumes the fuse, a retry then succeeds."""
    fuse = path + ".fuse"
    if os.path.exists(fuse):
        os.unlink(fuse)
        raise OSError("transient injected IO failure")


def arm_fuse(path: str) -> None:
    """Plant the sidecar that makes :func:`fuse_oserror_hook` fire once."""
    with open(path + ".fuse", "w", encoding="utf-8") as handle:
        handle.write("armed")


# -- service-level fault clients ----------------------------------------------
#
# Raw-socket HTTP clients for attacks urllib cannot express: lying
# Content-Length headers, truncated bodies, raw byte garbage.  Each
# returns ``(status, payload, headers)`` so service fault suites assert
# the same contract as the happy-path client: a *typed* 4xx/413/429/503
# JSON error — never a hang, never a bare 500.


def http_json(host: str, port: int, method: str, path: str,
              payload=None, timeout: float = 10.0):
    """Plain JSON request; returns ``(status, payload_dict, headers)``."""
    import json
    import urllib.error
    import urllib.request

    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def raw_request(host: str, port: int, head: str, body: bytes = b"",
                *, close_early: bool = False, timeout: float = 10.0):
    """Send raw HTTP bytes; returns ``(status, payload_dict, headers)``.

    ``close_early`` shuts down the write side after ``body`` — the
    truncated-body attack: the header promises more bytes than the
    connection delivers.
    """
    import json
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head.encode("ascii") + body)
        if close_early:
            sock.shutdown(socket.SHUT_WR)
        raw = b""
        while b"\r\n\r\n" not in raw:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        want = int(headers.get("content-length", 0))
        while len(rest) < want:
            chunk = sock.recv(65536)
            if not chunk:
                break
            rest += chunk
        payload = json.loads(rest) if rest else {}
        return status, payload, headers


def post_with_content_length(host: str, port: int, path: str,
                             claimed_length: int, body: bytes = b"",
                             *, close_early: bool = True):
    """POST whose ``Content-Length`` header claims ``claimed_length``
    regardless of how many bytes are actually sent."""
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {claimed_length}\r\n"
        "\r\n"
    )
    return raw_request(host, port, head, body, close_early=close_early)


def post_without_content_length(host: str, port: int, path: str):
    """POST with no ``Content-Length`` header at all (411 expected)."""
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        "\r\n"
    )
    return raw_request(host, port, head, close_early=True)


class KeepAliveClient:
    """A persistent raw-socket HTTP/1.1 client.

    The keep-alive suites need what urllib cannot show: whether two
    requests really travelled one TCP connection, whether the server
    answered ``Connection: close``, and whether pipelined request bytes
    (several requests written before any response is read) all get
    answers.  ``send`` writes one request; ``read_response`` parses one
    response off the shared buffer; interleave them freely.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        import socket

        self.sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self.host = host
        self.port = port
        self._buffer = b""

    @staticmethod
    def encode(method: str, path: str, payload=None,
               headers: dict = None) -> bytes:
        import json

        body = (
            b"" if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            "Host: service",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        return (
            "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body
        )

    def send(self, method: str, path: str, payload=None,
             headers: dict = None) -> None:
        self.sock.sendall(self.encode(method, path, payload, headers))

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def _fill(self) -> bool:
        chunk = self.sock.recv(65536)
        if not chunk:
            return False
        self._buffer += chunk
        return True

    def read_response(self):
        """Parse one response: ``(status, payload_dict, headers)``."""
        import json

        while b"\r\n\r\n" not in self._buffer:
            if not self._fill():
                raise ConnectionError(
                    "server closed before a full response header"
                )
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        want = int(headers.get("content-length", 0))
        while len(self._buffer) < want:
            if not self._fill():
                raise ConnectionError(
                    "server closed mid response body"
                )
        body, self._buffer = self._buffer[:want], self._buffer[want:]
        payload = json.loads(body) if body else {}
        return status, payload, headers

    def server_closed(self, timeout: float = 5.0) -> bool:
        """True once the server closes its side (EOF)."""
        import socket

        self.sock.settimeout(timeout)
        try:
            return self.sock.recv(1) == b""
        except (socket.timeout, TimeoutError):
            return False
        except OSError:
            return True

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "KeepAliveClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
