"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.purchase_orders import _po_xsd, make_purchase_order
from repro.xmltree.serializer import write_file


@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "a.xsd").write_text(
        _po_xsd(billto_optional=True, quantity_max_exclusive=100)
    )
    (tmp_path / "b.xsd").write_text(
        _po_xsd(billto_optional=False, quantity_max_exclusive=100)
    )
    (tmp_path / "list.dtd").write_text(
        "<!ELEMENT list (item*)><!ELEMENT item (#PCDATA)>"
    )
    write_file(make_purchase_order(2), str(tmp_path / "po.xml"))
    write_file(
        make_purchase_order(2, with_billto=False),
        str(tmp_path / "po_nobill.xml"),
    )
    return tmp_path


class TestValidate:
    def test_valid_document(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"),
        ])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document_exit_code(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po_nobill.xml"),
            "--schema", str(workspace / "b.xsd"),
        ])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out

    def test_stats_flag(self, workspace, capsys):
        main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"), "--stats",
        ])
        out = capsys.readouterr().out
        assert "nodes visited" in out

    def test_dtd_schema(self, workspace, capsys):
        doc = workspace / "l.xml"
        doc.write_text("<list><item>x</item></list>")
        code = main([
            "validate", str(doc), "--schema", str(workspace / "list.dtd"),
        ])
        assert code == 0

    def test_dtd_root_restriction(self, workspace):
        doc = workspace / "i.xml"
        doc.write_text("<item>x</item>")
        ok = main([
            "validate", str(doc), "--schema", str(workspace / "list.dtd"),
        ])
        restricted = main([
            "validate", str(doc), "--schema", str(workspace / "list.dtd"),
            "--root", "list",
        ])
        assert ok == 0
        assert restricted == 1


class TestCast:
    def test_valid_cast(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "subtrees skipped" in out

    def test_invalid_cast(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po_nobill.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
        ])
        assert code == 1

    def test_plain_mode_flag(self, workspace):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--no-string-cast",
        ])
        assert code == 0

    def test_profile_parse_breakdown(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--profile-parse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile:" in out
        assert "parse:" in out
        assert "validate:" in out
        assert "total:" in out

    def test_profile_parse_directory_mode(self, workspace, capsys):
        batch_dir = workspace / "batch"
        batch_dir.mkdir()
        write_file(make_purchase_order(1), str(batch_dir / "one.xml"))
        write_file(make_purchase_order(2), str(batch_dir / "two.xml"))
        code = main([
            "cast", str(batch_dir),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--profile-parse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile:" in out

    def test_profile_parse_streaming_breaks_out_phases(
        self, workspace, capsys
    ):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--streaming", "--profile-parse",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "phase profile:" in captured.out
        assert "parse:" in captured.out
        assert "validate:" in captured.out
        # The breakdown comes from the instrumented event pipeline.
        assert "event pipeline" in captured.err

    def test_profile_parse_stream_skip_attributes_skim_time(
        self, workspace, capsys
    ):
        # The a->b pair is subsumption-heavy, so the skim phase must
        # show up on its own line instead of being lumped into parse.
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--stream-skip", "--profile-parse",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "phase profile:" in captured.out
        assert "skip:" in captured.out
        assert "validate:" in captured.out


class TestRepair:
    def test_repair_writes_valid_output(self, workspace, capsys):
        out_path = workspace / "fixed.xml"
        code = main([
            "repair", str(workspace / "po_nobill.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "-o", str(out_path),
        ])
        assert code == 0
        assert "1 repairs" in capsys.readouterr().out
        assert main([
            "validate", str(out_path), "--schema", str(workspace / "b.xsd"),
        ]) == 0

    def test_noop_repair(self, workspace, capsys):
        code = main([
            "repair", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
        ])
        assert code == 0
        assert "already valid" in capsys.readouterr().out


class TestRelationsAndGen:
    def test_relations_output(self, workspace, capsys):
        code = main([
            "relations",
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "R_sub" in out and "USAddress <= USAddress" in out

    def test_gen_po_to_file(self, workspace, capsys):
        out_path = workspace / "gen.xml"
        code = main(["gen-po", "5", "-o", str(out_path)])
        assert code == 0
        assert main([
            "validate", str(out_path), "--schema", str(workspace / "a.xsd"),
        ]) == 0

    def test_gen_po_to_stdout(self, capsys):
        code = main(["gen-po", "1"])
        assert code == 0
        assert "<purchaseOrder>" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "nope.xml"),
            "--schema", str(workspace / "a.xsd"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_schema(self, workspace, capsys):
        bad = workspace / "bad.xsd"
        bad.write_text("<xsd:schema><oops")
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(bad),
        ])
        assert code == 2


class TestGuardKnobs:
    @pytest.mark.parametrize(
        "option,value",
        [
            ("--max-depth", "0"),
            ("--max-bytes", "0"),
            ("--timeout", "0"),
            ("--timeout", "-1"),
            ("--retries", "-1"),
        ],
    )
    def test_bad_values_are_usage_errors(
        self, workspace, capsys, option, value
    ):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"), option, value,
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_depth_limit_trips(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"), "--max-depth", "2",
        ])
        assert code == 2
        assert "max_tree_depth" in capsys.readouterr().err

    def test_validate_size_limit_trips(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"), "--max-bytes", "16",
        ])
        assert code == 2
        assert "max_document_bytes" in capsys.readouterr().err

    def test_generous_limits_pass(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"),
            "--max-depth", "100", "--max-bytes", "1000000",
            "--timeout", "60", "--retries", "2",
        ])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_cast_depth_limit_trips(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--max-depth", "1",
        ])
        assert code == 2
        assert "max_tree_depth" in capsys.readouterr().err

    def test_cast_directory_reports_limit_errors_per_document(
        self, workspace, capsys
    ):
        corpus = workspace / "corpus"
        corpus.mkdir()
        write_file(make_purchase_order(1), str(corpus / "ok.xml"))
        (corpus / "deep.xml").write_text("<a>" * 60 + "</a>" * 60)
        code = main([
            "cast", str(corpus),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--max-depth", "50",
        ])
        out = capsys.readouterr().out
        assert code == 1  # the deep document fails, the rest validate
        assert "deep.xml" in out

    def test_cast_missing_directory_is_an_error(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "no-such-dir" / "x"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStreamingFlags:
    def test_streaming_validate(self, workspace, capsys):
        code = main([
            "validate", str(workspace / "po.xml"),
            "--schema", str(workspace / "a.xsd"), "--streaming",
        ])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_streaming_cast(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--streaming", "--stats",
        ])
        assert code == 0
        assert "subtrees skipped" in capsys.readouterr().out

    def test_streaming_cast_invalid(self, workspace):
        code = main([
            "cast", str(workspace / "po_nobill.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--streaming",
        ])
        assert code == 1

    def test_stream_skip_cast(self, workspace, capsys):
        code = main([
            "cast", str(workspace / "po.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--stream-skip", "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "byte-skipped subtrees" in out
        assert "bytes skipped" in out

    def test_stream_skip_cast_invalid(self, workspace):
        code = main([
            "cast", str(workspace / "po_nobill.xml"),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--stream-skip",
        ])
        assert code == 1

    def test_stream_skip_directory(self, workspace, capsys):
        code = main([
            "cast", str(workspace),
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
            "--stream-skip",
        ])
        assert code == 1  # po_nobill.xml fails the required-billTo cast
        out = capsys.readouterr().out
        assert "1/2" in out or "valid" in out


class TestFleetFlags:
    """Multi-document input, recursion, checkpointing, and the uniform
    usage-error shape for every numeric knob."""

    @pytest.fixture()
    def corpus(self, workspace):
        batch_dir = workspace / "corpus"
        nested = batch_dir / "inner"
        nested.mkdir(parents=True)
        for index in range(3):
            write_file(
                make_purchase_order(1 + index),
                str(batch_dir / f"doc{index}.xml"),
            )
        write_file(make_purchase_order(2), str(nested / "deep.xml"))
        return batch_dir

    def cast(self, workspace, *extra):
        return main([
            "cast", *extra,
            "--source", str(workspace / "a.xsd"),
            "--target", str(workspace / "b.xsd"),
        ])

    def test_recursive_directory(self, workspace, corpus, capsys):
        assert self.cast(workspace, str(corpus), "--recursive") == 0
        assert "4/4 valid" in capsys.readouterr().out

    def test_non_recursive_stays_top_level(
        self, workspace, corpus, capsys
    ):
        assert self.cast(workspace, str(corpus)) == 0
        assert "3/3 valid" in capsys.readouterr().out

    def test_multiple_documents_and_exit_code(
        self, workspace, corpus, capsys
    ):
        # A failing document anywhere makes the whole invocation exit 1.
        code = self.cast(
            workspace, str(corpus), str(workspace / "po_nobill.xml")
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "3/3 valid" in out
        assert "INVALID" in out

    def test_multiple_directories_share_a_fleet(
        self, workspace, corpus, capsys
    ):
        other = workspace / "other"
        other.mkdir()
        write_file(make_purchase_order(1), str(other / "one.xml"))
        code = self.cast(
            workspace, str(corpus), str(other), "--jobs", "2"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 valid (jobs=2)" in out
        assert "1/1 valid (jobs=2)" in out

    def test_checkpoint_then_resume(self, workspace, corpus, capsys):
        journal = str(workspace / "run.ckpt.jsonl")
        assert self.cast(
            workspace, str(corpus), "--checkpoint", journal
        ) == 0
        capsys.readouterr()
        assert self.cast(
            workspace, str(corpus), "--checkpoint", journal, "--resume"
        ) == 0
        out = capsys.readouterr().out
        assert "3 of 3 restored" in out

    def test_resume_requires_checkpoint(self, workspace, corpus, capsys):
        assert self.cast(workspace, str(corpus), "--resume") == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpoint_needs_single_directory(
        self, workspace, corpus, capsys
    ):
        journal = str(workspace / "run.ckpt.jsonl")
        other = workspace / "other2"
        other.mkdir()
        assert self.cast(
            workspace, str(corpus), str(other), "--checkpoint", journal
        ) == 2
        assert "single directory" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "option,value",
        [
            ("--jobs", "0"),
            ("--memo-size", "0"),
            ("--chunk-size", "0"),
            ("--retries", "-1"),
            ("--timeout", "0"),
        ],
    )
    def test_knobs_share_the_usage_error_shape(
        self, workspace, capsys, option, value
    ):
        code = self.cast(
            workspace, str(workspace / "po.xml"), option, value
        )
        assert code == 2
        err = capsys.readouterr().err
        assert f"error: {option} must be " in err
        assert f"got {value}" in err
