"""Tests for the Glushkov construction and one-unambiguity checking."""

import pytest

from repro.errors import AmbiguousContentModelError
from repro.remodel.ast import alt, opt, repeat, seq, star, sym, EPSILON
from repro.remodel.glushkov import (
    check_one_unambiguous,
    compile_dfa,
    glushkov_nfa,
    linearize,
)
from repro.remodel.parser import parse_content_model as pcm


class TestLinearize:
    def test_positions_numbered_in_order(self):
        info = linearize(seq(sym("a"), sym("b"), sym("a")))
        assert info.symbol_at == {1: "a", 2: "b", 3: "a"}

    def test_first_last_of_sequence(self):
        info = linearize(seq(sym("a"), sym("b")))
        assert info.first == {1}
        assert info.last == {2}
        assert info.follow[1] == {2}

    def test_first_of_nullable_prefix(self):
        info = linearize(seq(star(sym("a")), sym("b")))
        assert info.first == {1, 2}

    def test_star_follow_loops(self):
        info = linearize(star(sym("a")))
        assert info.follow[1] == {1}

    def test_alt_unions(self):
        info = linearize(alt(sym("a"), sym("b")))
        assert info.first == {1, 2}
        assert info.last == {1, 2}

    def test_epsilon_nullable(self):
        info = linearize(EPSILON)
        assert info.nullable
        assert info.first == frozenset()


class TestOneUnambiguity:
    @pytest.mark.parametrize(
        "source",
        [
            "(a,b)",
            "(a|b)",
            "(a,b?,c)",
            "(a*,b)",
            "(shipTo,billTo?,items)",
            "(item*)",
            "a{2,4}",
            "(a|b){0,3}",
        ],
    )
    def test_deterministic_models(self, source):
        assert check_one_unambiguous(pcm(source)) is None

    @pytest.mark.parametrize(
        "source, symbol",
        [
            ("(a,b)|(a,c)", "a"),
            ("(a?,a)", "a"),
            ("(a*,a)", "a"),
            ("((a,b)*,a)", "a"),
        ],
    )
    def test_ambiguous_models(self, source, symbol):
        assert check_one_unambiguous(pcm(source)) == symbol


class TestGlushkovNFA:
    def test_accepts_language(self):
        nfa = glushkov_nfa(pcm("(a,(b|c)*,d?)"))
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "b", "c", "d"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["a", "d", "b"])

    def test_state_count_is_positions_plus_one(self):
        nfa = glushkov_nfa(pcm("(a,b,a)"))
        assert nfa.num_states == 4


class TestCompileDFA:
    def test_paper_content_model(self):
        dfa = compile_dfa(pcm("(shipTo,billTo?,items)"))
        assert dfa.accepts(["shipTo", "billTo", "items"])
        assert dfa.accepts(["shipTo", "items"])
        assert not dfa.accepts(["shipTo"])
        assert not dfa.accepts(["billTo", "shipTo", "items"])

    def test_empty_model_accepts_only_epsilon(self):
        dfa = compile_dfa(EPSILON, frozenset({"a"}))
        assert dfa.accepts([])
        assert not dfa.accepts(["a"])

    def test_superalphabet_completion(self):
        dfa = compile_dfa(pcm("(a)"), frozenset({"a", "b"}))
        assert dfa.alphabet == {"a", "b"}
        assert not dfa.accepts(["b"])

    def test_alphabet_must_cover_symbols(self):
        with pytest.raises(ValueError):
            compile_dfa(pcm("(a,b)"), frozenset({"a"}))

    def test_strict_raises_on_ambiguity(self):
        with pytest.raises(AmbiguousContentModelError) as info:
            compile_dfa(pcm("(a,b)|(a,c)"), strict=True)
        assert info.value.symbol == "a"

    def test_lenient_falls_back_to_subset_construction(self):
        dfa = compile_dfa(pcm("(a,b)|(a,c)"))
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["a", "c"])
        assert not dfa.accepts(["a"])

    def test_bounded_repeat(self):
        dfa = compile_dfa(pcm("a{2,4}"))
        for n in range(7):
            assert dfa.accepts(["a"] * n) == (2 <= n <= 4)

    def test_unbounded_repeat(self):
        dfa = compile_dfa(pcm("a{3,}"))
        for n in range(7):
            assert dfa.accepts(["a"] * n) == (n >= 3)

    def test_result_is_minimal(self):
        # (a|b)* over {a,b} is the 1-state universal automaton.
        dfa = compile_dfa(pcm("(a|b)*"))
        assert dfa.num_states == 1

    def test_nested_optionality(self):
        dfa = compile_dfa(pcm("(a?,b?,c?)"))
        assert dfa.accepts([])
        assert dfa.accepts(["a", "c"])
        assert not dfa.accepts(["c", "a"])
