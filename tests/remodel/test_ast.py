"""Tests for the content-model AST."""

import pytest

from repro.remodel.ast import (
    EPSILON,
    Alt,
    Epsilon,
    Repeat,
    Seq,
    Star,
    Symbol,
    alt,
    normalize,
    opt,
    plus,
    repeat,
    seq,
    star,
    sym,
)


class TestNullable:
    def test_epsilon_nullable(self):
        assert EPSILON.nullable()

    def test_symbol_not_nullable(self):
        assert not sym("a").nullable()

    def test_seq_nullable_iff_all(self):
        assert seq(opt(sym("a")), star(sym("b"))).nullable()
        assert not seq(sym("a"), star(sym("b"))).nullable()

    def test_alt_nullable_iff_any(self):
        assert alt(sym("a"), EPSILON).nullable()
        assert not alt(sym("a"), sym("b")).nullable()

    def test_star_always_nullable(self):
        assert star(sym("a")).nullable()

    def test_repeat_nullable(self):
        assert repeat(sym("a"), 0, 3).nullable()
        assert not repeat(sym("a"), 1, 3).nullable()
        assert repeat(opt(sym("a")), 2, 3).nullable()


class TestSymbols:
    def test_symbols_collected(self):
        expr = seq(sym("a"), alt(sym("b"), star(sym("c"))))
        assert expr.symbols() == {"a", "b", "c"}

    def test_epsilon_has_no_symbols(self):
        assert EPSILON.symbols() == frozenset()


class TestConstructors:
    def test_seq_flattens(self):
        expr = seq(sym("a"), seq(sym("b"), sym("c")))
        assert isinstance(expr, Seq)
        assert len(expr.parts) == 3

    def test_seq_drops_epsilon(self):
        assert seq(EPSILON, sym("a"), EPSILON) == sym("a")

    def test_seq_of_nothing_is_epsilon(self):
        assert seq() == EPSILON

    def test_alt_flattens(self):
        expr = alt(sym("a"), alt(sym("b"), sym("c")))
        assert isinstance(expr, Alt)
        assert len(expr.parts) == 3

    def test_alt_single_collapses(self):
        assert alt(sym("a")) == sym("a")

    def test_alt_empty_rejected(self):
        with pytest.raises(ValueError):
            alt()

    def test_star_idempotent(self):
        inner = star(sym("a"))
        assert star(inner) == inner

    def test_star_of_epsilon_is_epsilon(self):
        assert star(EPSILON) == EPSILON

    def test_repeat_one_one_collapses(self):
        assert repeat(sym("a"), 1, 1) == sym("a")

    def test_repeat_validates_bounds(self):
        with pytest.raises(ValueError):
            Repeat(sym("a"), 3, 2)
        with pytest.raises(ValueError):
            Repeat(sym("a"), -1, None)

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            Symbol("")


class TestSourceRendering:
    @pytest.mark.parametrize(
        "expr, source",
        [
            (sym("a"), "a"),
            (EPSILON, "()"),
            (seq(sym("a"), sym("b")), "(a,b)"),
            (alt(sym("a"), sym("b")), "(a|b)"),
            (star(sym("a")), "a*"),
            (opt(sym("a")), "a?"),
            (plus(sym("a")), "a+"),
            (repeat(sym("a"), 2, 5), "a{2,5}"),
            (repeat(sym("a"), 2, None), "a{2,}"),
            (star(seq(sym("a"), sym("b"))), "(a,b)*"),
        ],
    )
    def test_to_source(self, expr, source):
        assert expr.to_source() == source


class TestEqualityHash:
    def test_structural_equality(self):
        assert seq(sym("a"), sym("b")) == seq(sym("a"), sym("b"))
        assert alt(sym("a"), sym("b")) != alt(sym("b"), sym("a"))

    def test_hash_consistent(self):
        exprs = {seq(sym("a"), sym("b")), seq(sym("a"), sym("b"))}
        assert len(exprs) == 1


class TestNormalize:
    def test_core_forms_unchanged(self):
        expr = seq(sym("a"), star(alt(sym("b"), sym("c"))))
        assert normalize(expr) == expr

    def test_unbounded_repeat_lowered(self):
        lowered = normalize(repeat(sym("a"), 2, None))
        assert isinstance(lowered, Seq)
        assert not any(isinstance(p, Repeat) for p in _walk(lowered))

    def test_bounded_repeat_lowered(self):
        lowered = normalize(repeat(sym("a"), 1, 3))
        assert not any(isinstance(p, Repeat) for p in _walk(lowered))

    def test_zero_zero_repeat_is_epsilon(self):
        assert normalize(repeat(sym("a"), 0, 0)) == EPSILON

    def test_expansion_guard(self):
        import repro.remodel.ast as ast_module

        huge = repeat(sym("a"), 0, ast_module.MAX_POSITIONS + 1)
        with pytest.raises(ValueError, match="positions"):
            normalize(huge)


def _walk(expr):
    yield expr
    for part in getattr(expr, "parts", ()) or ():
        yield from _walk(part)
    child = getattr(expr, "child", None)
    if child is not None:
        yield from _walk(child)
