"""Tests for the content-model expression parser."""

import pytest

from repro.errors import ContentModelSyntaxError
from repro.remodel.ast import (
    EPSILON,
    alt,
    opt,
    plus,
    repeat,
    seq,
    star,
    sym,
)
from repro.remodel.parser import parse_content_model as pcm


class TestAtoms:
    def test_bare_name(self):
        assert pcm("shipTo") == sym("shipTo")

    def test_parenthesized_name(self):
        assert pcm("(shipTo)") == sym("shipTo")

    def test_empty_group_is_epsilon(self):
        assert pcm("()") == EPSILON

    def test_pcdata_token_accepted(self):
        assert pcm("(#PCDATA)") == sym("#PCDATA")


class TestOperators:
    def test_sequence(self):
        assert pcm("(a,b,c)") == seq(sym("a"), sym("b"), sym("c"))

    def test_choice(self):
        assert pcm("(a|b|c)") == alt(sym("a"), sym("b"), sym("c"))

    def test_choice_binds_looser_than_sequence(self):
        assert pcm("a,b|c,d") == alt(
            seq(sym("a"), sym("b")), seq(sym("c"), sym("d"))
        )

    def test_postfix_operators(self):
        assert pcm("a?") == opt(sym("a"))
        assert pcm("a*") == star(sym("a"))
        assert pcm("a+") == plus(sym("a"))

    def test_postfix_on_groups(self):
        assert pcm("(a,b)*") == star(seq(sym("a"), sym("b")))
        assert pcm("(a|b)?") == opt(alt(sym("a"), sym("b")))

    def test_stacked_postfix(self):
        assert pcm("a?*") == star(opt(sym("a")))

    def test_paper_example(self):
        assert pcm("(shipTo,billTo?,items)") == seq(
            sym("shipTo"), opt(sym("billTo")), sym("items")
        )


class TestBounds:
    def test_exact_count(self):
        assert pcm("a{3}") == repeat(sym("a"), 3, 3)

    def test_range(self):
        assert pcm("a{2,5}") == repeat(sym("a"), 2, 5)

    def test_open_range(self):
        assert pcm("a{2,}") == repeat(sym("a"), 2, None)

    def test_whitespace_inside_bounds(self):
        assert pcm("a{ 2 , 5 }") == repeat(sym("a"), 2, 5)

    def test_invalid_bounds(self):
        with pytest.raises(ContentModelSyntaxError):
            pcm("a{5,2}")


class TestWhitespaceAndErrors:
    def test_whitespace_tolerated(self):
        assert pcm(" ( a , b ) ") == seq(sym("a"), sym("b"))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ContentModelSyntaxError, match="trailing"):
            pcm("(a,b))")

    def test_unclosed_group(self):
        with pytest.raises(ContentModelSyntaxError):
            pcm("(a,b")

    def test_missing_operand(self):
        with pytest.raises(ContentModelSyntaxError):
            pcm("a,,b")

    def test_empty_input(self):
        with pytest.raises(ContentModelSyntaxError):
            pcm("")

    def test_error_carries_position(self):
        try:
            pcm("(a,?)")
        except ContentModelSyntaxError as error:
            assert error.position >= 0
        else:
            pytest.fail("expected ContentModelSyntaxError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "(a,b)",
            "(a|b)",
            "(shipTo,billTo?,items)",
            "(a,(b|c)*,d?)",
            "a{2,5}",
            "(item{0,})",
            "((a,b)|(c,d))+",
        ],
    )
    def test_parse_render_parse(self, source):
        # Rendering is a fixpoint: Repeat(0,None) renders as `*`, which
        # reparses as Star — same language, same rendering, different
        # node — so the invariant is on the rendered form.
        once = pcm(source)
        again = pcm(once.to_source())
        assert again.to_source() == once.to_source()
