"""Tests for the Brzozowski-derivative matcher."""

import pytest

from repro.remodel.ast import EPSILON, alt, opt, plus, repeat, seq, star, sym
from repro.remodel.derivative import NEVER, derivative, matches
from repro.remodel.parser import parse_content_model as pcm


class TestDerivative:
    def test_symbol_hit_and_miss(self):
        assert derivative(sym("a"), "a").nullable()
        assert derivative(sym("a"), "b") is NEVER

    def test_epsilon_has_no_derivative(self):
        assert derivative(EPSILON, "a") is NEVER

    def test_seq_skips_nullable_head(self):
        expr = seq(opt(sym("a")), sym("b"))
        assert derivative(expr, "b").nullable()

    def test_star_unrolls(self):
        expr = star(sym("a"))
        after = derivative(expr, "a")
        assert matches(after, ["a", "a"])
        assert matches(after, [])


class TestMatches:
    @pytest.mark.parametrize(
        "source, word, expected",
        [
            ("(a,b)", ["a", "b"], True),
            ("(a,b)", ["a"], False),
            ("(a|b)", ["b"], True),
            ("(a|b)", ["a", "b"], False),
            ("a*", [], True),
            ("a*", ["a"] * 5, True),
            ("a+", [], False),
            ("a?", ["a", "a"], False),
            ("(shipTo,billTo?,items)", ["shipTo", "items"], True),
            ("(shipTo,billTo?,items)", ["shipTo", "billTo", "items"], True),
            ("(shipTo,billTo?,items)", ["shipTo", "billTo"], False),
            ("()", [], True),
            ("()", ["a"], False),
        ],
    )
    def test_membership(self, source, word, expected):
        assert matches(pcm(source), word) == expected

    @pytest.mark.parametrize("count, expected", [
        (0, False), (1, False), (2, True), (3, True), (4, True), (5, False),
    ])
    def test_bounded_repeat(self, count, expected):
        assert matches(repeat(sym("a"), 2, 4), ["a"] * count) == expected

    def test_unbounded_repeat(self):
        expr = repeat(sym("a"), 3, None)
        assert not matches(expr, ["a"] * 2)
        assert matches(expr, ["a"] * 3)
        assert matches(expr, ["a"] * 10)

    def test_repeat_of_nullable_child(self):
        # (a?){2,3} accepts 0..3 a's: mandatory occurrences may be ε.
        expr = repeat(opt(sym("a")), 2, 3)
        for n in range(6):
            assert matches(expr, ["a"] * n) == (n <= 3)

    def test_repeat_of_group(self):
        expr = repeat(seq(sym("a"), sym("b")), 1, 2)
        assert matches(expr, ["a", "b"])
        assert matches(expr, ["a", "b", "a", "b"])
        assert not matches(expr, ["a", "b", "a"])

    def test_unknown_symbol_rejects(self):
        assert not matches(pcm("(a,b)"), ["a", "z"])

    def test_plus_of_alt(self):
        expr = plus(alt(sym("a"), sym("b")))
        assert matches(expr, ["b", "a", "b"])
        assert not matches(expr, [])
