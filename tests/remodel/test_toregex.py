"""Tests for DFA → regex extraction and language restriction."""

import itertools

from repro.automata.dfa import DFA
from repro.remodel.derivative import matches
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model as pcm
from repro.remodel.toregex import dfa_to_regex, restrict_language


def _language(dfa, alphabet, max_len=5):
    return {
        word
        for length in range(max_len + 1)
        for word in itertools.product(sorted(alphabet), repeat=length)
        if dfa.accepts(word)
    }


class TestDfaToRegex:
    def test_empty_language_is_none(self):
        dfa = DFA.empty_language({"a"})
        assert dfa_to_regex(dfa) is None

    def test_epsilon_language(self):
        expr = dfa_to_regex(DFA.epsilon_language({"a"}))
        assert expr is not None
        assert matches(expr, [])
        assert not matches(expr, ["a"])

    def test_universal_language(self):
        expr = dfa_to_regex(DFA.universal_language({"a", "b"}))
        assert expr is not None
        for word in (["a"], [], ["b", "a", "b"]):
            assert matches(expr, word)

    def test_roundtrip_examples(self):
        for source in ["(a,b)", "(a|b)*,c", "(a?,b+)", "a{2,3}"]:
            dfa = compile_dfa(pcm(source), frozenset({"a", "b", "c"}))
            expr = dfa_to_regex(dfa)
            assert expr is not None
            recompiled = compile_dfa(expr, frozenset({"a", "b", "c"}))
            assert recompiled.equivalent(dfa), source


class TestRestrictLanguage:
    def test_restriction_filters_symbols(self):
        dfa = compile_dfa(pcm("(a|b)*"), frozenset({"a", "b"}))
        only_a = restrict_language(dfa, frozenset({"a"}))
        assert only_a.accepts(["a", "a"])
        assert not only_a.accepts(["a", "b"])

    def test_restriction_to_nothing(self):
        dfa = compile_dfa(pcm("(a,b)"), frozenset({"a", "b"}))
        nothing = restrict_language(dfa, frozenset())
        assert nothing.is_empty()

    def test_restriction_keeps_epsilon(self):
        dfa = compile_dfa(pcm("a*"), frozenset({"a"}))
        restricted = restrict_language(dfa, frozenset())
        assert restricted.accepts([])

    def test_restriction_equals_intersection_semantics(self):
        dfa = compile_dfa(pcm("(a,(b|c)*)"), frozenset({"a", "b", "c"}))
        restricted = restrict_language(dfa, frozenset({"a", "b"}))
        expected = {
            word
            for word in _language(dfa, {"a", "b", "c"})
            if all(symbol in {"a", "b"} for symbol in word)
        }
        assert _language(restricted, {"a", "b", "c"}) == expected
