"""Property-based cross-checks between the three regex engines.

The compiled DFA (Glushkov or subset construction), the Brzozowski
derivative matcher, and — where used — the Glushkov NFA must agree on
membership for arbitrary expressions and words.  This is the central
correctness net under every content-model check in the system.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.remodel.ast import (
    EPSILON,
    Regex,
    alt,
    normalize,
    repeat,
    seq,
    star,
    sym,
)
from repro.remodel.derivative import matches
from repro.remodel.glushkov import compile_dfa, glushkov_nfa
from repro.remodel.toregex import dfa_to_regex

ALPHABET = ["a", "b", "c"]

symbols = st.sampled_from(ALPHABET).map(sym)


def regexes(depth: int = 3) -> st.SearchStrategy[Regex]:
    base = st.one_of(symbols, st.just(EPSILON))
    if depth == 0:
        return base
    sub = regexes(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda pair: seq(*pair)),
        st.tuples(sub, sub).map(lambda pair: alt(*pair)),
        sub.map(star),
        st.tuples(
            sub,
            st.integers(0, 2),
            st.one_of(st.none(), st.integers(0, 3)),
        ).map(
            lambda triple: repeat(
                triple[0],
                min(triple[1], triple[2]) if triple[2] is not None else triple[1],
                triple[2],
            )
        ),
    )


words = st.lists(st.sampled_from(ALPHABET), max_size=6)


@given(regexes(), words)
@settings(max_examples=300, deadline=None)
def test_dfa_agrees_with_derivatives(expr, word):
    dfa = compile_dfa(expr, frozenset(ALPHABET))
    assert dfa.accepts(word) == matches(expr, word)


@given(regexes(), words)
@settings(max_examples=150, deadline=None)
def test_glushkov_nfa_agrees_with_derivatives(expr, word):
    nfa = glushkov_nfa(expr)
    # The NFA's alphabet may be a subset; out-of-alphabet words reject.
    assert nfa.accepts(word) == matches(expr, word)


@given(regexes(depth=2))
@settings(max_examples=100, deadline=None)
def test_normalize_preserves_language(expr):
    lowered = normalize(expr)
    for length in range(4):
        for word in itertools.product(ALPHABET, repeat=length):
            assert matches(expr, word) == matches(lowered, word)


@given(regexes(depth=2))
@settings(max_examples=60, deadline=None)
def test_dfa_to_regex_roundtrip(expr):
    dfa = compile_dfa(expr, frozenset(ALPHABET))
    back = dfa_to_regex(dfa)
    if back is None:
        assert dfa.is_empty()
        return
    recompiled = compile_dfa(back, frozenset(ALPHABET))
    assert recompiled.equivalent(dfa)


@given(regexes(depth=2), words)
@settings(max_examples=100, deadline=None)
def test_minimized_dfa_preserves_membership(expr, word):
    dfa = compile_dfa(expr, frozenset(ALPHABET))
    assert dfa.minimize().accepts(word) == dfa.accepts(word)
