"""Append-only checkpoint journal for interruptible batch runs.

A million-document run should survive a crash or a Ctrl-C without
re-validating the documents it already finished.  The batch driver
appends one JSON line per completed document to a journal as results
arrive; a later run with ``resume=True`` restores every entry whose
document is unchanged on disk (same ``st_mtime_ns`` and ``st_size``)
and validates only what is left — producing a
:class:`~repro.core.batch.BatchResult` whose verdicts and merged stats
are identical to an uninterrupted run.

File layout (JSONL)::

    {"journal": "repro-batch-checkpoint", "version": 1, "pair_key": "…"}
    {"path": "…", "mtime_ns": 123, "size": 456,
     "result": {…DocumentResult fields…}, "stats": {…}|null}
    …

Design points:

* **Keyed by path + mtime + size.**  A document edited after it was
  validated never restores a stale verdict — it is simply revalidated
  (and re-recorded; the *last* entry for a path wins on load).
* **Pair-bound.**  The header carries the content-addressed key of the
  schema pair (:func:`repro.schema.artifacts.pair_cache_key`); resuming
  against a different pair raises :class:`~repro.errors.BatchError`
  instead of silently reusing verdicts that no longer apply.
* **Torn tails are tolerated.**  Each record is one flushed line; a
  write interrupted mid-line leaves a trailing fragment that fails to
  parse, and loading stops at the first such line — everything before
  it is intact, everything after is revalidated.
* **Generic payloads.**  The journal stores plain dicts; the batch
  layer owns converting :class:`DocumentResult`/``ValidationStats`` to
  and from them, so this module has no import cycle with the driver.
"""

from __future__ import annotations

import json
import os
from typing import Optional, TextIO

from repro.errors import BatchError

JOURNAL_MAGIC = "repro-batch-checkpoint"
JOURNAL_VERSION = 1


def _stat_signature(path: str) -> tuple[Optional[int], Optional[int]]:
    """``(mtime_ns, size)`` of ``path``, or ``(None, None)`` when the
    file cannot be statted (it was deleted mid-run, say) — such an
    entry is recorded but never restored."""
    try:
        status = os.stat(path)
    except OSError:
        return None, None
    return status.st_mtime_ns, status.st_size


class CheckpointJournal:
    """One open journal: restored entries plus an append handle."""

    def __init__(
        self,
        path: str,
        pair_key: str,
        handle: TextIO,
        restored: dict[str, dict],
    ):
        self.path = path
        self.pair_key = pair_key
        self._handle = handle
        #: ``document path -> journal entry`` for every intact record
        #: found at open time (empty for a fresh journal).
        self.restored = restored

    # -- opening ------------------------------------------------------------

    @classmethod
    def fresh(cls, path: str, pair_key: str) -> "CheckpointJournal":
        """Start (or truncate to) an empty journal."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        header = {
            "journal": JOURNAL_MAGIC,
            "version": JOURNAL_VERSION,
            "pair_key": pair_key,
        }
        handle.write(json.dumps(header) + "\n")
        handle.flush()
        return cls(path, pair_key, handle, {})

    @classmethod
    def resume(cls, path: str, pair_key: str) -> "CheckpointJournal":
        """Open an existing journal for resumption.

        A missing file starts fresh (resuming a run that never began
        is just a run).  A present file must carry a matching header;
        a different pair key or an unrecognized layout raises
        :class:`BatchError` — silently mixing verdicts from another
        schema pair would be corruption, not resumption.
        """
        if not os.path.exists(path):
            return cls.fresh(path, pair_key)
        restored: dict[str, dict] = {}
        with open(path, encoding="utf-8") as handle:
            header_line = handle.readline()
            try:
                header = json.loads(header_line)
            except ValueError:
                raise BatchError(
                    f"checkpoint {path!r} is not a batch journal "
                    "(unreadable header)"
                ) from None
            if (
                not isinstance(header, dict)
                or header.get("journal") != JOURNAL_MAGIC
            ):
                raise BatchError(
                    f"checkpoint {path!r} is not a batch journal"
                )
            if header.get("version") != JOURNAL_VERSION:
                raise BatchError(
                    f"checkpoint {path!r} was written by journal version "
                    f"{header.get('version')!r}, expected {JOURNAL_VERSION}"
                )
            if header.get("pair_key") != pair_key:
                raise BatchError(
                    f"checkpoint {path!r} belongs to a different schema "
                    "pair; delete it (or pass a different --checkpoint) "
                    "to start over"
                )
            for line in handle:
                try:
                    entry = json.loads(line)
                except ValueError:
                    break  # torn tail: everything after is revalidated
                if not isinstance(entry, dict) or "path" not in entry:
                    break
                restored[entry["path"]] = entry
        handle = open(path, "a", encoding="utf-8")
        return cls(path, pair_key, handle, restored)

    # -- recording ----------------------------------------------------------

    def record(
        self,
        doc_path: str,
        result: dict,
        stats: Optional[dict],
    ) -> None:
        """Append one completed document (flushed immediately, so an
        interrupt right after never loses it)."""
        mtime_ns, size = _stat_signature(doc_path)
        entry = {
            "path": doc_path,
            "mtime_ns": mtime_ns,
            "size": size,
            "result": result,
            "stats": stats,
        }
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    def entry_is_current(self, entry: dict) -> bool:
        """Does this restored entry still describe the file on disk?"""
        if entry.get("mtime_ns") is None:
            return False
        mtime_ns, size = _stat_signature(entry["path"])
        return (
            mtime_ns is not None
            and mtime_ns == entry.get("mtime_ns")
            and size == entry.get("size")
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
