"""Parametric update programs with static per-pair safety classification.

:mod:`repro.core.updates` records *instance* deltas: "this node was
renamed".  An update *program* is the parametric lift: "every element
labeled ``shipDate`` is deleted", "every ``comment`` becomes ``note``",
"every ``item`` gains a trailing ``auditTag``".  Because the rules only
mention labels — never concrete nodes — their effect on a schema pair
(S, S′) can be analysed *before any document arrives*:

* **always-safe** — for every S-valid document, the transformed document
  is S′-valid.  The verdict is known statically; casting is O(1) with
  zero document traversal (the ≥100x shortcut
  :mod:`benchmarks.bench_chain` gates).
* **never-safe** — for no S-valid document is the transform S′-valid.
  Also O(1), with an invalid verdict.
* **instance-dependent** — the program is lowered onto the document's
  :class:`~repro.core.updates.UpdateSession` and the paper's
  cast-with-modifications walk decides.

The analysis works on content-model automata.  A program induces a word
transform on every element's child word: deletions erase a symbol
(ε-transitions), renames relabel it, inserts append/prepend it — so the
transformed child language is a rational image ``t(L_τ)`` computed by an
ε-NFA subset construction (:func:`_image_dfa`).  Always-safety is the
greatest-fixpoint style descent: ``t(L_τ) ⊆ L(regexp_τ′)`` at every
reachable (label, τ, τ′) triple, attribute obligations carried over,
inserted (empty) elements valid under their target type.  Never-safety
is the root-level dual: the image and the target content are disjoint at
every permitted root.  Both sides are conservative in the sound
direction — a "maybe" degrades to instance-dependent, never to a wrong
O(1) verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Union

from repro.automata.dfa import DFA, harmonize
from repro.core.result import ValidationReport
from repro.errors import UnsafeUpdateProgramError, UpdateError
from repro.schema.model import ComplexType, Schema, is_complex, is_simple
from repro.schema.registry import SchemaPair


# -- rules -------------------------------------------------------------------


@dataclass(frozen=True)
class DeleteRule:
    """Delete every element labeled ``label`` (with its whole subtree)."""

    label: str

    def to_wire(self) -> dict:
        return {"op": "delete", "label": self.label}


@dataclass(frozen=True)
class RenameRule:
    """Relabel every element labeled ``old`` to ``new``."""

    old: str
    new: str

    def to_wire(self) -> dict:
        return {"op": "rename", "from": self.old, "to": self.new}


@dataclass(frozen=True)
class InsertRule:
    """Insert a fresh empty ``label`` element under every element
    labeled ``parent`` — at the front (``position="first"``) or the back
    (``"last"``) of its children."""

    label: str
    parent: str
    position: str = "last"

    def __post_init__(self) -> None:
        if self.position not in ("first", "last"):
            raise UpdateError(
                f"insert position must be 'first' or 'last', "
                f"got {self.position!r}"
            )

    def to_wire(self) -> dict:
        return {
            "op": "insert",
            "label": self.label,
            "parent": self.parent,
            "position": self.position,
        }


Rule = Union[DeleteRule, RenameRule, InsertRule]


@dataclass(frozen=True)
class UpdateProgram:
    """An ordered list of parametric rules.

    Rule labels refer to the *original* document: deletes and renames
    match elements by their pre-update label, and insert rules choose
    parents by pre-update label too (freshly inserted elements are never
    re-matched).  Deletes are applied first, then renames, then inserts
    in rule order — the same canonical order the static analysis models.
    """

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        deleted = {r.label for r in self.rules if isinstance(r, DeleteRule)}
        renamed: dict[str, str] = {}
        for rule in self.rules:
            if isinstance(rule, RenameRule):
                if rule.old in deleted:
                    raise UpdateError(
                        f"label {rule.old!r} is both deleted and renamed"
                    )
                if rule.old in renamed and renamed[rule.old] != rule.new:
                    raise UpdateError(
                        f"label {rule.old!r} renamed to two different labels"
                    )
                renamed[rule.old] = rule.new

    # Derived views used by both the analysis and the instance lowering.

    @property
    def deletes(self) -> frozenset[str]:
        return frozenset(
            r.label for r in self.rules if isinstance(r, DeleteRule)
        )

    @property
    def renames(self) -> dict[str, str]:
        return {
            r.old: r.new for r in self.rules if isinstance(r, RenameRule)
        }

    def inserts_under(self, parent_label: str) -> list[InsertRule]:
        return [
            r
            for r in self.rules
            if isinstance(r, InsertRule) and r.parent == parent_label
        ]

    def post_label(self, label: str) -> Optional[str]:
        """The label after the program runs, or None if deleted."""
        if label in self.deletes:
            return None
        return self.renames.get(label, label)

    def to_wire(self) -> list[dict]:
        return [rule.to_wire() for rule in self.rules]

    @classmethod
    def from_wire(cls, payload) -> "UpdateProgram":
        """Decode the wire shape (a list of op objects); raises
        :class:`UpdateError` on malformed input."""
        if not isinstance(payload, list):
            raise UpdateError("update program must be a list of rules")
        rules: list[Rule] = []
        for index, entry in enumerate(payload):
            if not isinstance(entry, dict):
                raise UpdateError(f"program rule {index} must be an object")
            op = entry.get("op")
            try:
                if op == "delete":
                    rules.append(DeleteRule(str(entry["label"])))
                elif op == "rename":
                    rules.append(
                        RenameRule(str(entry["from"]), str(entry["to"]))
                    )
                elif op == "insert":
                    rules.append(
                        InsertRule(
                            str(entry["label"]),
                            str(entry["parent"]),
                            str(entry.get("position", "last")),
                        )
                    )
                else:
                    raise UpdateError(
                        f"program rule {index}: unknown op {op!r}"
                    )
            except KeyError as missing:
                raise UpdateError(
                    f"program rule {index} ({op}): missing field {missing}"
                ) from None
        return cls(tuple(rules))


class Classification(Enum):
    """Static safety of a program for one schema pair."""

    ALWAYS_SAFE = "always-safe"
    NEVER_SAFE = "never-safe"
    INSTANCE_DEPENDENT = "instance-dependent"


# -- content-word image ------------------------------------------------------


def _image_dfa(
    content: DFA,
    deletes: frozenset[str],
    renames: dict[str, str],
    prefix: Sequence[str],
    suffix: Sequence[str],
) -> DFA:
    """The image of a content language under the program's word
    transform: deleted symbols erased, renamed symbols relabeled, the
    insert prefix/suffix concatenated.  Built as an ε-NFA over the
    post-transform alphabet and determinized by subset construction.
    """
    out_alphabet = {
        renames.get(symbol, symbol)
        for symbol in content.alphabet
        if symbol not in deletes
    }
    out_alphabet.update(prefix)
    out_alphabet.update(suffix)

    # ε-NFA states: prefix chain (0..len) | base DFA states | suffix chain.
    base = len(prefix) + 1 if prefix else 0
    n_base = content.num_states
    epsilon: dict[int, set[int]] = {}
    labelled: dict[int, dict[str, set[int]]] = {}

    def add(source: int, symbol: Optional[str], target: int) -> None:
        if symbol is None:
            epsilon.setdefault(source, set()).add(target)
        else:
            labelled.setdefault(source, {}).setdefault(symbol, set()).add(
                target
            )

    if prefix:
        for position, symbol in enumerate(prefix):
            add(position, symbol, position + 1)
        add(len(prefix), None, base + content.start)
    for state in range(n_base):
        for symbol, target in content.transitions[state].items():
            if symbol in deletes:
                add(base + state, None, base + target)
            else:
                add(base + state, renames.get(symbol, symbol), base + target)
    suffix_base = base + n_base
    finals: set[int] = set()
    if suffix:
        for final in content.finals:
            add(base + final, None, suffix_base)
        for position, symbol in enumerate(suffix):
            add(suffix_base + position, symbol, suffix_base + position + 1)
        finals.add(suffix_base + len(suffix))
    else:
        finals.update(base + final for final in content.finals)

    def closure(states: frozenset[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(states)
        while stack:
            for target in epsilon.get(stack.pop(), ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    start_state = 0 if prefix else base + content.start
    start = closure(frozenset((start_state,)))
    index: dict[frozenset[int], int] = {start: 0}
    order: list[frozenset[int]] = [start]
    transitions: dict[tuple[int, str], int] = {}
    cursor = 0
    while cursor < len(order):
        current = order[cursor]
        current_id = index[current]
        cursor += 1
        moves: dict[str, set[int]] = {}
        for state in current:
            for symbol, targets in labelled.get(state, {}).items():
                moves.setdefault(symbol, set()).update(targets)
        for symbol, targets in moves.items():
            successor = closure(frozenset(targets))
            if successor not in index:
                index[successor] = len(order)
                order.append(successor)
            transitions[(current_id, symbol)] = index[successor]
    dfa_finals = [
        index[subset]
        for subset in order
        if any(state in finals for state in subset)
    ]
    return DFA.from_partial(
        out_alphabet or {"#none"},
        len(order),
        transitions,
        0,
        dfa_finals,
    ).minimize()


def _insert_affixes(
    program: UpdateProgram, parent_label: str
) -> tuple[list[str], list[str]]:
    """The inserted child labels under ``parent_label``, split into the
    word prefix and suffix the rule order produces (each ``first``
    insert lands in front of the previous one; ``last`` inserts stack at
    the back in order)."""
    prefix: list[str] = []
    suffix: list[str] = []
    for rule in program.inserts_under(parent_label):
        if rule.position == "first":
            prefix.insert(0, rule.label)
        else:
            suffix.append(rule.label)
    return prefix, suffix


# -- classification ----------------------------------------------------------


def classify(pair: SchemaPair, program: UpdateProgram) -> Classification:
    """Statically classify ``program`` for ``pair`` (memoized per pair).

    Sound in both O(1) directions under the revalidation premise (the
    document is valid under the source schema): ``ALWAYS_SAFE`` is
    returned only when every source-valid document transforms to a
    target-valid one, ``NEVER_SAFE`` only when none does.
    """
    cache = getattr(pair, "_program_classes", None)
    if cache is None:
        cache = pair._program_classes = {}
    cached = cache.get(program)
    if cached is None:
        if _always_safe(pair, program):
            cached = Classification.ALWAYS_SAFE
        elif _never_safe(pair, program):
            cached = Classification.NEVER_SAFE
        else:
            cached = Classification.INSTANCE_DEPENDENT
        cache[program] = cached
    return cached


def classify_rule(pair: SchemaPair, rule: Rule) -> Classification:
    """Classify a single rule (a one-rule program)."""
    return classify(pair, UpdateProgram((rule,)))


def _always_safe(pair: SchemaPair, program: UpdateProgram) -> bool:
    source, target = pair.source, pair.target
    if not source.roots:
        return False
    stack: list[tuple[str, str, str]] = []
    for label, source_type in source.roots.items():
        post = program.post_label(label)
        if post is None:
            return False  # some document's root would be deleted
        target_type = target.root_type(post)
        if target_type is None:
            return False
        stack.append((label, source_type, target_type))
    visited: set[tuple[str, str, str]] = set(stack)
    while stack:
        triple = stack.pop()
        label, source_type, target_type = triple
        source_decl = source.types[source_type]
        target_decl = target.types[target_type]
        if is_simple(source_decl):
            # Text is untouched by structural rules; inserting under a
            # text-only element can never stay simple-valid, and a
            # complex target would see the (unchanged) text content.
            if program.inserts_under(label):
                return False
            if not is_simple(target_decl):
                return False
            if not source_decl.is_subsumed_by(target_decl):
                return False
            continue
        if not is_complex(target_decl):
            return False  # transformed element keeps element children
        prefix, suffix = _insert_affixes(program, label)
        image = _image_dfa(
            source.content_dfa(source_type),
            program.deletes,
            program.renames,
            prefix,
            suffix,
        )
        if not image.is_subset_of(target.content_dfa(target_type)):
            return False
        if not _attributes_safe(source_decl, target_decl, source, target):
            return False
        # Surviving children keep their subtrees: recurse per label.
        for child_label in sorted(source.useful_symbols(source_type)):
            post = program.post_label(child_label)
            if post is None:
                continue  # deleted with its subtree — nothing below
            child_source = source_decl.child_types.get(child_label)
            child_target = target_decl.child_types.get(post)
            if child_source is None:
                continue
            if child_target is None:
                return False
            child = (child_label, child_source, child_target)
            if child not in visited:
                visited.add(child)
                stack.append(child)
        # Inserted children are fresh empty elements: they must be
        # valid under their target type as-is.
        for inserted in prefix + suffix:
            inserted_type = target_decl.child_types.get(inserted)
            if inserted_type is None:
                return False
            if not _empty_element_valid(target, inserted_type):
                return False
    return True


def _attributes_safe(
    source_decl: ComplexType,
    target_decl: ComplexType,
    source: Schema,
    target: Schema,
) -> bool:
    """Attributes are untouched by structural rules: every assignment
    the source permits must be permitted by the target."""
    for name, decl in target_decl.attributes.items():
        if decl.required:
            mirror = source_decl.attributes.get(name)
            if mirror is None or not mirror.required:
                return False
    for name, decl in source_decl.attributes.items():
        mirror = target_decl.attributes.get(name)
        if mirror is None:
            return False  # target rejects it as undeclared when present
        source_value = source.types[decl.type_name]
        target_value = target.types[mirror.type_name]
        if not source_value.is_subsumed_by(target_value):
            return False
    return True


def _empty_element_valid(target: Schema, type_name: str) -> bool:
    declaration = target.types[type_name]
    if is_simple(declaration):
        return declaration.validate("")
    assert is_complex(declaration)
    if declaration.required_attributes():
        return False
    return target.content_dfa(type_name).accepts(())


def _never_safe(pair: SchemaPair, program: UpdateProgram) -> bool:
    """Sufficient root-level condition: every permitted source root is
    guaranteed invalid after the transform."""
    source, target = pair.source, pair.target
    if not source.roots:
        return False
    for label, source_type in source.roots.items():
        post = program.post_label(label)
        if post is None:
            continue  # root deleted — guaranteed invalid
        target_type = target.root_type(post)
        if target_type is None:
            continue  # not a permitted target root — guaranteed invalid
        source_decl = source.types[source_type]
        target_decl = target.types[target_type]
        if is_simple(source_decl):
            if program.inserts_under(label):
                continue  # simple-valid text plus a child element
            if is_simple(target_decl):
                if source_decl.is_disjoint_from(target_decl):
                    continue
            return False  # some document might survive
        prefix, suffix = _insert_affixes(program, label)
        image = _image_dfa(
            source.content_dfa(source_type),
            program.deletes,
            program.renames,
            prefix,
            suffix,
        )
        if is_simple(target_decl):
            if not image.accepts(()):
                continue  # always keeps element children — invalid
            return False
        left, right = harmonize(image, target.content_dfa(target_type))
        if left.intersection(right).is_empty():
            continue  # no transformed child word can ever conform
        return False
    return True


# -- instance lowering -------------------------------------------------------


def apply_program(session, program: UpdateProgram) -> int:
    """Lower the parametric program onto one document's update session.

    Matching is by *original* label (see :class:`UpdateProgram`);
    returns the number of instance operations recorded.
    """
    document = session.document
    elements = _preorder(document.root)
    before = session.update_count
    deletes = program.deletes
    if deletes:
        doomed = [e for e in elements if e.label in deletes]
        for element in doomed:
            if not session.is_deleted(element):
                _delete_subtree(session, element)
    renames = program.renames
    if renames:
        for element in elements:
            if session.is_deleted(element):
                continue
            new_label = renames.get(element.label)
            if new_label is not None:
                session.rename(element, new_label)
    for rule in program.rules:
        if not isinstance(rule, InsertRule):
            continue
        for element in elements:
            if session.is_deleted(element):
                continue
            original = session.proj_old(element)
            if original != rule.parent:
                continue
            if rule.position == "first":
                session.insert_first(element, rule.label)
            else:
                session.insert_element(
                    element, len(element.children), rule.label
                )
    return session.update_count - before


def _preorder(root) -> list:
    from repro.xmltree.dom import Element

    found: list = []
    stack = [root]
    while stack:
        node = stack.pop()
        found.append(node)
        stack.extend(
            child
            for child in reversed(node.children)
            if isinstance(child, Element)
        )
    return found


def _delete_subtree(session, element) -> None:
    """Bottom-up deletion (the session only deletes childless nodes)."""
    from repro.xmltree.dom import Element

    for child in list(element.children):
        if session.is_deleted(child):
            continue
        if isinstance(child, Element):
            _delete_subtree(session, child)
        else:
            session.delete(child)
    session.delete(element)


# -- verdicts ----------------------------------------------------------------


def cast_text_with_program(
    pair: SchemaPair,
    program: UpdateProgram,
    text: Optional[str] = None,
    *,
    limits=None,
    require_safe: bool = False,
) -> tuple[ValidationReport, Classification]:
    """The program-aware cast: O(1) verdict when the classification
    allows, the paper's cast-with-modifications walk otherwise.

    ``require_safe=True`` turns a non-always-safe program into
    :class:`UnsafeUpdateProgramError` instead of touching the document —
    the contract callers use to *guarantee* they never pay a traversal.
    ``text`` may be None only for statically decided programs.
    """
    classification = classify(pair, program)
    if classification is Classification.ALWAYS_SAFE:
        return ValidationReport.success(), classification
    if require_safe:
        raise UnsafeUpdateProgramError(
            f"update program is {classification.value} for pair "
            f"{pair.source.name or 'source'!r} -> "
            f"{pair.target.name or 'target'!r}; a statically safe "
            "program was required",
            classification.value,
        )
    if classification is Classification.NEVER_SAFE:
        return (
            ValidationReport.failure(
                "update program can never produce a target-valid document"
            ),
            classification,
        )
    if text is None:
        raise UpdateError(
            "instance-dependent program needs a document to decide"
        )
    from repro.core.castmods import CastWithModificationsValidator
    from repro.core.updates import UpdateSession
    from repro.xmltree.parser import parse

    document = parse(text, limits=limits, symbols=pair.symbols)
    session = UpdateSession(document)
    apply_program(session, program)
    validator = CastWithModificationsValidator(
        pair, collect_stats=False, limits=limits
    )
    return validator.validate(session), classification
