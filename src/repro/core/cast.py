"""Schema cast validation without modifications (Section 3.2).

Given a :class:`~repro.schema.registry.SchemaPair` (the static
preprocessing of source schema S and target schema S') and a document
known valid under S, :class:`CastValidator` decides validity under S' by
validating against both schemas in parallel:

* subtree under a subsumed pair ``τ ≤ τ'`` → **skip** (valid by
  Definition 2);
* subtree under a disjoint pair ``τ ⊘ τ'`` → **fail immediately**
  (Definition 3);
* otherwise verify the node's content against ``regexp_τ'`` — by
  default with the Section 4 pair immediate-decision automaton, which
  may stop scanning the child-label string early — and recurse into the
  children under the child-type pairs.

``use_string_cast=False`` reverts the content check to a plain run of
the target content DFA, matching the paper's modified-Xerces prototype
("we do not use the algorithms of Section 4 ... to perform a fair
comparison"); benchmarks exercise both configurations.

``collect_stats=False`` trades the Table-3 instrumentation for
throughput: the traversal runs the compiled dense-table automata of
:mod:`repro.automata.compiled` (interned labels, tuple-row scans), skips
the counter updates, and allocates a :class:`ValidationReport` only on
failure.  Verdicts are identical in both modes; only the stats mode can
report counters.

If the document is *not* valid under S (a broken promise), the verdict
may be wrong in either direction — same contract as the paper.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.core.memo import ValidationMemo
from repro.core.result import ValidationReport, ValidationStats
from repro.errors import DocumentTooDeepError
from repro.guards import Deadline, Limits, resolve_limits
from repro.schema.model import ComplexType, SimpleType
from repro.schema.registry import SchemaPair
from repro.xmltree.dom import Document, Element, Text


class CastValidator:
    """Revalidates S-valid documents against S' using R_sub/R_dis.

    ``limits`` (ambient defaults when ``None``) guards the traversal:
    element nesting is depth-bounded (documents from the guarded parser
    already satisfy it, but programmatically built trees may not) and
    each validated document may carry a wall-clock deadline.  With the
    default limits both guards cost one comparison per element.
    """

    def __init__(
        self,
        pair: SchemaPair,
        *,
        use_string_cast: bool = True,
        collect_stats: bool = True,
        limits: Optional[Limits] = None,
        memo: Optional[ValidationMemo] = None,
    ):
        self.pair = pair
        self.use_string_cast = use_string_cast
        self.collect_stats = collect_stats
        #: Optional verdict cache: a subtree whose ``(source type,
        #: target type, structural hash)`` already validated is skipped
        #: like a subsumed pair.  Bound to ``pair`` so one memo cannot
        #: serve two different schema pairs.
        self._memo = memo.bind(pair) if memo is not None else None
        self.limits = resolve_limits(limits)
        self._max_depth = (
            self.limits.max_tree_depth
            if self.limits.max_tree_depth is not None
            else sys.maxsize
        )
        self._deadline: Optional[Deadline] = None
        self._interned = False

    # -- entry points -----------------------------------------------------

    def validate(
        self, document: Document, *, deadline: Optional[Deadline] = None
    ) -> ValidationReport:
        """Decide target-validity of a source-valid document.

        ``deadline`` lets a caller (the batch driver) share one token
        across parse and validation; otherwise a fresh one is started
        from ``limits.deadline_seconds`` (``None`` → no deadline).

        A document lexed against this pair's symbol table
        (``parse(..., symbols=pair.symbols)``) runs the fast path on
        the interned ``Element.sym`` ids — no per-node string hashing.
        """
        return self.validate_root(
            document.root,
            deadline=deadline,
            interned=document.symbols is self.pair.symbols,
        )

    def validate_root(
        self,
        root: Element,
        *,
        deadline: Optional[Deadline] = None,
        interned: bool = False,
    ) -> ValidationReport:
        self._deadline = (
            deadline if deadline is not None else self.limits.deadline()
        )
        self._interned = interned
        target_type = self.pair.target.root_type(root.label)
        if target_type is None:
            return ValidationReport.failure(
                f"label {root.label!r} is not a permitted root of the "
                "target schema"
            )
        source_type = self.pair.source.root_type(root.label)
        if source_type is None:
            # Promise violated at the root: no source knowledge to
            # exploit, so fall back to full target validation.
            from repro.core.validator import validate_element

            return validate_element(self.pair.target, target_type, root)
        memo_base = (
            self._memo.snapshot() if self._memo is not None else None
        )
        if not self.collect_stats:
            failure = self._fast_element(source_type, target_type, root)
            report = (
                ValidationReport.success() if failure is None else failure
            )
        else:
            stats = ValidationStats()
            report = self.validate_element(
                source_type, target_type, root, stats
            )
            report.stats = stats
        self._fill_memo_stats(memo_base, report.stats)
        return report

    def _fill_memo_stats(
        self,
        base: Optional[tuple[int, int, int]],
        stats: ValidationStats,
    ) -> None:
        """Report this run's memo activity as per-document deltas (the
        memo's own counters span its lifetime, possibly many documents)."""
        if base is None:
            return
        assert self._memo is not None
        hits, misses, evictions = self._memo.snapshot()
        stats.memo_hits += hits - base[0]
        stats.memo_misses += misses - base[1]
        stats.memo_evictions += evictions - base[2]

    # -- the parallel traversal ------------------------------------------------

    def validate_element(
        self,
        source_type: str,
        target_type: str,
        element: Element,
        stats: Optional[ValidationStats] = None,
        depth: int = 0,
    ) -> ValidationReport:
        """The paper's ``validate(τ, τ', e)``.

        With ``collect_stats=False`` and no explicit ``stats``, the call
        dispatches to the compiled fast path; passing a ``stats`` object
        always takes the instrumented path (the with-modifications
        validator threads its accumulator through here).
        """
        if depth > self._max_depth:
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        if self._deadline is not None:
            self._deadline.tick()
        if stats is None and not self.collect_stats:
            failure = self._fast_element(
                source_type, target_type, element, depth
            )
            return ValidationReport.success() if failure is None else failure
        stats = stats if stats is not None else ValidationStats()
        if self.pair.is_subsumed(source_type, target_type):
            stats.subtrees_skipped += 1
            return ValidationReport.success(stats)
        if self.pair.is_disjoint(source_type, target_type):
            stats.disjoint_rejections += 1
            return ValidationReport.failure(
                f"source type {source_type!r} is disjoint from target "
                f"type {target_type!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        memo = self._memo
        memo_key = None
        if memo is not None:
            memo_key = (source_type, target_type, element.structural_hash())
            if memo.contains(memo_key):
                # A structurally identical subtree already validated
                # under this pair: skip it like a subsumed pair.
                return ValidationReport.success(stats)
        stats.elements_visited += 1
        target_decl = self.pair.target.type(target_type)
        from repro.core.validator import attribute_violation

        violation = attribute_violation(self.pair.target, target_decl, element)
        if violation:
            return ValidationReport.failure(
                violation, path=str(element.dewey()), stats=stats
            )
        if isinstance(target_decl, SimpleType):
            # Disjointness already ruled out a complex source type here.
            report = self._check_simple(target_decl, element, stats)
            if memo_key is not None and report.valid:
                memo.add(memo_key)
            return report
        assert isinstance(target_decl, ComplexType)
        labels: list[str] = []
        for child in element.children:
            if isinstance(child, Text):
                if child.value.strip() == "":
                    continue
                stats.text_nodes_visited += 1
                return ValidationReport.failure(
                    f"complex type {target_type!r} does not allow "
                    "character data",
                    path=str(child.dewey()),
                    stats=stats,
                )
            labels.append(child.label)

        content_ok = self._check_content(source_type, target_type, labels, stats)
        if not content_ok:
            return ValidationReport.failure(
                f"children of {element.label!r} do not match content "
                f"model {target_decl.content.to_source()} of type "
                f"{target_type!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        source_decl = self.pair.source.type(source_type)
        if not isinstance(source_decl, ComplexType):
            # Simple-source element casting to a complex target: the only
            # shared tree is the empty element, which the content check
            # above already admitted (no element children to recurse on).
            for child in element.children:
                if not isinstance(child, Text):
                    from repro.core.validator import validate_element

                    report = validate_element(
                        self.pair.target,
                        target_decl.child_types[child.label],
                        child,
                        stats,
                    )
                    if not report.valid:
                        return report
            if memo_key is not None:
                memo.add(memo_key)
            return ValidationReport.success(stats)
        for child in element.children:
            if isinstance(child, Text):
                continue
            child_source = source_decl.child_types.get(child.label)
            child_target = target_decl.child_types.get(child.label)
            if child_source is None or child_target is None:
                # Unreachable when both content checks held; defensive.
                return ValidationReport.failure(
                    f"no type assigned to label {child.label!r}",
                    path=str(child.dewey()),
                    stats=stats,
                )
            report = self.validate_element(
                child_source, child_target, child, stats, depth + 1
            )
            if not report.valid:
                return report
        if memo_key is not None:
            memo.add(memo_key)
        return ValidationReport.success(stats)

    # -- content helpers -----------------------------------------------------

    def _check_content(
        self,
        source_type: str,
        target_type: str,
        labels: list[str],
        stats: ValidationStats,
    ) -> bool:
        """Is the child-label string in ``L(regexp_τ')``?

        With string casting enabled the scan may stop early (immediate
        accept/reject); either way only the symbols actually consumed
        are counted.
        """
        source_is_complex = isinstance(
            self.pair.source.type(source_type), ComplexType
        )
        if self.use_string_cast and source_is_complex:
            machine = self.pair.string_cast(source_type, target_type)
            if machine.always_accepts:
                # Content languages in the subsumption relation: every
                # promised child string passes with zero scanning.
                stats.early_content_decisions += 1
                return True
            if machine.never_accepts:
                stats.early_content_decisions += 1
                return False
            result = machine.c_immed.scan(labels)
            stats.content_symbols_scanned += result.symbols_scanned
            if result.early:
                stats.early_content_decisions += 1
            return result.accepted
        dfa = self.pair.target.content_dfa(target_type)
        state = dfa.start
        for label in labels:
            if label not in dfa.alphabet:
                stats.content_symbols_scanned += 1
                return False
            state = dfa.transitions[state][label]
            stats.content_symbols_scanned += 1
        return state in dfa.finals

    def _check_simple(
        self,
        declaration: SimpleType,
        element: Element,
        stats: ValidationStats,
    ) -> ValidationReport:
        if any(isinstance(child, Element) for child in element.children):
            return ValidationReport.failure(
                f"simple type {declaration.name!r} does not allow child "
                "elements",
                path=str(element.dewey()),
                stats=stats,
            )
        stats.text_nodes_visited += sum(
            1 for child in element.children if isinstance(child, Text)
        )
        stats.simple_values_checked += 1
        text = element.text()
        if not declaration.validate(text):
            return ValidationReport.failure(
                f"value {text!r} does not conform to simple type "
                f"{declaration.name!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        return ValidationReport.success(stats)

    # -- the compiled fast path (collect_stats=False) ------------------------------

    def _fast_element(
        self,
        source_type: str,
        target_type: str,
        element: Element,
        depth: int = 0,
    ) -> Optional[ValidationReport]:
        """The traversal of :meth:`validate_element` with counters off:
        ``None`` means the subtree is valid, a report is a failure —
        success allocates nothing on the way up."""
        if depth > self._max_depth:
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        deadline = self._deadline
        if deadline is not None:
            deadline.tick()
        pair = self.pair
        if (source_type, target_type) in pair.r_sub:
            return None
        if (source_type, target_type) not in pair.r_nondis:
            return ValidationReport.failure(
                f"source type {source_type!r} is disjoint from target "
                f"type {target_type!r}",
                path=str(element.dewey()),
            )
        memo = self._memo
        memo_key = None
        if memo is not None:
            memo_key = (source_type, target_type, element.structural_hash())
            if memo.contains(memo_key):
                return None
        target_decl = pair.target.types[target_type]
        if element._attributes or (
            isinstance(target_decl, ComplexType) and target_decl.attributes
        ):
            from repro.core.validator import attribute_violation

            violation = attribute_violation(pair.target, target_decl, element)
            if violation:
                return ValidationReport.failure(
                    violation, path=str(element.dewey())
                )
        if isinstance(target_decl, SimpleType):
            failure = self._fast_simple(target_decl, element)
            if failure is None and memo_key is not None:
                memo.add(memo_key)
            return failure
        # One pass interns the child-label string: parsed-in ``sym`` ids
        # when the document shares the pair's table, dict lookups
        # otherwise (and for post-parse insertions, whose sym is -1).
        interned = self._interned
        ids = pair.symbols.ids
        syms: list[int] = []
        for child in element.children:
            if isinstance(child, Text):
                if child.value.strip() == "":
                    continue
                return ValidationReport.failure(
                    f"complex type {target_type!r} does not allow "
                    "character data",
                    path=str(child.dewey()),
                )
            sid = child.sym if interned else -1
            if sid < 0:
                sid = ids.get(child._label, -1)
            syms.append(sid)

        if not self._fast_content(source_type, target_type, syms):
            return ValidationReport.failure(
                f"children of {element.label!r} do not match content "
                f"model {target_decl.content.to_source()} of type "
                f"{target_type!r}",
                path=str(element.dewey()),
            )
        source_decl = pair.source.types[source_type]
        if not isinstance(source_decl, ComplexType):
            from repro.core.validator import validate_element

            for child in element.children:
                if not isinstance(child, Text):
                    report = validate_element(
                        pair.target,
                        target_decl.child_types[child.label],
                        child,
                    )
                    if not report.valid:
                        return report
            if memo_key is not None:
                memo.add(memo_key)
            return None
        source_row = pair.source_child_row(source_type)
        target_row = pair.target_child_row(target_type)
        position = 0
        for child in element.children:
            if isinstance(child, Text):
                continue
            sid = syms[position]
            position += 1
            if sid >= 0:
                child_source = source_row[sid]
                child_target = target_row[sid]
            else:
                child_source = child_target = None
            if child_source is None or child_target is None:
                return ValidationReport.failure(
                    f"no type assigned to label {child.label!r}",
                    path=str(child.dewey()),
                )
            failure = self._fast_element(
                child_source, child_target, child, depth + 1
            )
            if failure is not None:
                return failure
        if memo_key is not None:
            memo.add(memo_key)
        return None

    def _fast_content(
        self, source_type: str, target_type: str, syms: list[int]
    ) -> bool:
        """:meth:`_check_content` on the compiled dense tables, over the
        already-interned child-label string (``-1`` entries reject)."""
        pair = self.pair
        if self.use_string_cast and isinstance(
            pair.source.types[source_type], ComplexType
        ):
            machine = pair.string_cast(source_type, target_type)
            if machine.always_accepts:
                return True
            if machine.never_accepts:
                return False
            compiled = machine.c_immed_compiled
            assert compiled is not None  # pair-built machines always compile
            return compiled.decide(syms)
        return pair.target_content(target_type).accepts(syms)

    def _fast_simple(
        self, declaration: SimpleType, element: Element
    ) -> Optional[ValidationReport]:
        for child in element.children:
            if isinstance(child, Element):
                return ValidationReport.failure(
                    f"simple type {declaration.name!r} does not allow "
                    "child elements",
                    path=str(element.dewey()),
                )
        text = element.text()
        if not declaration.validate(text):
            return ValidationReport.failure(
                f"value {text!r} does not conform to simple type "
                f"{declaration.name!r}",
                path=str(element.dewey()),
            )
        return None


def cast_text(
    pair: SchemaPair,
    text: str,
    *,
    limits: Optional[Limits] = None,
    stream_skip: bool = True,
    trusted: bool = False,
) -> ValidationReport:
    """DOM-free schema cast of raw XML text.

    One streaming pass parses and cast-validates together; with
    ``stream_skip`` (the default) subsumed subtrees are byte-skimmed —
    the lexer never tokenizes them (see
    :meth:`repro.core.streaming.StreamingCastValidator.validate_text`).
    ``trusted=True`` additionally byte-searches for end tags, assuming
    the document is well-formed.  The verdict equals
    ``CastValidator(pair).validate(parse(text))``.
    """
    from repro.core.streaming import StreamingCastValidator

    return StreamingCastValidator(pair, limits=limits).validate_text(
        text, byte_skip=stream_skip, trusted=trusted
    )


def cast_file(
    pair: SchemaPair,
    path: str,
    *,
    limits: Optional[Limits] = None,
    stream_skip: bool = True,
    trusted: bool = False,
) -> ValidationReport:
    """:func:`cast_text` over a file (size-checked before reading)."""
    from repro.core.streaming import StreamingCastValidator

    return StreamingCastValidator(pair, limits=limits).validate_file(
        path, byte_skip=stream_skip, trusted=trusted
    )
