"""Validation outcomes and instrumentation counters.

Every validator in :mod:`repro.core` and :mod:`repro.baselines` reports
through these types so the benchmark harness can compare them — the
node-visit counters are what reproduces **Table 3** of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ValidationStats:
    """Work counters accumulated during one validation run.

    Attributes:
        elements_visited: element nodes whose validation was actually
            performed (entered, not skipped).
        text_nodes_visited: χ leaves whose value was examined.
        content_symbols_scanned: child labels fed to content-model
            automata.
        simple_values_checked: text values checked against a simple type.
        subtrees_skipped: subtrees skipped thanks to subsumption
            (``τ ≤ τ'``).
        disjoint_rejections: validations cut short by disjointness
            (``τ ⊘ τ'``).
        early_content_decisions: content-model scans decided by an
            IA/IR state before the end of the child sequence.
        deltas_seen: Δ-labelled nodes encountered (with-modifications
            runs only).
    """

    elements_visited: int = 0
    text_nodes_visited: int = 0
    content_symbols_scanned: int = 0
    simple_values_checked: int = 0
    subtrees_skipped: int = 0
    disjoint_rejections: int = 0
    early_content_decisions: int = 0
    deltas_seen: int = 0

    @property
    def nodes_visited(self) -> int:
        """Total nodes traversed — the Table 3 metric."""
        return self.elements_visited + self.text_nodes_visited

    def merge(self, other: "ValidationStats") -> None:
        self.elements_visited += other.elements_visited
        self.text_nodes_visited += other.text_nodes_visited
        self.content_symbols_scanned += other.content_symbols_scanned
        self.simple_values_checked += other.simple_values_checked
        self.subtrees_skipped += other.subtrees_skipped
        self.disjoint_rejections += other.disjoint_rejections
        self.early_content_decisions += other.early_content_decisions
        self.deltas_seen += other.deltas_seen


@dataclass
class ValidationReport:
    """The outcome of validating one document.

    ``reason`` explains a failure (with the Dewey path of the offending
    node where available); it is empty for valid documents.
    """

    valid: bool
    reason: str = ""
    path: str = ""
    stats: ValidationStats = field(default_factory=ValidationStats)

    def __bool__(self) -> bool:
        return self.valid

    @classmethod
    def failure(
        cls,
        reason: str,
        path: str = "",
        stats: Optional[ValidationStats] = None,
    ) -> "ValidationReport":
        return cls(
            valid=False,
            reason=reason,
            path=path,
            stats=stats or ValidationStats(),
        )

    @classmethod
    def success(
        cls, stats: Optional[ValidationStats] = None
    ) -> "ValidationReport":
        return cls(valid=True, stats=stats or ValidationStats())

    def __repr__(self) -> str:
        verdict = "valid" if self.valid else f"invalid: {self.reason}"
        return f"ValidationReport({verdict}, nodes={self.stats.nodes_visited})"
