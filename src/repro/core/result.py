"""Validation outcomes and instrumentation counters.

Every validator in :mod:`repro.core` and :mod:`repro.baselines` reports
through these types so the benchmark harness can compare them — the
node-visit counters are what reproduces **Table 3** of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional


@dataclass
class ValidationStats:
    """Work counters accumulated during one validation run.

    Attributes:
        elements_visited: element nodes whose validation was actually
            performed (entered, not skipped).
        text_nodes_visited: χ leaves whose value was examined.
        content_symbols_scanned: child labels fed to content-model
            automata.
        simple_values_checked: text values checked against a simple type.
        subtrees_skipped: subtrees skipped thanks to subsumption
            (``τ ≤ τ'``).
        disjoint_rejections: validations cut short by disjointness
            (``τ ⊘ τ'``).
        early_content_decisions: content-model scans decided by an
            IA/IR state before the end of the child sequence.
        deltas_seen: Δ-labelled nodes encountered (with-modifications
            runs only).
        memo_hits: subtrees skipped because a structurally identical
            subtree already validated under the same type pair
            (:mod:`repro.core.memo`).
        memo_misses: memo lookups that found nothing.
        memo_evictions: LRU entries dropped to admit new verdicts.
        subtrees_byte_skipped: the subset of ``subtrees_skipped`` that
            was fast-forwarded at the *byte* level — the lexer skimmed
            straight to the matching end tag without tokenizing the
            subtree (streaming cast with ``byte_skip``).
        bytes_skipped: source characters covered by byte-level skims
            (never tokenized, entity-decoded, or interned).
        parse_seconds: wall-clock time spent lexing/parsing input text,
            when the caller timed the phases (batch ``collect_stats``
            runs and the CLI's ``--profile-parse``); 0.0 otherwise.
        validate_seconds: wall-clock time spent in the validator proper,
            under the same conditions.
        skip_seconds: wall-clock time spent fast-forwarding subsumed
            subtrees at the byte level, under the same conditions —
            attributed separately so a skip-heavy profile doesn't lump
            skim time into the parse phase.

    Every counter is additive, so :meth:`merge` is the single
    aggregation primitive — the batch driver folds per-document (and
    per-worker) stats into one fleet-wide total with it, and the merged
    total of a parallel run equals the sequential sum exactly.
    """

    elements_visited: int = 0
    text_nodes_visited: int = 0
    content_symbols_scanned: int = 0
    simple_values_checked: int = 0
    subtrees_skipped: int = 0
    disjoint_rejections: int = 0
    early_content_decisions: int = 0
    deltas_seen: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    subtrees_byte_skipped: int = 0
    bytes_skipped: int = 0
    #: Wall-clock fields are excluded from equality: two runs doing the
    #: same work (equal counters) compare equal regardless of timing.
    parse_seconds: float = field(default=0.0, compare=False)
    validate_seconds: float = field(default=0.0, compare=False)
    skip_seconds: float = field(default=0.0, compare=False)

    @property
    def nodes_visited(self) -> int:
        """Total nodes traversed — the Table 3 metric."""
        return self.elements_visited + self.text_nodes_visited

    @property
    def memo_lookups(self) -> int:
        """Total verdict-cache probes (hits + misses)."""
        return self.memo_hits + self.memo_misses

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of memo lookups that skipped a subtree, in [0, 1]."""
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    def merge(self, other: "ValidationStats") -> None:
        for counter in fields(self):
            setattr(
                self,
                counter.name,
                getattr(self, counter.name) + getattr(other, counter.name),
            )

    def as_dict(self) -> dict[str, float]:
        """Counters as a plain dict (benchmark JSON emission and the
        batch checkpoint journal)."""
        return {counter.name: getattr(self, counter.name)
                for counter in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationStats":
        """Rebuild stats persisted by :meth:`as_dict`.  Field-generic
        and tolerant of unknown keys, so journals written before a
        counter was added still load."""
        stats = cls()
        names = {counter.name for counter in fields(cls)}
        for name, value in data.items():
            if name in names:
                setattr(stats, name, value)
        return stats


@dataclass
class ValidationReport:
    """The outcome of validating one document.

    ``reason`` explains a failure (with the Dewey path of the offending
    node where available); it is empty for valid documents.
    """

    valid: bool
    reason: str = ""
    path: str = ""
    stats: ValidationStats = field(default_factory=ValidationStats)

    def __bool__(self) -> bool:
        return self.valid

    @classmethod
    def failure(
        cls,
        reason: str,
        path: str = "",
        stats: Optional[ValidationStats] = None,
    ) -> "ValidationReport":
        return cls(
            valid=False,
            reason=reason,
            path=path,
            stats=stats or ValidationStats(),
        )

    @classmethod
    def success(
        cls, stats: Optional[ValidationStats] = None
    ) -> "ValidationReport":
        return cls(valid=True, stats=stats or ValidationStats())

    def __repr__(self) -> str:
        verdict = "valid" if self.valid else f"invalid: {self.reason}"
        return f"ValidationReport({verdict}, nodes={self.stats.nodes_visited})"
