"""Memoized pair-validation: a bounded LRU cache of subtree verdicts.

The paper's static analysis avoids re-walking subtrees whose *type
pair* was decided in advance (subsumption skips, disjointness
fail-fasts).  :class:`ValidationMemo` pushes the same amortization to
runtime: it remembers that a subtree with a given structural hash
(:meth:`~repro.xmltree.dom.Node.structural_hash`) already validated
successfully under a ``(source type, target type)`` pair, so every
structurally identical subtree encountered later — in the same document
or, with a shared memo, anywhere in a batch — is skipped in O(1),
exactly like a pair in ``R_sub``.

Design constraints:

* **Success-only.**  Failure reports carry the Dewey path of the
  offending node, which differs between structurally identical
  subtrees; and the first failure aborts a validation anyway.  Only
  successes are cached, so a hit can never mis-attribute a failure.
* **Bounded.**  The cache is a strict LRU over at most ``capacity``
  keys, further clamped by ``Limits.max_memo_entries`` so the ambient
  resource-guard policy caps memo memory like every other budget.
* **Pair-scoped.**  A verdict is only meaningful against the schema
  pair that produced it, so a memo binds to the first
  :class:`~repro.schema.registry.SchemaPair` it is used with and
  refuses to serve a different one.

Counters (``hits``/``misses``/``evictions``) accumulate over the
memo's lifetime; validators snapshot them around a document so
:class:`~repro.core.result.ValidationStats` can report per-document
deltas, and the batch driver merges those into fleet-wide hit rates.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.guards import Limits, resolve_limits

__all__ = ["ValidationMemo", "DEFAULT_MEMO_SIZE"]

#: Default verdict-cache capacity (entries, not bytes).  Each entry is
#: one small tuple key in a dict — roughly 100 bytes — so the default
#: costs a few megabytes at saturation.
DEFAULT_MEMO_SIZE = 65_536


class ValidationMemo:
    """Bounded LRU cache of successful subtree validations.

    Keys are ``(source_type, target_type, structural_hash)`` tuples
    (the DTD label-indexed validator appends a discriminator so its
    immediate-content verdicts never collide with full-subtree ones).
    ``contains`` doubles as the lookup and the LRU touch; ``add``
    stores a success and evicts the least recently used entry when the
    cache is full.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries",
                 "_pair")

    def __init__(
        self,
        capacity: int = DEFAULT_MEMO_SIZE,
        *,
        limits: Optional[Limits] = None,
    ):
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        cap = resolve_limits(limits).max_memo_entries
        #: Effective bound: the requested capacity clamped by the
        #: guard policy's ``max_memo_entries``.
        self.capacity = capacity if cap is None else min(capacity, cap)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[Hashable, None] = {}
        self._pair: Optional[object] = None

    # -- pair binding ------------------------------------------------------

    def bind(self, pair: object) -> "ValidationMemo":
        """Tie this memo to a schema pair (first caller wins).

        A cached verdict is only valid against the pair that produced
        it; binding turns the accidental reuse of one memo across two
        pairs — silently wrong answers — into an immediate error.
        """
        if self._pair is None:
            self._pair = pair
        elif self._pair is not pair:
            raise ValueError(
                "ValidationMemo is already bound to a different "
                "SchemaPair; use one memo per pair"
            )
        return self

    # -- the cache ---------------------------------------------------------

    def contains(self, key: Hashable) -> bool:
        """Is ``key`` a known success?  Counts a hit or miss and, on a
        hit, marks the entry most recently used."""
        entries = self._entries
        if key in entries:
            self.hits += 1
            # dicts preserve insertion order: pop + reinsert = LRU touch.
            del entries[key]
            entries[key] = None
            return True
        self.misses += 1
        return False

    def add(self, key: Hashable) -> None:
        """Record a successful validation, evicting the LRU entry when
        the cache is at capacity."""
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            self.evictions += 1
        entries[key] = None

    def clear(self) -> None:
        """Drop every entry (counters are preserved — they describe the
        memo's lifetime, not its current contents)."""
        self._entries.clear()

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> tuple[int, int, int]:
        """``(hits, misses, evictions)`` — for per-document deltas."""
        return self.hits, self.misses, self.evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate in [0, 1]; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ValidationMemo({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions)"
        )
