"""Tree update sessions with Δ-label bookkeeping (Section 3.3).

The paper permits three updates on a tree known valid under the source
schema — relabel a node, insert a new leaf, delete a leaf — and encodes
their effect with Δ-labels: ``Δ^a_b`` (relabelled a→b), ``Δ^ε_b``
(inserted), ``Δ^a_ε`` (deleted; the node stays in the tree as a
tombstone).  :class:`UpdateSession` applies updates to a parsed document
*in place* while keeping exactly that encoding:

* deleted nodes remain attached (so ``Proj_old`` still sees them);
* every touched node's Dewey number feeds a
  :class:`~repro.dewey.DeweyTrie`, giving the O(depth) ``modified(v)``
  predicate the with-modifications validator navigates in parallel with
  the tree;
* ``proj_old`` / ``proj_new`` are the paper's ``Proj_old``/``Proj_new``
  label projections (``None`` encodes ε).

Text mutations are supported as ``Δ^χ_χ`` — the content-model string is
unchanged but the value must be rechecked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.dewey import DeweyTrie
from repro.errors import UpdateError
from repro.xmltree.dom import CHI, Document, Element, Node, Text


@dataclass
class Delta:
    """Δ-label of one node: ``old``/``new`` are labels, with None as ε."""

    old: Optional[str]
    new: Optional[str]


class UpdateSession:
    """Records the paper's update operations against a document.

    The session owns the document for its duration: mutating the tree
    behind the session's back invalidates the Δ encoding.
    """

    def __init__(self, document: Document):
        self.document = document
        self._deltas: dict[int, Delta] = {}
        self._pinned: dict[int, Node] = {}  # keep ids stable
        self._trie: Optional[DeweyTrie] = None
        self.update_count = 0

    # -- update operations ----------------------------------------------------

    def rename(self, element: Element, new_label: str) -> None:
        """Relabel an element: ``Δ^old_new``."""
        self._require_live(element)
        delta = self._deltas.get(id(element))
        if delta is None:
            self._record(element, Delta(old=element.label, new=new_label))
        else:
            delta.new = new_label
        element.label = new_label
        self._bump()

    def replace_text(self, node: Text, new_value: str) -> None:
        """Change a text leaf's value: ``Δ^χ_χ``."""
        self._require_live(node)
        if id(node) not in self._deltas:
            # Freshly inserted text already carries Δ^ε_χ; an untouched
            # node gets the value-change marker Δ^χ_χ.
            self._record(node, Delta(old=CHI, new=CHI))
        node.value = new_value
        self._bump()

    def insert_element(
        self, parent: Element, position: int, label: str
    ) -> Element:
        """Insert a fresh leaf element: ``Δ^ε_label``."""
        self._require_live(parent)
        node = Element(label)
        parent.insert(position, node)
        self._record(node, Delta(old=None, new=label))
        self._bump()
        return node

    def insert_text(self, parent: Element, position: int, value: str) -> Text:
        """Insert a fresh text leaf: ``Δ^ε_χ``."""
        self._require_live(parent)
        node = Text(value)
        parent.insert(position, node)
        self._record(node, Delta(old=None, new=CHI))
        self._bump()
        return node

    def set_attribute(self, element: Element, name: str, value: str) -> None:
        """Set or change an attribute (attribute-extension update op).

        The node is marked modified without changing its Δ projection —
        its label is unchanged but it must be revisited.
        """
        self._require_live(element)
        if id(element) not in self._deltas:
            self._record(element, Delta(old=element.label,
                                        new=element.label))
        element.attributes[name] = value
        # Direct attribute-map mutation bypasses the DOM's hash tracking.
        element.invalidate_structural_hash()
        self._bump()

    def remove_attribute(self, element: Element, name: str) -> None:
        """Remove an attribute (attribute-extension update op)."""
        self._require_live(element)
        if name not in element.attributes:
            raise UpdateError(
                f"{element!r} has no attribute {name!r} to remove"
            )
        if id(element) not in self._deltas:
            self._record(element, Delta(old=element.label,
                                        new=element.label))
        del element.attributes[name]
        element.invalidate_structural_hash()
        self._bump()

    def insert_before(self, sibling: Node, label: str) -> Element:
        parent = self._parent_of(sibling)
        return self.insert_element(parent, sibling.index, label)

    def insert_after(self, sibling: Node, label: str) -> Element:
        parent = self._parent_of(sibling)
        return self.insert_element(parent, sibling.index + 1, label)

    def insert_first(self, parent: Element, label: str) -> Element:
        return self.insert_element(parent, 0, label)

    def delete(self, node: Union[Element, Text]) -> None:
        """Delete a leaf (a node with no live children): ``Δ^old_ε``.

        A node inserted earlier in this session is removed outright —
        ``Δ^ε_ε`` carries no information for either schema.
        """
        self._require_live(node)
        if isinstance(node, Element) and any(
            not self.is_deleted(child) for child in node.children
        ):
            raise UpdateError(
                f"cannot delete {node!r}: it still has live children"
            )
        if node.parent is None:
            raise UpdateError("cannot delete the root element")
        delta = self._deltas.get(id(node))
        if delta is not None and delta.old is None:
            node.parent.remove(node)
            del self._deltas[id(node)]
            self._pinned.pop(id(node), None)
        else:
            old = delta.old if delta is not None else node.label
            self._record(node, Delta(old=old, new=None))
            # The tombstone leaves the raw tree unchanged, but the node's
            # *live* subtree did change — stale fingerprints along its
            # Dewey path must not survive the deletion.
            node.invalidate_structural_hash()
        self._bump()

    # -- Δ projections -----------------------------------------------------------

    def delta(self, node: Node) -> Optional[Delta]:
        return self._deltas.get(id(node))

    def proj_old(self, node: Node) -> Optional[str]:
        """``Proj_old``: the node's label in the original tree (None=ε)."""
        delta = self._deltas.get(id(node))
        if delta is None:
            return node.label
        return delta.old

    def proj_new(self, node: Node) -> Optional[str]:
        """``Proj_new``: the node's label in the updated tree (None=ε)."""
        delta = self._deltas.get(id(node))
        if delta is None:
            return node.label
        return delta.new

    def is_deleted(self, node: Node) -> bool:
        delta = self._deltas.get(id(node))
        return delta is not None and delta.new is None

    def is_inserted(self, node: Node) -> bool:
        delta = self._deltas.get(id(node))
        return delta is not None and delta.old is None

    def is_touched(self, node: Node) -> bool:
        return id(node) in self._deltas

    def live_children(self, element: Element) -> list[Node]:
        """Children that exist in the updated tree (tombstones skipped)."""
        return [c for c in element.children if not self.is_deleted(c)]

    # -- the modified() predicate ---------------------------------------------

    def modified(self, node: Node) -> bool:
        """Has any part of the subtree rooted at ``node`` been updated?

        Implemented with the Dewey-number trie exactly as in the paper;
        the trie is (re)built lazily after the last update.
        """
        if self._trie is None:
            trie = DeweyTrie()
            for pinned in self._pinned.values():
                trie.insert(pinned.dewey())
            self._trie = trie
        return self._trie.subtree_modified(node.dewey())

    # -- materialization -----------------------------------------------------------

    def result_document(self) -> Document:
        """A detached deep copy of the updated document (tombstones
        dropped) — what a from-scratch revalidation would see."""
        root = self.document.root
        if self.is_deleted(root):
            raise UpdateError("the root element was deleted")
        return Document(self._copy_live(root))

    def _copy_live(self, element: Element) -> Element:
        clone = Element(element.label, dict(element.attributes))
        for child in element.children:
            if self.is_deleted(child):
                continue
            if isinstance(child, Text):
                clone.append(Text(child.value))
            else:
                clone.append(self._copy_live(child))
        return clone

    # -- internals ------------------------------------------------------------------

    def _record(self, node: Node, delta: Delta) -> None:
        self._deltas[id(node)] = delta
        self._pinned[id(node)] = node

    def _bump(self) -> None:
        self._trie = None
        self.update_count += 1

    def _require_live(self, node: Node) -> None:
        if self.is_deleted(node):
            raise UpdateError(f"{node!r} was already deleted")

    @staticmethod
    def _parent_of(node: Node) -> Element:
        if node.parent is None:
            raise UpdateError("node has no parent")
        return node.parent
