"""Streaming validation: O(depth) memory, no tree.

The paper's memory argument — validator state independent of the
document — extends naturally to validation *during parsing*:
:class:`StreamingValidator` consumes the event stream of
:func:`repro.xmltree.events.iterparse` and maintains only a stack of
open elements, each frame holding the element's assigned type and its
content-model DFA state.  The verdict matches
:func:`repro.core.validator.validate_document` on the parsed tree
exactly (same type assignment, same checks), without ever materializing
the tree.

Identity constraints need whole-subtree visibility and are outside the
streaming mode; use :func:`repro.schema.identity.check_identity` on a
parsed document when the schema declares any.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.result import ValidationReport, ValidationStats
from repro.core.validator import attribute_violation_parts
from repro.errors import DocumentTooDeepError
from repro.guards import Limits, check_document_size, resolve_limits
from repro.schema.model import ComplexType, Schema, SimpleType
from repro.xmltree.events import (
    Characters,
    EndElement,
    Event,
    PullParser,
    StartElement,
    iterparse,
)


class _TimedEvents:
    """Iterator shim that bills time spent producing events (the lexer
    and event assembly) to ``parse_seconds`` — the profiling hook of
    :meth:`StreamingCastValidator.profile_text`."""

    __slots__ = ("_events", "parse_seconds", "skip_seconds")

    def __init__(self, events) -> None:
        self._events = iter(events)
        self.parse_seconds = 0.0
        self.skip_seconds = 0.0

    def __iter__(self):
        return self

    def __next__(self):
        import time

        start = time.perf_counter()
        try:
            return next(self._events)
        finally:
            self.parse_seconds += time.perf_counter() - start


class _TimedPull(_TimedEvents):
    """The pull-parser variant: additionally bills byte-level subtree
    skims to ``skip_seconds`` (they are neither parsing in the token
    sense nor validation)."""

    __slots__ = ("_pull",)

    def __init__(self, pull: PullParser) -> None:
        super().__init__(pull)
        self._pull = pull

    def skip_subtree(self, *, trusted: bool = False) -> int:
        import time

        start = time.perf_counter()
        try:
            return self._pull.skip_subtree(trusted=trusted)
        finally:
            self.skip_seconds += time.perf_counter() - start


@dataclass
class _Frame:
    label: str
    type_name: str
    #: DFA state for complex types; None marks a simple-typed frame.
    state: Optional[int]
    #: Accumulated character data — allocated only for simple-typed
    #: frames; complex types reject non-whitespace text outright, so
    #: their frames carry None instead of an always-empty list.
    text_parts: Optional[list[str]]
    child_index: int = 0
    #: Dewey step of this element under its parent (for error paths).
    position: int = 0


class StreamingValidator:
    """Validates event streams against one schema with stack-only state."""

    def __init__(self, schema: Schema, *, limits: Optional[Limits] = None):
        self.schema = schema
        self.limits = resolve_limits(limits)
        self._max_depth = (
            self.limits.max_tree_depth
            if self.limits.max_tree_depth is not None
            else sys.maxsize
        )
        for type_name, declaration in schema.types.items():
            if isinstance(declaration, ComplexType):
                schema.content_dfa(type_name)

    # -- entry points ------------------------------------------------------

    def validate_text(self, text: str) -> ValidationReport:
        """Parse and validate in one streaming pass.

        Resource-limit violations (size, depth, entity expansions,
        deadline) raise the matching :class:`ResourceLimitError`; only
        well-formedness problems become failure reports.
        """
        from repro.errors import XMLSyntaxError

        try:
            return self.validate_events(
                iterparse(text, limits=self.limits,
                          deadline=self.limits.deadline(),
                          symbols=self.schema.symbols),
                interned=True,
            )
        except XMLSyntaxError as error:
            return ValidationReport.failure(f"not well-formed: {error}")

    def validate_file(self, path: str) -> ValidationReport:
        check_document_size(
            os.path.getsize(path), self.limits, what=f"file {path!r}"
        )
        with open(path, encoding="utf-8") as handle:
            return self.validate_text(handle.read())

    def validate_events(
        self, events: Iterable[Event], *, interned: bool = False
    ) -> ValidationReport:
        """Validate an event stream.

        ``interned=True`` promises that every ``StartElement.sym`` was
        interned against *this schema's* symbol table (as
        :meth:`validate_text` arranges); external event sources should
        leave it off and pay the per-event string lookup.
        """
        stats = ValidationStats()
        stack: list[_Frame] = []
        for event in events:
            if isinstance(event, StartElement):
                report = self._start(event, stack, stats, interned)
            elif isinstance(event, Characters):
                report = self._characters(event, stack, stats)
            else:
                report = self._end(event, stack, stats)
            if report is not None:
                report.stats = stats
                return report
        report = ValidationReport.success(stats)
        return report

    # -- event handlers -----------------------------------------------------

    def _path(self, stack: list[_Frame]) -> str:
        return ".".join(str(frame.position) for frame in stack[1:])

    def _start(
        self,
        event: StartElement,
        stack: list[_Frame],
        stats: ValidationStats,
        interned: bool,
    ) -> Optional[ValidationReport]:
        if not stack:
            type_name = self.schema.root_type(event.label)
            if type_name is None:
                return ValidationReport.failure(
                    f"label {event.label!r} is not a permitted root"
                )
            position = 0
        else:
            parent = stack[-1]
            if parent.state is None:
                return ValidationReport.failure(
                    f"simple type {parent.type_name!r} does not allow "
                    "child elements",
                    path=self._path(stack),
                )
            compiled = self.schema.compiled_content_dfa(parent.type_name)
            sid = event.sym if interned else -1
            if sid < 0:
                sid = self.schema.symbols.id(event.label)
            if sid < 0:
                # Content rows are complete over the schema alphabet, so
                # only un-interned labels can fail to step.
                return ValidationReport.failure(
                    f"unexpected element {event.label!r} in content of "
                    f"{parent.type_name!r}",
                    path=self._path(stack),
                )
            parent.state = compiled.rows[parent.state][sid]
            stats.content_symbols_scanned += 1
            child_type = self.schema.child_type_row(parent.type_name)[sid]
            if child_type is None:
                return ValidationReport.failure(
                    f"no type assigned to label {event.label!r}",
                    path=self._path(stack),
                )
            type_name = child_type
            position = parent.child_index
            parent.child_index += 1

        if len(stack) >= self._max_depth:
            # Guards external event streams; iterparse input is already
            # depth-checked at the parser.
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        stats.elements_visited += 1
        declaration = self.schema.type(type_name)
        violation = attribute_violation_parts(
            self.schema, declaration, event.label, event.attributes
        )
        if violation:
            return ValidationReport.failure(violation,
                                            path=self._path(stack))
        if isinstance(declaration, SimpleType):
            frame = _Frame(event.label, type_name, None, [],
                           position=position)
        else:
            frame = _Frame(
                event.label,
                type_name,
                self.schema.compiled_content_dfa(type_name).start,
                None,
                position=position,
            )
        stack.append(frame)
        return None

    def _characters(
        self,
        event: Characters,
        stack: list[_Frame],
        stats: ValidationStats,
    ) -> Optional[ValidationReport]:
        frame = stack[-1]
        if frame.state is None:
            frame.text_parts.append(event.value)
            return None
        if event.value.strip() == "":
            return None  # ignorable whitespace in element content
        stats.text_nodes_visited += 1
        return ValidationReport.failure(
            f"complex type {frame.type_name!r} does not allow character "
            "data",
            path=self._path(stack),
        )

    def _end(
        self,
        event: EndElement,
        stack: list[_Frame],
        stats: ValidationStats,
    ) -> Optional[ValidationReport]:
        frame = stack.pop()
        if frame.state is None:
            stats.text_nodes_visited += 1 if frame.text_parts else 0
            stats.simple_values_checked += 1
            declaration = self.schema.type(frame.type_name)
            assert isinstance(declaration, SimpleType)
            value = "".join(frame.text_parts)
            if value.strip() == "":
                # Whitespace-only runs are dropped by the DOM parser;
                # mirror that so both modes agree on <e>  </e>.
                value = ""
            if not declaration.validate(value):
                return ValidationReport.failure(
                    f"value {value!r} does not conform to simple type "
                    f"{declaration.name!r}",
                    path=self._path(stack + [frame]),
                )
            return None
        compiled = self.schema.compiled_content_dfa(frame.type_name)
        if not compiled.finals_mask[frame.state]:
            declaration = self.schema.type(frame.type_name)
            assert isinstance(declaration, ComplexType)
            return ValidationReport.failure(
                f"children of {frame.label!r} do not match content model "
                f"{declaration.content.to_source()} of type "
                f"{frame.type_name!r}",
                path=self._path(stack + [frame]),
            )
        return None


def validate_stream(schema: Schema, text: str) -> ValidationReport:
    """One-shot streaming validation of XML text."""
    return StreamingValidator(schema).validate_text(text)


# -- streaming schema cast ------------------------------------------------------


@dataclass
class _CastFrame:
    label: str
    source_type: str
    target_type: str
    #: pair-automaton state for the children's content check; None for
    #: simple-typed frames.
    state: Optional[int]
    #: content verdict already decided early (IA hit)?
    content_decided: bool
    #: Accumulated character data — allocated only when the target type
    #: is simple (the only case with a value to check); complex-typed
    #: frames carry None instead of an always-empty list.
    text_parts: Optional[list[str]]
    position: int = 0
    child_index: int = 0


class StreamingCastValidator:
    """Schema cast validation over an event stream (Section 3.2 logic,
    O(depth) memory).

    The same skips as :class:`repro.core.cast.CastValidator`: a child
    whose (source, target) type pair is subsumed starts a *skip region*
    — its entire subtree is fast-forwarded with a depth counter, no
    checks performed; a disjoint pair fails immediately; otherwise the
    child is pushed with a pair content-automaton state, which may also
    decide early (IA/IR) while children stream past.

    The input must be valid under the source schema (the paper's
    promise); the verdict then matches
    :meth:`CastValidator.validate` on the parsed tree.
    """

    def __init__(self, pair, *, limits: Optional[Limits] = None):
        from repro.schema.registry import SchemaPair

        assert isinstance(pair, SchemaPair)
        self.pair = pair
        self.limits = resolve_limits(limits)
        self._max_depth = (
            self.limits.max_tree_depth
            if self.limits.max_tree_depth is not None
            else sys.maxsize
        )
        pair.warm()

    def validate_text(
        self, text: str, *, byte_skip: bool = False, trusted: bool = False
    ) -> ValidationReport:
        """Parse and cast-validate in one streaming pass.

        ``byte_skip=True`` engages the skip-scan fast path: subsumed
        subtrees are fast-forwarded at the *byte* level (never
        tokenized); ``trusted=True`` additionally selects the
        byte-search skim, which assumes the document is well-formed
        (the paper's source-validity premise).  The verdict is
        identical either way — only the work differs.

        Both modes run the fused parse+validate loop of
        :mod:`repro.core.castkernel` (no event objects); the event
        pipelines below (:meth:`validate_events`/:meth:`validate_pull`)
        remain as the executable specification the kernel is fuzzed
        against, and as the instrumented path for phase profiling.
        """
        from repro.core.castkernel import run_cast

        return run_cast(self, text, byte_skip=byte_skip, trusted=trusted)

    def validate_text_events(
        self, text: str, *, byte_skip: bool = False, trusted: bool = False
    ) -> ValidationReport:
        """The pre-kernel event pipeline of :meth:`validate_text` —
        byte-identical verdicts/stats, used as the fuzzing reference
        and by the profiling path (which must time parse and validate
        phases separately, something the fused loop cannot)."""
        from repro.errors import XMLSyntaxError

        try:
            if byte_skip:
                return self.validate_pull(
                    PullParser(text, limits=self.limits,
                               deadline=self.limits.deadline(),
                               symbols=self.pair.symbols),
                    interned=True,
                    trusted=trusted,
                )
            return self.validate_events(
                iterparse(text, limits=self.limits,
                          deadline=self.limits.deadline(),
                          symbols=self.pair.symbols),
                interned=True,
            )
        except XMLSyntaxError as error:
            return ValidationReport.failure(f"not well-formed: {error}")

    def profile_text(
        self, text: str, *, byte_skip: bool = False, trusted: bool = False
    ) -> ValidationReport:
        """:meth:`validate_text` with wall-clock phase attribution.

        Runs the instrumented event pipeline (the fused loop interleaves
        parsing and validation in one frame, so it cannot attribute
        time) and fills ``stats.parse_seconds`` (event production),
        ``stats.skip_seconds`` (byte-level skims of subsumed subtrees),
        and ``stats.validate_seconds`` (everything else — the cast
        logic).  Verdicts are identical to :meth:`validate_text`; only
        use this when the breakdown is wanted (``--profile-parse``), as
        the per-event timing hooks cost real throughput.
        """
        import time

        from repro.errors import XMLSyntaxError

        timer = time.perf_counter
        total_start = timer()
        try:
            if byte_skip:
                timed = _TimedPull(
                    PullParser(text, limits=self.limits,
                               deadline=self.limits.deadline(),
                               symbols=self.pair.symbols)
                )
                report = self.validate_pull(timed, interned=True,
                                            trusted=trusted)
            else:
                timed = _TimedEvents(
                    iterparse(text, limits=self.limits,
                              deadline=self.limits.deadline(),
                              symbols=self.pair.symbols)
                )
                report = self.validate_events(timed, interned=True)
        except XMLSyntaxError as error:
            report = ValidationReport.failure(f"not well-formed: {error}")
        total = timer() - total_start
        stats = (
            report.stats if report.stats is not None else ValidationStats()
        )
        stats.parse_seconds += timed.parse_seconds
        stats.skip_seconds += timed.skip_seconds
        stats.validate_seconds += max(
            0.0, total - timed.parse_seconds - timed.skip_seconds
        )
        report.stats = stats
        return report

    def validate_file(
        self, path: str, *, byte_skip: bool = False, trusted: bool = False
    ) -> ValidationReport:
        check_document_size(
            os.path.getsize(path), self.limits, what=f"file {path!r}"
        )
        with open(path, encoding="utf-8") as handle:
            return self.validate_text(
                handle.read(), byte_skip=byte_skip, trusted=trusted
            )

    def validate_pull(
        self,
        pull: PullParser,
        *,
        interned: bool = False,
        trusted: bool = False,
    ) -> ValidationReport:
        """Validate through a :class:`PullParser`, byte-skimming every
        subsumed subtree instead of draining its events.

        This is the validator→lexer channel of the skip-scan path: on a
        subsumed ``(source, target)`` pair the subtree's verdict is
        known statically, so :meth:`PullParser.skip_subtree` jumps the
        *lexer* straight past it — no tokens, no events, no entity
        decoding, no interning.  Disjoint pairs still fail immediately
        (the stream is simply abandoned — the strongest skip of all).
        Dewey paths and line/column reporting after a skim are
        unaffected: parent bookkeeping happens before the subsumption
        check, and the scanner's newline index always covers the whole
        document.
        """
        stats = ValidationStats()
        stack: list[_CastFrame] = []
        for event in pull:
            if isinstance(event, StartElement):
                outcome = self._start(event, stack, stats, interned)
                if outcome == "skip":
                    stats.subtrees_skipped += 1
                    stats.subtrees_byte_skipped += 1
                    stats.bytes_skipped += pull.skip_subtree(
                        trusted=trusted
                    )
                    continue
                if outcome is not None:
                    outcome.stats = stats
                    return outcome
            elif isinstance(event, Characters):
                report = self._characters(event, stack, stats)
                if report is not None:
                    report.stats = stats
                    return report
            else:
                report = self._end(stack, stats)
                if report is not None:
                    report.stats = stats
                    return report
        return ValidationReport.success(stats)

    def validate_events(
        self, events: Iterable[Event], *, interned: bool = False
    ) -> ValidationReport:
        """Validate an event stream; ``interned=True`` promises every
        ``StartElement.sym`` was interned against ``pair.symbols``."""
        stats = ValidationStats()
        stack: list[_CastFrame] = []
        skip_depth = 0
        for event in events:
            if skip_depth:
                if isinstance(event, StartElement):
                    skip_depth += 1
                elif isinstance(event, EndElement):
                    skip_depth -= 1
                continue
            if isinstance(event, StartElement):
                outcome = self._start(event, stack, stats, interned)
                if outcome == "skip":
                    stats.subtrees_skipped += 1
                    skip_depth = 1
                    continue
                if outcome is not None:
                    outcome.stats = stats
                    return outcome
            elif isinstance(event, Characters):
                report = self._characters(event, stack, stats)
                if report is not None:
                    report.stats = stats
                    return report
            else:
                report = self._end(stack, stats)
                if report is not None:
                    report.stats = stats
                    return report
        return ValidationReport.success(stats)

    # -- handlers ------------------------------------------------------------

    def _path(self, stack: list[_CastFrame]) -> str:
        return ".".join(str(frame.position) for frame in stack[1:])

    def _start(self, event: StartElement, stack, stats, interned):
        """Returns None (pushed), "skip" (subsumed subtree), or a
        failure report."""
        if not stack:
            target_type = self.pair.target.root_type(event.label)
            if target_type is None:
                return ValidationReport.failure(
                    f"label {event.label!r} is not a permitted root of "
                    "the target schema"
                )
            source_type = self.pair.source.root_type(event.label)
            if source_type is None:
                return ValidationReport.failure(
                    f"label {event.label!r} is not a permitted root of "
                    "the source schema (promise violated)"
                )
            position = 0
        else:
            parent = stack[-1]
            position = parent.child_index
            parent.child_index += 1
            source_parent = self.pair.source.type(parent.source_type)
            target_parent = self.pair.target.type(parent.target_type)
            if not isinstance(target_parent, ComplexType):
                return ValidationReport.failure(
                    f"simple type {parent.target_type!r} does not allow "
                    "child elements",
                    path=self._path(stack),
                )
            sid = event.sym if interned else -1
            if sid < 0:
                sid = self.pair.symbols.id(event.label)
            # Feed the child label to the parent's content machine.
            report = self._feed(parent, sid, stack, stats)
            if report is not None:
                return report
            if sid >= 0:
                target_type = self.pair.target_child_row(
                    parent.target_type
                )[sid]
                source_type = (
                    self.pair.source_child_row(parent.source_type)[sid]
                    if isinstance(source_parent, ComplexType)
                    else None
                )
            else:
                # Label outside the pair alphabet: no type assignments.
                target_type = source_type = None
            if target_type is None:
                return ValidationReport.failure(
                    f"no target type assigned to label {event.label!r}",
                    path=self._path(stack),
                )
            if source_type is None:
                return ValidationReport.failure(
                    f"no source type for label {event.label!r} "
                    "(promise violated)",
                    path=self._path(stack),
                )

        if self.pair.is_subsumed(source_type, target_type):
            return "skip"
        if self.pair.is_disjoint(source_type, target_type):
            stats.disjoint_rejections += 1
            return ValidationReport.failure(
                f"source type {source_type!r} is disjoint from target "
                f"type {target_type!r}",
                path=self._path(stack),
            )
        if len(stack) >= self._max_depth:
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        stats.elements_visited += 1
        target_decl = self.pair.target.type(target_type)
        violation = attribute_violation_parts(
            self.pair.target, target_decl, event.label, event.attributes
        )
        if violation:
            return ValidationReport.failure(violation,
                                            path=self._path(stack))
        if isinstance(target_decl, SimpleType):
            frame = _CastFrame(event.label, source_type, target_type,
                               None, True, [], position=position)
        else:
            machine = self._machine(source_type, target_type)
            if machine is None:
                # Simple source casting to complex target: only the
                # empty element is shared; require ε content.
                state = self.pair.target_content(target_type).start
                frame = _CastFrame(event.label, source_type, target_type,
                                   state, False, None, position=position)
                frame.content_decided = False
            else:
                decided = machine.always_accepts
                if decided:
                    stats.early_content_decisions += 1
                frame = _CastFrame(
                    event.label,
                    source_type,
                    target_type,
                    machine.c_immed.dfa.start,
                    decided,
                    None,
                    position=position,
                )
        stack.append(frame)
        return None

    def _machine(self, source_type: str, target_type: str):
        source_decl = self.pair.source.type(source_type)
        if not isinstance(source_decl, ComplexType):
            return None
        return self.pair.string_cast(source_type, target_type)

    def _feed(self, parent: _CastFrame, sid: int, stack, stats):
        """Advance the parent's content check by one child symbol id
        (``-1`` for labels outside the pair alphabet), stepping the
        compiled dense tables over the pair alphabet."""
        if parent.content_decided or parent.state is None:
            return None
        machine = self._machine(parent.source_type, parent.target_type)
        if machine is None:
            # Plain target DFA (simple source).
            compiled = self.pair.target_content(parent.target_type)
            if sid < 0:
                return self._content_failure(parent, stack)
            state = compiled.rows[parent.state][sid]
            if state < 0:
                return self._content_failure(parent, stack)
            parent.state = state
            stats.content_symbols_scanned += 1
            return None
        immed = machine.c_immed_compiled
        assert immed is not None  # pair-built machines always compile
        if immed.ia_mask[parent.state]:
            parent.content_decided = True
            stats.early_content_decisions += 1
            return None
        if immed.ir_mask[parent.state]:
            stats.early_content_decisions += 1
            return self._content_failure(parent, stack)
        if sid < 0:
            return self._content_failure(parent, stack)
        state = immed.rows[parent.state][sid]
        if state < 0:
            return self._content_failure(parent, stack)
        parent.state = state
        stats.content_symbols_scanned += 1
        return None

    def _content_failure(self, frame: _CastFrame, stack):
        declaration = self.pair.target.type(frame.target_type)
        assert isinstance(declaration, ComplexType)
        return ValidationReport.failure(
            f"children of {frame.label!r} do not match content model "
            f"{declaration.content.to_source()} of type "
            f"{frame.target_type!r}",
            path=self._path(stack),
        )

    def _characters(self, event: Characters, stack, stats):
        frame = stack[-1]
        target_decl = self.pair.target.type(frame.target_type)
        if isinstance(target_decl, SimpleType):
            frame.text_parts.append(event.value)
            return None
        if event.value.strip() == "":
            return None
        stats.text_nodes_visited += 1
        return ValidationReport.failure(
            f"complex type {frame.target_type!r} does not allow "
            "character data",
            path=self._path(stack),
        )

    def _end(self, stack, stats):
        frame = stack.pop()
        target_decl = self.pair.target.type(frame.target_type)
        if isinstance(target_decl, SimpleType):
            stats.text_nodes_visited += 1 if frame.text_parts else 0
            stats.simple_values_checked += 1
            value = "".join(frame.text_parts)
            if value.strip() == "":
                value = ""
            if not target_decl.validate(value):
                return ValidationReport.failure(
                    f"value {value!r} does not conform to simple type "
                    f"{target_decl.name!r}",
                    path=self._path(stack + [frame]),
                )
            return None
        if frame.content_decided:
            return None
        machine = self._machine(frame.source_type, frame.target_type)
        if machine is None:
            compiled = self.pair.target_content(frame.target_type)
            if not compiled.finals_mask[frame.state]:
                return self._content_failure(frame, stack + [frame])
            return None
        # End of children: the pair automaton must be in a final state
        # (IA states would have decided already; promise covers source
        # acceptance).
        immed = machine.c_immed_compiled
        assert immed is not None
        if immed.ia_mask[frame.state]:
            stats.early_content_decisions += 1
            return None
        if not immed.finals_mask[frame.state]:
            return self._content_failure(frame, stack + [frame])
        return None
