"""The paper's contribution: schema cast validation of XML documents,
with and without modifications, plus the DTD label-index optimization."""

from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.repair import DocumentRepairer, RepairAction, RepairResult
from repro.core.result import ValidationReport, ValidationStats
from repro.core.streaming import (
    StreamingCastValidator,
    StreamingValidator,
    validate_stream,
)
from repro.core.updates import Delta, UpdateSession
from repro.core.validator import (
    validate_document,
    validate_element,
    validate_root,
)

__all__ = [
    "CastValidator",
    "CastWithModificationsValidator",
    "DTDCastValidator",
    "DocumentRepairer",
    "RepairAction",
    "RepairResult",
    "StreamingCastValidator",
    "StreamingValidator",
    "validate_stream",
    "ValidationReport",
    "ValidationStats",
    "Delta",
    "UpdateSession",
    "validate_document",
    "validate_element",
    "validate_root",
]
