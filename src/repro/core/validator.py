"""Plain top-down validation against one abstract XML Schema.

This is the paper's baseline ``doValidate``/``validate`` pseudocode
(Section 3): check the root label is a permitted root, then recursively
check each element's child-label string against its type's content
model and descend into every child.  Simple types require exactly one
χ (text) child whose value conforms.

The full-traversal baseline in :mod:`repro.baselines.full` wraps these
functions with precompiled automata, mirroring unmodified Xerces.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.core.result import ValidationReport, ValidationStats
from repro.errors import DocumentTooDeepError
from repro.guards import Deadline, Limits, resolve_limits
from repro.schema.model import ComplexType, Schema, SimpleType, TypeDef
from repro.xmltree.dom import Document, Element, Text

#: Attribute names outside validation: namespace machinery and the
#: xsi:* instance attributes (schemaLocation etc.).
RESERVED_ATTRIBUTE_PREFIXES = ("xmlns", "xml:", "xsi:")


def _is_reserved_attribute(name: str) -> bool:
    return name.startswith(RESERVED_ATTRIBUTE_PREFIXES)


def attribute_violation(
    schema: Schema, declaration: TypeDef, element: Element
) -> str:
    """The first attribute-validation failure on ``element``, or ``""``.

    Part of the attribute extension (outside the paper's structural
    model): undeclared attributes, missing required attributes, and
    non-conforming values are violations.  Reserved names (``xmlns*``,
    ``xml:*``, ``xsi:*``) are always permitted.  Simple-typed elements
    admit no attributes (XSD would require complex simpleContent).
    """
    return attribute_violation_parts(
        schema, declaration, element._label, element._attributes
    )


def attribute_violation_parts(
    schema: Schema,
    declaration: TypeDef,
    label: str,
    attributes,
) -> str:
    """:func:`attribute_violation` on raw ``(label, attributes)`` parts.

    ``attributes`` is any mapping or ``None`` (the lean DOM's empty
    sentinel); streaming validators call this directly so no throwaway
    :class:`Element` shell is allocated per event.
    """
    if attributes:
        present = {
            name: value
            for name, value in attributes.items()
            if not _is_reserved_attribute(name)
        }
    else:
        present = {}
    if isinstance(declaration, SimpleType):
        if present:
            name = sorted(present)[0]
            return (
                f"simple-typed element <{label}> does not allow "
                f"attribute {name!r}"
            )
        return ""
    assert isinstance(declaration, ComplexType)
    declared = declaration.attributes
    for name in present:
        if name not in declared:
            return (
                f"undeclared attribute {name!r} on <{label}> "
                f"(type {declaration.name!r})"
            )
    for name, attr in declared.items():
        if name in present:
            value_type = schema.type(attr.type_name)
            assert isinstance(value_type, SimpleType)
            if not value_type.validate(present[name]):
                return (
                    f"attribute {name}={present[name]!r} does not conform "
                    f"to {attr.type_name}"
                )
        elif attr.required:
            return (
                f"missing required attribute {name!r} on "
                f"<{label}>"
            )
    return ""


def _guard_params(
    limits: Optional[Limits], deadline: Optional[Deadline]
) -> tuple[int, Optional[Deadline]]:
    """Resolve ``limits`` (ambient when ``None``) to the pair of per-call
    guard values the recursive walkers carry: the depth ceiling (as a
    plain int so the hot path is one comparison) and a deadline token."""
    resolved = resolve_limits(limits)
    max_depth = (
        resolved.max_tree_depth
        if resolved.max_tree_depth is not None
        else sys.maxsize
    )
    if deadline is None:
        deadline = resolved.deadline()
    return max_depth, deadline


def validate_document(
    schema: Schema,
    document: Document,
    *,
    collect_stats: bool = True,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> ValidationReport:
    """Validate a whole document: root admissibility plus the subtree.

    ``collect_stats=False`` runs the compiled dense-table fast path:
    same verdict, no counters, reports allocated only on failure.
    A document lexed against this schema's own symbol table
    (``parse(..., symbols=schema.symbols)``) is validated on the
    interned ``Element.sym`` ids with no per-node string hashing.
    """
    return validate_root(
        schema,
        document.root,
        collect_stats=collect_stats,
        limits=limits,
        deadline=deadline,
        interned=document.symbols is schema.symbols,
    )


def validate_root(
    schema: Schema,
    root: Element,
    *,
    collect_stats: bool = True,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
    interned: bool = False,
) -> ValidationReport:
    type_name = schema.root_type(root.label)
    if type_name is None:
        return ValidationReport.failure(
            f"label {root.label!r} is not a permitted root", path=""
        )
    max_depth, deadline = _guard_params(limits, deadline)
    if not collect_stats:
        failure = _fast_validate(
            schema, type_name, root, 0, max_depth, deadline, interned
        )
        return ValidationReport.success() if failure is None else failure
    stats = ValidationStats()
    report = _validate(schema, type_name, root, stats, 0, max_depth, deadline)
    report.stats = stats
    return report


def validate_element(
    schema: Schema, type_name: str, element: Element,
    stats: Optional[ValidationStats] = None,
    *,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> ValidationReport:
    """Validate one element (and its subtree) against a named type."""
    stats = stats if stats is not None else ValidationStats()
    max_depth, deadline = _guard_params(limits, deadline)
    report = _validate(schema, type_name, element, stats, 0, max_depth, deadline)
    report.stats = stats
    return report


def _validate(
    schema: Schema,
    type_name: str,
    element: Element,
    stats: ValidationStats,
    depth: int = 0,
    max_depth: int = sys.maxsize,
    deadline: Optional[Deadline] = None,
) -> ValidationReport:
    if depth > max_depth:
        raise DocumentTooDeepError(
            f"element tree deeper than {max_depth} levels"
        )
    if deadline is not None:
        deadline.tick()
    stats.elements_visited += 1
    declaration = schema.type(type_name)
    violation = attribute_violation(schema, declaration, element)
    if violation:
        return ValidationReport.failure(violation, path=str(element.dewey()))
    if isinstance(declaration, SimpleType):
        return _validate_simple(declaration, element, stats)
    assert isinstance(declaration, ComplexType)
    dfa = schema.content_dfa(type_name)
    state = dfa.start
    for child in element.children:
        if isinstance(child, Text):
            if child.value.strip() == "":
                continue  # ignorable whitespace in element content
            stats.text_nodes_visited += 1
            return ValidationReport.failure(
                f"complex type {type_name!r} does not allow character data",
                path=str(child.dewey()),
            )
        label = child.label
        if label not in dfa.alphabet:
            return ValidationReport.failure(
                f"unexpected element {label!r} in content of "
                f"{type_name!r}",
                path=str(child.dewey()),
            )
        state = dfa.transitions[state][label]
        stats.content_symbols_scanned += 1
    if state not in dfa.finals:
        return ValidationReport.failure(
            f"children of {element.label!r} do not match content model "
            f"{declaration.content.to_source()} of type {type_name!r}",
            path=str(element.dewey()),
        )
    for child in element.children:
        if isinstance(child, Text):
            continue
        child_type = declaration.child_types[child.label]
        report = _validate(
            schema, child_type, child, stats, depth + 1, max_depth, deadline
        )
        if not report.valid:
            return report
    return ValidationReport.success()


def _fast_validate(
    schema: Schema,
    type_name: str,
    element: Element,
    depth: int = 0,
    max_depth: int = sys.maxsize,
    deadline: Optional[Deadline] = None,
    interned: bool = False,
) -> Optional[ValidationReport]:
    """:func:`_validate` with counters off, over the schema's compiled
    content tables.  ``None`` means valid (nothing allocated); a report
    is the first failure.

    With ``interned=True`` (document lexed against ``schema.symbols``)
    the content scan and the child-type descent both run on the
    elements' dense ``sym`` ids — tuple indexing only.  A ``sym`` of
    ``-1`` (node inserted after parse, or label outside the schema
    alphabet) falls back to the string lookup, so mutated documents
    stay correct, just slower on the touched nodes.
    """
    if depth > max_depth:
        raise DocumentTooDeepError(
            f"element tree deeper than {max_depth} levels"
        )
    if deadline is not None:
        deadline.tick()
    declaration = schema.types[type_name]
    if element._attributes or (
        isinstance(declaration, ComplexType) and declaration.attributes
    ):
        violation = attribute_violation(schema, declaration, element)
        if violation:
            return ValidationReport.failure(
                violation, path=str(element.dewey())
            )
    if isinstance(declaration, SimpleType):
        for child in element.children:
            if isinstance(child, Element):
                return ValidationReport.failure(
                    f"simple type {declaration.name!r} does not allow "
                    "child elements",
                    path=str(element.dewey()),
                )
        text = element.text()
        if not declaration.validate(text):
            return ValidationReport.failure(
                f"value {text!r} does not conform to simple type "
                f"{declaration.name!r}",
                path=str(element.dewey()),
            )
        return None
    compiled = schema.compiled_content_dfa(type_name)
    ids = schema.symbols.ids
    flat = compiled.flat
    width = compiled.width
    state = compiled.start
    syms: list[int] = []
    for child in element.children:
        if isinstance(child, Text):
            if child.value.strip() == "":
                continue  # ignorable whitespace in element content
            return ValidationReport.failure(
                f"complex type {type_name!r} does not allow character data",
                path=str(child.dewey()),
            )
        sid = child.sym if interned else -1
        if sid < 0:
            sid = ids.get(child.label, -1)
            if sid < 0:
                return ValidationReport.failure(
                    f"unexpected element {child.label!r} in content of "
                    f"{type_name!r}",
                    path=str(child.dewey()),
                )
        syms.append(sid)
        # Content rows are complete over the schema alphabet, so an
        # interned symbol always has a successor.
        state = flat[state * width + sid]
    if not (compiled.flags[state] & 1):
        return ValidationReport.failure(
            f"children of {element.label!r} do not match content model "
            f"{declaration.content.to_source()} of type {type_name!r}",
            path=str(element.dewey()),
        )
    child_row = schema.child_type_row(type_name)
    position = 0
    for child in element.children:
        if isinstance(child, Text):
            continue
        failure = _fast_validate(
            schema,
            child_row[syms[position]],
            child,
            depth + 1,
            max_depth,
            deadline,
            interned,
        )
        position += 1
        if failure is not None:
            return failure
    return None


def _validate_simple(
    declaration: SimpleType, element: Element, stats: ValidationStats
) -> ValidationReport:
    """Definition 1, simple case: one χ child whose text conforms.

    Empty elements are treated as carrying the empty string — XML offers
    no way to distinguish ``<e></e>`` from an ``<e>`` with a zero-length
    text child.
    """
    if any(isinstance(child, Element) for child in element.children):
        return ValidationReport.failure(
            f"simple type {declaration.name!r} does not allow child "
            "elements",
            path=str(element.dewey()),
        )
    stats.text_nodes_visited += sum(
        1 for child in element.children if isinstance(child, Text)
    )
    stats.simple_values_checked += 1
    text = element.text()
    if not declaration.validate(text):
        return ValidationReport.failure(
            f"value {text!r} does not conform to simple type "
            f"{declaration.name!r}",
            path=str(element.dewey()),
        )
    return ValidationReport.success()
