"""Schema cast validation *with* modifications (Section 3.3).

Validates the Δ-encoded tree ``T'`` of an :class:`UpdateSession` against
the target schema, exploiting source-validity of the original tree ``T``
wherever the ``modified`` predicate says a subtree is untouched.  The
four cases of the paper:

1. unmodified subtree → hand off to the no-modifications cast validator
   (Section 3.2);
2. ``Δ^a_ε`` (deleted) → nothing to validate;
3. ``Δ^ε_b`` (inserted) → no source knowledge, full target validation of
   the subtree;
4. otherwise → check the node's content string under ``Proj_new``
   against ``regexp_τ'`` — here the Section 4.3 *string cast with
   modifications* applies, since the ``Proj_old`` string is known to be
   in ``L(regexp_τ)`` — then recurse with the child-type pairs derived
   from the two projections.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.core.cast import CastValidator
from repro.core.memo import ValidationMemo
from repro.core.result import ValidationReport, ValidationStats
from repro.core.updates import UpdateSession
from repro.errors import DocumentTooDeepError
from repro.guards import Deadline, Limits, resolve_limits
from repro.schema.model import ComplexType, SimpleType
from repro.schema.registry import SchemaPair
from repro.xmltree.dom import Element, Text


class CastWithModificationsValidator:
    """Revalidates an edited, originally S-valid document against S'.

    ``collect_stats=False`` runs the whole walk (including the embedded
    no-modifications cast of case 1) with counters off, on the compiled
    dense-table automata where a compiled form exists.
    """

    def __init__(
        self,
        pair: SchemaPair,
        *,
        use_string_cast: bool = True,
        collect_stats: bool = True,
        limits: Optional[Limits] = None,
        memo: Optional[ValidationMemo] = None,
    ):
        self.pair = pair
        self.use_string_cast = use_string_cast
        self.collect_stats = collect_stats
        self.limits = resolve_limits(limits)
        self._max_depth = (
            self.limits.max_tree_depth
            if self.limits.max_tree_depth is not None
            else sys.maxsize
        )
        self._deadline: Optional[Deadline] = None
        # The memo only ever serves case 1 (untouched subtrees, handed to
        # the embedded cast validator) — modified subtrees never reach
        # it, and the update session invalidates structural hashes along
        # every Δ's Dewey path, so stale fingerprints cannot survive.
        self._memo = memo
        self._cast = CastValidator(
            pair,
            use_string_cast=use_string_cast,
            collect_stats=collect_stats,
            limits=self.limits,
            memo=memo,
        )

    def validate(self, session: UpdateSession) -> ValidationReport:
        memo_base = (
            self._memo.snapshot() if self._memo is not None else None
        )
        report = self._validate_session(session)
        if memo_base is not None:
            assert self._memo is not None
            hits, misses, evictions = self._memo.snapshot()
            report.stats.memo_hits += hits - memo_base[0]
            report.stats.memo_misses += misses - memo_base[1]
            report.stats.memo_evictions += evictions - memo_base[2]
        return report

    def _validate_session(self, session: UpdateSession) -> ValidationReport:
        # One deadline spans the whole walk, shared with the embedded
        # cast validator (case 1 hands subtrees to it mid-recursion).
        self._deadline = self.limits.deadline()
        self._cast._deadline = self._deadline
        root = session.document.root
        if session.is_deleted(root):
            return ValidationReport.failure("the root element was deleted")
        new_label = session.proj_new(root)
        assert new_label is not None
        target_type = self.pair.target.root_type(new_label)
        if target_type is None:
            return ValidationReport.failure(
                f"label {new_label!r} is not a permitted root of the "
                "target schema"
            )
        stats = ValidationStats() if self.collect_stats else None
        if session.is_inserted(root):  # cannot happen via UpdateSession
            report = self._full_validate_live(session, target_type, root, stats)
            if stats is not None:
                report.stats = stats
            return report
        old_label = session.proj_old(root)
        assert old_label is not None
        source_type = self.pair.source.root_type(old_label)
        if source_type is None:
            report = self._full_validate_live(session, target_type, root, stats)
            if stats is not None:
                report.stats = stats
            return report
        report = self._validate_node(
            session, source_type, target_type, root, stats
        )
        if stats is not None:
            report.stats = stats
        return report

    # -- the recursive parallel walk -----------------------------------------

    def _validate_node(
        self,
        session: UpdateSession,
        source_type: str,
        target_type: str,
        element: Element,
        stats: Optional[ValidationStats],
        depth: int = 0,
    ) -> ValidationReport:
        if depth > self._max_depth:
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        if self._deadline is not None:
            self._deadline.tick()
        # Case 1: untouched subtree — plain schema cast applies.  A None
        # stats dispatches the cast onto its compiled fast path.
        if not session.modified(element):
            return self._cast.validate_element(
                source_type, target_type, element, stats, depth
            )
        if stats is not None:
            if session.is_touched(element):
                stats.deltas_seen += 1
            # Disjointness still applies when the *content* below may
            # have changed only in ways the types bound; but unlike the
            # untouched case, subsumption of τ by τ' says nothing about
            # a modified subtree, so no skip here.
            stats.elements_visited += 1
        target_decl = self.pair.target.type(target_type)
        from repro.core.validator import attribute_violation

        violation = attribute_violation(self.pair.target, target_decl, element)
        if violation:
            return ValidationReport.failure(
                violation, path=str(element.dewey()), stats=stats
            )
        if isinstance(target_decl, SimpleType):
            return self._check_simple(session, target_decl, element, stats)
        assert isinstance(target_decl, ComplexType)

        old_labels: list[str] = []
        new_labels: list[str] = []
        live_element_children: list[Element] = []
        for child in element.children:
            if isinstance(child, Text):
                if session.is_deleted(child):
                    continue
                if child.value.strip() == "":
                    continue
                if stats is not None:
                    stats.text_nodes_visited += 1
                return ValidationReport.failure(
                    f"complex type {target_type!r} does not allow "
                    "character data",
                    path=str(child.dewey()),
                    stats=stats,
                )
            old = session.proj_old(child)
            new = session.proj_new(child)
            if old is not None:
                old_labels.append(old)
            if new is not None:
                if new not in self.pair.target.alphabet:
                    # Renamed/inserted to a label the target schema does
                    # not know at all — cannot be valid, and content
                    # automata (which may early-accept) never see it.
                    return ValidationReport.failure(
                        f"label {new!r} does not occur in the target "
                        "schema",
                        path=str(child.dewey()),
                        stats=stats,
                    )
                new_labels.append(new)
                live_element_children.append(child)

        source_decl = self.pair.source.type(source_type)
        content_ok = self._check_content(
            source_type,
            target_type,
            old_labels if isinstance(source_decl, ComplexType) else None,
            new_labels,
            stats,
        )
        if not content_ok:
            return ValidationReport.failure(
                f"updated children of {element.label!r} do not match "
                f"content model {target_decl.content.to_source()} of "
                f"type {target_type!r}",
                path=str(element.dewey()),
                stats=stats,
            )

        for child in live_element_children:
            new = session.proj_new(child)
            assert new is not None
            child_target = target_decl.child_types.get(new)
            if child_target is None:
                return ValidationReport.failure(
                    f"no target type assigned to label {new!r}",
                    path=str(child.dewey()),
                    stats=stats,
                )
            old = session.proj_old(child)
            child_source = (
                source_decl.child_types.get(old)
                if isinstance(source_decl, ComplexType) and old is not None
                else None
            )
            if old is None or child_source is None:
                # Case 3 (inserted) or no usable source type ("if τ is
                # not a complex type, we must validate each t_i
                # explicitly"): full target validation of the subtree,
                # through the live view (tombstones skipped).
                report = self._full_validate_live(
                    session, child_target, child, stats, depth + 1
                )
            else:
                report = self._validate_node(
                    session, child_source, child_target, child, stats,
                    depth + 1,
                )
            if not report.valid:
                return report
        return ValidationReport.success(stats)

    def _full_validate_live(
        self,
        session: UpdateSession,
        type_name: str,
        element: Element,
        stats: Optional[ValidationStats],
        depth: int = 0,
    ) -> ValidationReport:
        """Full target validation of a subtree through the session's
        live view (deleted tombstones are invisible)."""
        if depth > self._max_depth:
            raise DocumentTooDeepError(
                f"element tree deeper than {self._max_depth} levels"
            )
        if self._deadline is not None:
            self._deadline.tick()
        if stats is not None:
            stats.elements_visited += 1
        declaration = self.pair.target.type(type_name)
        from repro.core.validator import attribute_violation

        violation = attribute_violation(self.pair.target, declaration, element)
        if violation:
            return ValidationReport.failure(
                violation, path=str(element.dewey()), stats=stats
            )
        if isinstance(declaration, SimpleType):
            return self._check_simple(session, declaration, element, stats)
        assert isinstance(declaration, ComplexType)
        live = session.live_children(element)
        labels: list[str] = []
        for child in live:
            if isinstance(child, Text):
                if child.value.strip() == "":
                    continue
                if stats is not None:
                    stats.text_nodes_visited += 1
                return ValidationReport.failure(
                    f"complex type {type_name!r} does not allow "
                    "character data",
                    path=str(child.dewey()),
                    stats=stats,
                )
            if child.label not in self.pair.target.alphabet:
                return ValidationReport.failure(
                    f"label {child.label!r} does not occur in the "
                    "target schema",
                    path=str(child.dewey()),
                    stats=stats,
                )
            labels.append(child.label)
        if stats is None:
            accepted = self.pair.target_immed_compiled(type_name).decide(
                self.pair.symbols.encode(labels)
            )
        else:
            result = self.pair.target_immed(type_name).scan(labels)
            stats.content_symbols_scanned += result.symbols_scanned
            accepted = result.accepted
        if not accepted:
            return ValidationReport.failure(
                f"children of {element.label!r} do not match content "
                f"model {declaration.content.to_source()} of type "
                f"{type_name!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        for child in live:
            if isinstance(child, Text):
                continue
            child_type = declaration.child_types.get(child.label)
            if child_type is None:
                return ValidationReport.failure(
                    f"no type assigned to label {child.label!r}",
                    path=str(child.dewey()),
                    stats=stats,
                )
            report = self._full_validate_live(
                session, child_type, child, stats, depth + 1
            )
            if not report.valid:
                return report
        return ValidationReport.success(stats)

    # -- content and simple-value checks ----------------------------------------

    def _check_content(
        self,
        source_type: str,
        target_type: str,
        old_labels: Optional[list[str]],
        new_labels: list[str],
        stats: Optional[ValidationStats],
    ) -> bool:
        """Check the updated child-label string against ``regexp_τ'``.

        When the original string is available (complex source type) the
        Section 4.3 with-modifications string cast is used; otherwise a
        plain target scan.
        """
        if self.use_string_cast and old_labels is not None:
            machine = self.pair.string_cast(source_type, target_type)
            result = machine.validate_modified(old_labels, new_labels)
            if stats is not None:
                stats.content_symbols_scanned += result.symbols_scanned
                if result.decision.value.startswith("immediate"):
                    stats.early_content_decisions += 1
            return result.accepted
        if stats is None:
            return self.pair.target_immed_compiled(target_type).decide(
                self.pair.symbols.encode(new_labels)
            )
        immed = self.pair.target_immed(target_type)
        result = immed.scan(new_labels)
        stats.content_symbols_scanned += result.symbols_scanned
        if result.early:
            stats.early_content_decisions += 1
        return result.accepted

    def _check_simple(
        self,
        session: UpdateSession,
        declaration: SimpleType,
        element: Element,
        stats: Optional[ValidationStats],
    ) -> ValidationReport:
        live = session.live_children(element)
        if any(isinstance(child, Element) for child in live):
            return ValidationReport.failure(
                f"simple type {declaration.name!r} does not allow child "
                "elements",
                path=str(element.dewey()),
                stats=stats,
            )
        if stats is not None:
            stats.text_nodes_visited += len(live)
            stats.simple_values_checked += 1
        text = "".join(
            child.value for child in live if isinstance(child, Text)
        )
        if not declaration.validate(text):
            return ValidationReport.failure(
                f"value {text!r} does not conform to simple type "
                f"{declaration.name!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        return ValidationReport.success(stats)
