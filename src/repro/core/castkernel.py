"""The fused parse+validate loop of the streaming schema cast.

:meth:`~repro.core.streaming.StreamingCastValidator.validate_text`
used to run two coroutines — ``iterparse`` producing event objects, the
validator consuming them — with an allocation, a generator suspension
and an ``isinstance`` dispatch per event.  This module fuses the two:
one loop owns the :class:`~repro.xmltree.lexer.Scanner` cursor directly
and validates each construct the moment the lexer matches it, against
the flat :class:`~repro.schema.pairkernel.PairKernel` tables.  Per
child element the hot path is: one dict lookup (label → symbol id),
one flat-table load (parent content step), one action-row load (child
record / skip / fail), and a list push — no event objects, no method
dispatch, no per-event attribute access.

On top of the fused walk sits the *leaf fast path*: an attribute-free
element holding only entity- and bracket-free text (the dominant node
shape of data-oriented XML) is consumed by a single C-level match
(:data:`~repro.xmltree.lexer.LEAF_RE`, or the compiled backend's
``leaf_scan``) and validated in place — start tag, value and end tag
never become separate tokens.

Semantics are byte-identical to the event pipeline — same verdicts,
same failure messages and Dewey paths, same
:class:`~repro.core.result.ValidationStats` counters, same guard
behaviour (document size, depth, entities, deadline ticks once per
start tag) — asserted by ``tests/core/test_kernel_equivalence.py``
across both kernel backends.  The only tolerated divergence is
wall-clock deadline *granularity* on skipped regions (the byte skim
ticks per skimmed tag, the leaf path once per leaf).

Both skip modes of the event pipeline are fused here: ``byte_skip``
skims subsumed subtrees at the byte level via
:meth:`Scanner.skim_subtree`, otherwise the loop drains the subtree's
tokens with well-formedness checks only (the event path's
``skip_depth`` drain, without materializing the events).
"""

from __future__ import annotations

from repro import kernel as _kernel
from repro.core.result import ValidationReport, ValidationStats
from repro.core.validator import attribute_violation_parts
from repro.guards import check_depth, check_document_size
from repro.schema.pairkernel import (
    A_DISJOINT,
    A_NO_SOURCE,
    A_NO_TARGET,
    A_SUBSUME,
    K_SIMPLE,
)
from repro.schema.simple import compiled_checker
from repro.xmltree.events import _attributes, _skip_prolog, _trailing_misc
from repro.xmltree.lexer import (
    END_TAG_RE,
    LEAF_RE,
    TOK_CDATA,
    TOK_COMMENT,
    TOK_END,
    TOK_START,
    TOK_TEXT,
    XML_WS_RE,
    Scanner,
)

# Frame layout (plain lists — cheaper than dataclass instances in the
# hot loop): [record, state, decided, text_parts, child_index, label,
# position].
_REC = 0
_STATE = 1
_DECIDED = 2
_TEXT = 3
_CHILDREN = 4
_LABEL = 5
_POS = 6


def run_cast(validator, text, *, byte_skip=False, trusted=False):
    """Fused replacement for ``validate_text`` on a
    :class:`~repro.core.streaming.StreamingCastValidator`."""
    from repro.errors import XMLSyntaxError

    try:
        return _run(validator.pair, validator.limits, text,
                    byte_skip, trusted)
    except XMLSyntaxError as error:
        return ValidationReport.failure(f"not well-formed: {error}")


def _run(pair, limits, text, byte_skip, trusted):
    kernel = pair.kernel()
    stats = ValidationStats()
    check_document_size(len(text), limits)
    deadline = limits.deadline()
    scanner = Scanner(text, limits=limits, deadline=deadline)
    _skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")

    # Locals-hoisted lookups: every per-token attribute access the loop
    # would repeat is bound once here.
    src = scanner.text
    n = len(src)
    ids = pair.symbols.ids
    records = kernel.records
    materialize = kernel.materialize
    root_actions = kernel.root_actions
    target_schema = pair.target
    limits_ = scanner.limits
    next_content_match = scanner.next_content_match
    start_tag_parts = scanner.start_tag_parts
    c = _kernel.C
    leaf_scan = c.leaf_scan if c is not None else None
    leaf_match = LEAF_RE.match
    ws_match = XML_WS_RE.match
    end_match = END_TAG_RE.match
    # Depth guard, inlined to one compare per element: the full check
    # (with its exact error message) only runs once the bound is hit.
    depth_limit = limits_.max_tree_depth
    if depth_limit is None:
        depth_limit = n + 2  # unreachable: depth is bounded by len(src)

    vstack = []          # validator frames (excludes skipped subtrees)
    parse_stack = []     # open labels for well-formedness and depth
    text_parts = []      # pending character data, decoded
    drain = 0            # event-skip depth (subsumed subtree, no skim)

    def _path(stack):
        return ".".join(str(frame[_POS]) for frame in stack[1:])

    def _content_fail(rec, label, path):
        return ValidationReport.failure(
            f"children of {label!r} do not match content model "
            f"{rec.target_decl.content.to_source()} of type "
            f"{rec.target_type!r}",
            path=path,
        )

    def flush():
        """Deliver pending character data to the open frame (the event
        path's merged ``Characters``); returns a failure report or
        ``None``.  Whitespace-only runs are dropped, drained regions
        discard."""
        value = "".join(text_parts)
        del text_parts[:]
        if not value.strip() or drain:
            return None
        top = vstack[-1]
        rec = top[_REC]
        if rec.kind == K_SIMPLE:
            top[_TEXT].append(value)
            return None
        stats.text_nodes_visited += 1
        return ValidationReport.failure(
            f"complex type {rec.target_type!r} does not allow "
            "character data",
            path=_path(vstack),
        )

    def end_frame(frame, below):
        """The event path's ``_end`` on a popped frame; ``below`` is the
        stack without it."""
        rec = frame[_REC]
        if rec.kind == K_SIMPLE:
            parts = frame[_TEXT]
            if parts:
                stats.text_nodes_visited += 1
            stats.simple_values_checked += 1
            value = "".join(parts)
            if not value.strip():
                value = ""
            check = rec.check
            if check is None:  # record loaded from a pickled artifact
                check = rec.check = compiled_checker(rec.simple_decl)
            if not check(value):
                return ValidationReport.failure(
                    f"value {value!r} does not conform to simple type "
                    f"{rec.simple_decl.name!r}",
                    path=_path(below + [frame]),
                )
            return None
        if frame[_DECIDED]:
            return None
        bits = rec.flags[frame[_STATE]]
        if bits & 2:  # IA (machine records only; plain flags lack it)
            stats.early_content_decisions += 1
            return None
        if not bits & 1:
            return _content_fail(rec, frame[_LABEL],
                                 _path(below + [frame]))
        return None

    def _leaf_fail_path(position):
        parent_path = _path(vstack)
        return (
            f"{parent_path}.{position}" if parent_path else str(position)
        )

    while True:
        pos = scanner.pos

        # -- leaf + end-tag fast path --------------------------------------
        if vstack and pos < n:
            lpos = pos
            if src[pos] != "<" and (
                drain or vstack[-1][_REC].kind != K_SIMPLE
            ):
                # Indentation rides along with the fast paths: alone,
                # a whitespace run is a dropped (or drained) text node,
                # and merged with pending text it changes neither the
                # merge's strippedness nor any failure message.  Simple
                # content keeps its whitespace (part of the value), so
                # those frames opt out.
                wm = ws_match(src, pos)
                if wm is not None:
                    wend = wm.end()
                    if wend < n and src[wend] == "<":
                        lpos = wend
            if src[lpos] == "<":
                if leaf_scan is not None:
                    leaf = leaf_scan(src, lpos)
                else:
                    m = leaf_match(src, lpos)
                    leaf = (
                        None
                        if m is None
                        else (m.group(1), m.group(2), m.start(2), m.end())
                    )
            else:
                leaf = None
                lpos = pos
            if leaf is not None:
                if drain:
                    if len(parse_stack) >= depth_limit:
                        check_depth(len(parse_stack) + 1, limits_)
                    if deadline is not None:
                        deadline.tick()
                    del text_parts[:]
                    scanner.pos = leaf[3]
                    continue
                top = vstack[-1]
                rec_p = top[_REC]
                if rec_p.kind != K_SIMPLE:
                    if text_parts:
                        failure = flush()
                        if failure is not None:
                            failure.stats = stats
                            return failure
                    if len(parse_stack) >= depth_limit:
                        check_depth(len(parse_stack) + 1, limits_)
                    if deadline is not None:
                        deadline.tick()
                    name, value, value_start, end = leaf
                    scanner.pos = end
                    sid = ids.get(name, -1)
                    position = top[_CHILDREN]
                    top[_CHILDREN] = position + 1
                    if not top[_DECIDED]:
                        state = top[_STATE]
                        bits = rec_p.flags[state]
                        if bits & 2:  # IA
                            top[_DECIDED] = True
                            stats.early_content_decisions += 1
                        elif bits & 4:  # IR
                            stats.early_content_decisions += 1
                            failure = _content_fail(
                                rec_p, top[_LABEL], _path(vstack)
                            )
                            failure.stats = stats
                            return failure
                        elif sid < 0 or (
                            (ns := rec_p.table[state * rec_p.width + sid])
                            < 0
                        ):
                            failure = _content_fail(
                                rec_p, top[_LABEL], _path(vstack)
                            )
                            failure.stats = stats
                            return failure
                        else:
                            top[_STATE] = ns
                            stats.content_symbols_scanned += 1
                    action = rec_p.action[sid] if sid >= 0 else A_NO_TARGET
                    if action >= 0:
                        rec = records[action]
                        if not rec.ready:
                            materialize(rec)
                        stats.elements_visited += 1
                        if rec.has_attrs:
                            violation = attribute_violation_parts(
                                target_schema, rec.target_decl, name, None
                            )
                            if violation:
                                failure = ValidationReport.failure(
                                    violation, path=_path(vstack)
                                )
                                failure.stats = stats
                                return failure
                        if rec.kind == K_SIMPLE:
                            if value.strip():
                                stats.text_nodes_visited += 1
                            else:
                                value = ""
                            stats.simple_values_checked += 1
                            check = rec.check
                            if check is None:  # pickled artifact
                                check = rec.check = compiled_checker(
                                    rec.simple_decl
                                )
                            if not check(value):
                                failure = ValidationReport.failure(
                                    f"value {value!r} does not conform "
                                    "to simple type "
                                    f"{rec.simple_decl.name!r}",
                                    path=_leaf_fail_path(position),
                                )
                                failure.stats = stats
                                return failure
                        elif value.strip():
                            stats.text_nodes_visited += 1
                            failure = ValidationReport.failure(
                                f"complex type {rec.target_type!r} does "
                                "not allow character data",
                                path=_leaf_fail_path(position),
                            )
                            failure.stats = stats
                            return failure
                        else:
                            # Empty content against the child machine.
                            if rec.always_accepts:
                                stats.early_content_decisions += 1
                            else:
                                bits = rec.flags[rec.start]
                                if bits & 2:  # IA
                                    stats.early_content_decisions += 1
                                elif not bits & 1:
                                    failure = _content_fail(
                                        rec, name,
                                        _leaf_fail_path(position),
                                    )
                                    failure.stats = stats
                                    return failure
                        continue
                    if action == A_SUBSUME:
                        stats.subtrees_skipped += 1
                        if byte_skip:
                            stats.subtrees_byte_skipped += 1
                            stats.bytes_skipped += end - value_start
                        continue
                    if action == A_DISJOINT:
                        stats.disjoint_rejections += 1
                        c_source, c_target = kernel.child_types(rec_p, sid)
                        failure = ValidationReport.failure(
                            f"source type {c_source!r} is disjoint from "
                            f"target type {c_target!r}",
                            path=_path(vstack),
                        )
                        failure.stats = stats
                        return failure
                    if action == A_NO_TARGET:
                        failure = ValidationReport.failure(
                            f"no target type assigned to label {name!r}",
                            path=_path(vstack),
                        )
                    else:  # A_NO_SOURCE
                        failure = ValidationReport.failure(
                            f"no source type for label {name!r} "
                            "(promise violated)",
                            path=_path(vstack),
                        )
                    failure.stats = stats
                    return failure
            elif (
                lpos + 1 < n
                and src[lpos + 1] == "/"
                and (lpos != pos or scanner._finditer_pos != pos)
            ):
                # End-tag fast path, taken only when the master sweep
                # is already stale (a leaf or skim moved the cursor out
                # of band) or leading whitespace was swallowed — the
                # cases where the sweep would have to reseed anyway.
                em = end_match(src, lpos)
                if em is not None:
                    if text_parts:
                        failure = flush()
                        if failure is not None:
                            failure.stats = stats
                            return failure
                    close_name = em.group("ename")
                    scanner.pos = em.end()
                    if not parse_stack or parse_stack[-1] != close_name:
                        raise scanner.error(
                            f"mismatched close tag </{close_name}>"
                        )
                    parse_stack.pop()
                    if drain:
                        drain -= 1
                        if not parse_stack:
                            break
                        continue
                    frame = vstack.pop()
                    failure = end_frame(frame, vstack)
                    if failure is not None:
                        failure.stats = stats
                        return failure
                    if not parse_stack:
                        break
                    continue

        hit = next_content_match()
        if hit is None:
            # EOF or markup the master regex declined: replay the event
            # path's slow diagnostics (flush-before-tag ordering kept —
            # a text failure beats the syntax error, exactly as the
            # suspended event generator never got to raise).
            if scanner.at_end():
                if parse_stack:
                    raise scanner.error(
                        f"unterminated element <{parse_stack[-1]}>"
                    )
                break
            if scanner.starts_with("</"):
                failure = flush()
                if failure is not None:
                    failure.stats = stats
                    return failure
                scanner.advance(2)
                close_name = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
                if not parse_stack or parse_stack[-1] != close_name:
                    raise scanner.error(
                        f"mismatched close tag </{close_name}>"
                    )
            elif scanner.starts_with("<!--"):
                scanner.advance(4)
                body = scanner.read_until("-->", what="comment")
                if "--" in body:
                    raise scanner.error(
                        "'--' is not allowed inside a comment"
                    )
            elif scanner.starts_with("<![CDATA["):
                scanner.advance(9)
                scanner.read_until("]]>", what="CDATA section")
            elif scanner.starts_with("<?"):
                scanner.advance(2)
                scanner.read_until("?>", what="processing instruction")
            else:
                failure = flush()
                if failure is not None:
                    failure.stats = stats
                    return failure
                check_depth(len(parse_stack) + 1, limits_)
                if deadline is not None:
                    deadline.tick()
                scanner.expect("<")
                name = scanner.read_name()
                _attributes(scanner, name)
                if not scanner.match("/>"):
                    scanner.expect(">")
            raise AssertionError(
                "master regex rejected markup the character-level "
                f"scanner accepts at offset {scanner.pos}"
            )
        kind, m = hit

        if kind == TOK_TEXT:
            raw = m.group("text")
            scanner.pos = m.end()
            bad = raw.find("]]>")
            if bad >= 0:
                raise scanner.error(
                    "']]>' is not allowed in character data", pos + bad
                )
            if not parse_stack:
                if raw.strip():
                    raise scanner.error("character data outside the root")
                continue
            if "&" in raw:
                raw = scanner.decode_entities(raw, pos)
            text_parts.append(raw)

        elif kind == TOK_START:
            if text_parts:
                failure = flush()
                if failure is not None:
                    failure.stats = stats
                    return failure
            if len(parse_stack) >= depth_limit:
                check_depth(len(parse_stack) + 1, limits_)
            if deadline is not None:
                deadline.tick()
            name, attributes, self_closing = start_tag_parts(m)
            if drain:
                if not self_closing:
                    drain += 1
                    parse_stack.append(name)
                continue
            sid = ids.get(name, -1)
            if not vstack:
                action = root_actions.get(name, A_NO_TARGET)
                if action == A_NO_TARGET:
                    failure = ValidationReport.failure(
                        f"label {name!r} is not a permitted root of "
                        "the target schema"
                    )
                    failure.stats = stats
                    return failure
                if action == A_NO_SOURCE:
                    failure = ValidationReport.failure(
                        f"label {name!r} is not a permitted root of "
                        "the source schema (promise violated)"
                    )
                    failure.stats = stats
                    return failure
                position = 0
                rec_p = None
            else:
                top = vstack[-1]
                rec_p = top[_REC]
                position = top[_CHILDREN]
                top[_CHILDREN] = position + 1
                if rec_p.kind == K_SIMPLE:
                    failure = ValidationReport.failure(
                        f"simple type {rec_p.target_type!r} does not "
                        "allow child elements",
                        path=_path(vstack),
                    )
                    failure.stats = stats
                    return failure
                if not top[_DECIDED]:
                    state = top[_STATE]
                    bits = rec_p.flags[state]
                    if bits & 2:  # IA
                        top[_DECIDED] = True
                        stats.early_content_decisions += 1
                    elif bits & 4:  # IR
                        stats.early_content_decisions += 1
                        failure = _content_fail(
                            rec_p, top[_LABEL], _path(vstack)
                        )
                        failure.stats = stats
                        return failure
                    elif sid < 0 or (
                        (ns := rec_p.table[state * rec_p.width + sid]) < 0
                    ):
                        failure = _content_fail(
                            rec_p, top[_LABEL], _path(vstack)
                        )
                        failure.stats = stats
                        return failure
                    else:
                        top[_STATE] = ns
                        stats.content_symbols_scanned += 1
                action = rec_p.action[sid] if sid >= 0 else A_NO_TARGET
                if action == A_NO_TARGET:
                    failure = ValidationReport.failure(
                        f"no target type assigned to label {name!r}",
                        path=_path(vstack),
                    )
                    failure.stats = stats
                    return failure
                if action == A_NO_SOURCE:
                    failure = ValidationReport.failure(
                        f"no source type for label {name!r} "
                        "(promise violated)",
                        path=_path(vstack),
                    )
                    failure.stats = stats
                    return failure

            if action == A_SUBSUME:
                stats.subtrees_skipped += 1
                if byte_skip:
                    stats.subtrees_byte_skipped += 1
                if self_closing:
                    if not parse_stack:
                        break  # self-closed subsumed root
                    continue
                parse_stack.append(name)
                if byte_skip:
                    start = scanner.pos
                    end = scanner.skim_subtree(
                        label=name,
                        base_depth=len(parse_stack),
                        trusted=trusted,
                    )
                    parse_stack.pop()
                    stats.bytes_skipped += end - start
                    if not parse_stack:
                        break  # the skim closed the root
                else:
                    drain = 1
                continue
            if action == A_DISJOINT:
                stats.disjoint_rejections += 1
                if rec_p is None:
                    d_source = pair.source.root_type(name)
                    d_target = pair.target.root_type(name)
                else:
                    d_source, d_target = kernel.child_types(rec_p, sid)
                failure = ValidationReport.failure(
                    f"source type {d_source!r} is disjoint from target "
                    f"type {d_target!r}",
                    path=_path(vstack),
                )
                failure.stats = stats
                return failure

            rec = records[action]
            if not rec.ready:
                materialize(rec)
            stats.elements_visited += 1
            if attributes is not None or rec.has_attrs:
                violation = attribute_violation_parts(
                    target_schema, rec.target_decl, name, attributes
                )
                if violation:
                    failure = ValidationReport.failure(
                        violation, path=_path(vstack)
                    )
                    failure.stats = stats
                    return failure
            if rec.kind == K_SIMPLE:
                frame = [rec, 0, True, [], 0, name, position]
            else:
                decided = rec.always_accepts
                if decided:
                    stats.early_content_decisions += 1
                frame = [rec, rec.start, decided, None, 0, name, position]
            if self_closing:
                failure = end_frame(frame, vstack)
                if failure is not None:
                    failure.stats = stats
                    return failure
                if not parse_stack:
                    break  # self-closed root
            else:
                parse_stack.append(name)
                vstack.append(frame)

        elif kind == TOK_END:
            if text_parts:
                failure = flush()
                if failure is not None:
                    failure.stats = stats
                    return failure
            close_name = m.group("ename")
            scanner.pos = m.end()
            if not parse_stack or parse_stack[-1] != close_name:
                raise scanner.error(
                    f"mismatched close tag </{close_name}>"
                )
            parse_stack.pop()
            if drain:
                drain -= 1
                if not parse_stack:
                    break
                continue
            frame = vstack.pop()
            failure = end_frame(frame, vstack)
            if failure is not None:
                failure.stats = stats
                return failure
            if not parse_stack:
                break

        elif kind == TOK_COMMENT:
            scanner.pos = m.end()
            if "--" in m.group("comment"):
                raise scanner.error("'--' is not allowed inside a comment")

        elif kind == TOK_CDATA:
            scanner.pos = m.end()
            text_parts.append(m.group("cdata"))

        else:  # TOK_PI
            scanner.pos = m.end()

    _trailing_misc(scanner)
    return ValidationReport.success(stats)
