"""Parallel, fault-tolerant multi-document validation over one schema pair.

The paper's cost model splits validation into static preprocessing
(schemas only) and a per-document runtime.  When many documents must be
revalidated against the same pair — a feed migration, a corpus audit —
the static part should be paid once and the per-document part should
use every core.  :func:`validate_batch` does exactly that: one future
per document is dispatched over a
:class:`concurrent.futures.ProcessPoolExecutor`, and the warmed
:class:`~repro.schema.registry.SchemaPair` reaches each worker by the
cheapest route the platform offers —

* **fork** start method: workers inherit the parent's compiled tables
  copy-on-write through a module global; nothing is pickled at all;
* **spawn** with a persisted artifact available: only the artifact
  *path* rides the initializer, and the worker loads the pickle (with
  the artifact layer's size check) lazily on its first document;
* otherwise: the pair itself is pickled once per worker via the
  initializer — still once per worker, never once per document.

Workers can also share one bounded verdict memo
(:class:`~repro.core.memo.ValidationMemo`, ``memo_size``) across every
document they validate, so structurally repeated subtrees in a corpus
are skipped after their first appearance; per-worker memo counters are
merged into the fleet-wide ``BatchResult.stats``.

Fault tolerance is the batch contract:

* **No per-document exception is fatal.**  Workers catch every
  exception below ``KeyboardInterrupt``/``SystemExit`` — typed
  :class:`~repro.errors.ReproError` failures (syntax, resource limits,
  deadlines), ``OSError``, and unexpected bugs alike — and report them
  through :attr:`DocumentResult.error`.
* **Worker death is survivable.**  If a worker process dies (segfault,
  ``os._exit``, OOM kill), the broken pool is discarded and the
  unfinished documents are retried in a *serial quarantine*: a fresh
  single-worker pool runs one document at a time, so a crash names its
  culprit exactly; that document is reported as crashed and the rest
  continue on another fresh pool.
* **Per-document budgets.**  ``limits`` (ambient defaults when
  ``None``) bound each document's size, depth, entity expansions, and —
  via ``deadline_seconds`` — wall-clock time; one
  :class:`~repro.guards.Deadline` token spans a document's parse and
  validation.
* **Transient IO retries.**  ``retries`` re-runs a document whose
  ``OSError`` may be transient (network filesystems, racing writers)
  before recording the failure.
* **Clean interrupts.**  ``KeyboardInterrupt`` cancels pending work and
  abandons the pool without waiting on stuck workers.

The parent merges worker :class:`ValidationStats` into one batch total
that equals the sequential sum exactly — parallelism changes wall-clock
time, never verdicts or counters.
"""

from __future__ import annotations

import fnmatch
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.cast import CastValidator
from repro.core.memo import ValidationMemo
from repro.core.result import ValidationStats
from repro.errors import BatchError, ReproError
from repro.guards import Limits, resolve_limits
from repro.schema.registry import SchemaPair
from repro.xmltree.parser import parse_file

#: How a worker obtains its :class:`SchemaPair`.  ``("inline", pair)``
#: pickles the pair through the pool initializer; ``("fork", None)``
#: reads the parent's :data:`_FORK_PAIR` global inherited copy-on-write;
#: ``("artifact", path)`` lazily loads the persisted artifact on the
#: worker's first document.
PairSource = tuple[str, object]

#: A test-only hook run in the worker before each document; raising (or
#: killing the process) simulates faults.  Must be a picklable top-level
#: callable so it survives spawn-based platforms.
FaultHook = Callable[[str], None]


@dataclass(frozen=True)
class DocumentResult:
    """Outcome of validating one file of the batch."""

    path: str
    valid: bool
    reason: str = ""
    error: str = ""  # parse/IO/limit/crash text; empty when validated
    #: Exception class name behind ``error`` (``"WorkerCrash"`` for a
    #: died worker); empty when the document validated normally.
    error_type: str = ""
    #: 1 + the number of OSError retries this document consumed.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Loaded and valid."""
        return self.valid and not self.error


@dataclass
class BatchResult:
    """All per-document outcomes plus the merged counters."""

    results: list[DocumentResult] = field(default_factory=list)
    stats: Optional[ValidationStats] = None

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def valid_count(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def invalid(self) -> list[DocumentResult]:
        return [result for result in self.results if not result.ok]

    @property
    def all_valid(self) -> bool:
        return self.valid_count == self.total

    @property
    def errors(self) -> list[DocumentResult]:
        """Documents that did not produce a verdict (error is set)."""
        return [result for result in self.results if result.error]


#: Per-worker configuration, set once by :func:`_init_worker`.  Module
#: globals (not closures) so the work function stays picklable.
_WORKER_CONFIG: Optional[
    tuple[PairSource, bool, bool, Limits, int, Optional[FaultHook],
          Optional[int], bool]
] = None

#: The validator, built lazily by :func:`_ensure_validator` on the
#: worker's first document — so an ``("artifact", path)`` source costs
#: no load in workers that never receive work.  A
#: :class:`~repro.core.streaming.StreamingCastValidator` in
#: ``stream_skip`` mode, a :class:`CastValidator` otherwise.
_WORKER_VALIDATOR = None

#: Fork-inheritance channel: the parent parks the warmed pair here just
#: before creating a fork-based pool, and workers read it back without
#: any pickling.  Always ``None`` outside a fork-mode batch.
_FORK_PAIR: Optional[SchemaPair] = None


def _init_worker(
    pair_source: PairSource,
    use_string_cast: bool,
    collect_stats: bool,
    limits: Optional[Limits] = None,
    retries: int = 0,
    fault_hook: Optional[FaultHook] = None,
    memo_size: Optional[int] = None,
    stream_skip: bool = False,
) -> None:
    global _WORKER_CONFIG, _WORKER_VALIDATOR
    _WORKER_CONFIG = (
        pair_source,
        use_string_cast,
        collect_stats,
        resolve_limits(limits),
        retries,
        fault_hook,
        memo_size,
        stream_skip,
    )
    _WORKER_VALIDATOR = None


def _resolve_pair(pair_source: PairSource) -> SchemaPair:
    kind, payload = pair_source
    if kind == "inline":
        assert isinstance(payload, SchemaPair)
        return payload
    if kind == "fork":
        assert _FORK_PAIR is not None, "fork pair not parked by the parent"
        return _FORK_PAIR
    assert kind == "artifact"
    from repro.schema import artifacts

    # load() size-checks the file against the ambient byte budget
    # before unpickling, so a corrupt or runaway artifact is an error
    # report, not an OOM.
    assert isinstance(payload, str)
    return artifacts.load(payload)


def _ensure_validator() -> tuple[object, bool, Limits, int,
                                 Optional[FaultHook], bool]:
    """The worker's validator, built on first use."""
    global _WORKER_VALIDATOR
    assert _WORKER_CONFIG is not None, "worker used before _init_worker"
    (pair_source, use_string_cast, collect_stats, limits, retries,
     fault_hook, memo_size, stream_skip) = _WORKER_CONFIG
    if _WORKER_VALIDATOR is None:
        if stream_skip:
            # DOM-free skip-scan mode: subtrees are never materialized,
            # so there is nothing to hash — the memo is ignored.
            from repro.core.streaming import StreamingCastValidator

            _WORKER_VALIDATOR = StreamingCastValidator(
                _resolve_pair(pair_source), limits=limits
            )
        else:
            memo = (
                ValidationMemo(memo_size, limits=limits)
                if memo_size is not None
                else None
            )
            _WORKER_VALIDATOR = CastValidator(
                _resolve_pair(pair_source),
                use_string_cast=use_string_cast,
                collect_stats=collect_stats,
                limits=limits,
                memo=memo,
            )
    return (_WORKER_VALIDATOR, collect_stats, limits, retries, fault_hook,
            stream_skip)


def _validate_one(path: str) -> tuple[DocumentResult, Optional[ValidationStats]]:
    """Validate one document; never raises (KeyboardInterrupt and
    SystemExit excepted — those are how a worker is told to die)."""
    assert _WORKER_CONFIG is not None, "worker used before _init_worker"
    retries = _WORKER_CONFIG[4]
    attempt = 0
    while True:
        attempt += 1
        try:
            # Built here, not in the initializer, so an artifact-load
            # failure is a per-document error report, not a pool crash.
            (validator, collect_stats, limits, _retries, fault_hook,
             stream_skip) = _ensure_validator()
            if fault_hook is not None:
                fault_hook(path)
            if stream_skip:
                # DOM-free skip-scan cast: one fused pass, timed as
                # validation (there is no separate parse phase).  A
                # syntax error propagates as ReproError, matching the
                # DOM path's per-document error capture below.
                from repro.guards import check_document_size
                from repro.xmltree.events import PullParser

                check_document_size(
                    os.path.getsize(path), limits, what=f"file {path!r}"
                )
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                run_start = time.perf_counter()
                report = validator.validate_pull(
                    PullParser(text, limits=limits,
                               deadline=limits.deadline(),
                               symbols=validator.pair.symbols),
                    interned=True,
                )
                if collect_stats:
                    report.stats.validate_seconds += (
                        time.perf_counter() - run_start
                    )
            else:
                # One deadline token spans parse + validation.  Parsing
                # against the pair's symbol table interns element names
                # at lex time, so validation runs on dense ids.
                deadline = limits.deadline()
                parse_start = time.perf_counter()
                document = parse_file(
                    path, limits=limits, deadline=deadline,
                    symbols=validator.pair.symbols,
                )
                parse_end = time.perf_counter()
                report = validator.validate(document, deadline=deadline)
                if collect_stats:
                    report.stats.parse_seconds += parse_end - parse_start
                    report.stats.validate_seconds += (
                        time.perf_counter() - parse_end
                    )
        except ReproError as error:
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    attempts=attempt,
                ),
                None,
            )
        except OSError as error:
            if attempt <= retries:
                continue  # transient IO: bounded retry
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    attempts=attempt,
                ),
                None,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:  # noqa: BLE001 — the batch contract
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=f"unexpected {type(error).__name__}: {error}",
                    error_type=type(error).__name__,
                    attempts=attempt,
                ),
                None,
            )
        # In throughput mode with a memo, report.stats still carries the
        # per-document memo deltas (and nothing else) — ship those so
        # the parent can merge a fleet-wide hit rate.
        stats = (
            report.stats
            if collect_stats or getattr(validator, "_memo", None) is not None
            else None
        )
        return (
            DocumentResult(
                path, valid=report.valid, reason=report.reason,
                attempts=attempt,
            ),
            stats,
        )


def _crash_result(path: str) -> DocumentResult:
    return DocumentResult(
        path,
        valid=False,
        error="worker process died while validating this document",
        error_type="WorkerCrash",
    )


def validate_batch(
    pair: SchemaPair,
    paths: Sequence[str],
    *,
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
    warm: bool = True,
    limits: Optional[Limits] = None,
    retries: int = 0,
    fault_hook: Optional[FaultHook] = None,
    memo_size: Optional[int] = None,
    artifact_path: Optional[str] = None,
    stream_skip: bool = False,
) -> BatchResult:
    """Validate many documents against one schema pair.

    Args:
        pair: the preprocessed pair; warmed here (once, in the parent)
            unless ``warm=False``, so workers inherit finished machines.
        paths: document files; results come back sorted by path.
        jobs: worker processes; ``1`` validates sequentially in-process
            (no pool, the baseline the tests compare against — and the
            one mode without worker-crash isolation).
        use_string_cast: as for :class:`CastValidator`.
        collect_stats: gather per-document counters and merge them into
            ``BatchResult.stats`` (the merged total equals the
            sequential sum).  Off by default — throughput mode.
        warm: pre-build the pair's machines before dispatch.
        limits: per-document resource budgets (ambient defaults when
            ``None``); ``limits.deadline_seconds`` is the per-document
            timeout, enforced cooperatively inside the worker.
        retries: extra attempts for documents failing with ``OSError``.
        fault_hook: test-only callable run before each document in the
            worker (see :data:`FaultHook`).
        memo_size: when set, each worker shares one bounded
            :class:`ValidationMemo` of this capacity across all its
            documents; memo counters land in ``BatchResult.stats`` even
            with ``collect_stats=False``.  ``None`` disables the memo.
        artifact_path: a persisted pair artifact
            (:mod:`repro.schema.artifacts`) for this pair.  On
            spawn-based platforms workers load it lazily instead of
            unpickling the initializer-shipped pair; ignored where fork
            inheritance is cheaper.
        stream_skip: validate DOM-free through the streaming cast's
            byte-level skip-scan path — subsumed subtrees are never
            tokenized (see :mod:`repro.core.streaming`).  No tree is
            built, so ``memo_size`` and ``use_string_cast`` are
            ignored; parse and validation are one fused phase
            (``validate_seconds`` carries the whole per-document
            wall-clock when ``collect_stats`` is on).

    A document that fails — bad syntax, resource limit, IO error, even
    a worker crash — is reported via ``error`` and counts as not ok; it
    never aborts the rest of the batch.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    limits = resolve_limits(limits)
    if warm:
        pair.warm()
    merged = (
        ValidationStats()
        if collect_stats or memo_size is not None
        else None
    )
    outcomes: list[DocumentResult] = []

    def record(result: DocumentResult, stats: Optional[ValidationStats]) -> None:
        outcomes.append(result)
        if merged is not None and stats is not None:
            merged.merge(stats)

    def initargs(pair_source: PairSource) -> tuple:
        return (pair_source, use_string_cast, collect_stats, limits,
                retries, fault_hook, memo_size, stream_skip)

    global _FORK_PAIR
    if jobs == 1 or len(paths) <= 1:
        _init_worker(*initargs(("inline", pair)))
        try:
            for path in paths:
                record(*_validate_one(path))
        finally:
            global _WORKER_CONFIG, _WORKER_VALIDATOR
            _WORKER_CONFIG = None
            _WORKER_VALIDATOR = None
    elif multiprocessing.get_start_method() == "fork":
        # Workers are forked from this process, so the compiled tables
        # travel copy-on-write through the module global: zero pickling
        # for the pair, regardless of its size.
        _FORK_PAIR = pair
        try:
            _run_pool(paths, jobs, initargs(("fork", None)), record)
        finally:
            _FORK_PAIR = None
    elif artifact_path is not None:
        # Spawn-based platform with a persisted artifact: ship the path
        # (a few bytes) once, and let each worker load the pickle on its
        # first document.
        _run_pool(paths, jobs, initargs(("artifact", artifact_path)), record)
    else:
        _run_pool(paths, jobs, initargs(("inline", pair)), record)
    outcomes.sort(key=lambda result: result.path)
    return BatchResult(results=outcomes, stats=merged)


def _run_pool(
    paths: Sequence[str],
    jobs: int,
    initargs: tuple,
    record: Callable[[DocumentResult, Optional[ValidationStats]], None],
) -> None:
    """Dispatch ``paths`` over a worker pool, surviving worker death.

    Phase 1 runs everything on a ``jobs``-wide pool.  If the pool
    breaks, every unfinished document moves to phase 2: fresh
    single-worker pools run one document at a time, so a repeat crash
    identifies the culprit document exactly; it is recorded as crashed
    and the survivors continue.
    """
    remaining = _parallel_phase(list(paths), jobs, initargs, record)
    while remaining:
        remaining = _quarantine_phase(remaining, initargs, record)


def _parallel_phase(
    paths: list[str],
    jobs: int,
    initargs: tuple,
    record: Callable[[DocumentResult, Optional[ValidationStats]], None],
) -> list[str]:
    """Full-width dispatch; returns the paths lost to a pool break."""
    executor = ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=initargs
    )
    lost: list[str] = []
    try:
        futures = {
            executor.submit(_validate_one, path): path for path in paths
        }
        for future in as_completed(futures):
            path = futures[future]
            try:
                result, stats = future.result()
            except BrokenProcessPool:
                # Completed futures keep their results; only the ones
                # in flight or still queued land here.
                lost.append(path)
                continue
            record(result, stats)
    finally:
        # wait=False + cancel_futures: a KeyboardInterrupt (or the
        # break handling above) must not block on stuck workers.
        executor.shutdown(wait=False, cancel_futures=True)
    return lost


def _quarantine_phase(
    paths: list[str],
    initargs: tuple,
    record: Callable[[DocumentResult, Optional[ValidationStats]], None],
) -> list[str]:
    """Serial re-run of crash-suspect paths on a fresh one-worker pool.

    Exactly one document is in flight at a time, so a pool break blames
    that document; it is recorded as crashed and the remainder is
    returned for the caller to continue on yet another fresh pool.
    """
    executor = ProcessPoolExecutor(
        max_workers=1, initializer=_init_worker, initargs=initargs
    )
    try:
        for index, path in enumerate(paths):
            future = executor.submit(_validate_one, path)
            try:
                result, stats = future.result()
            except BrokenProcessPool:
                record(_crash_result(path), None)
                return paths[index + 1:]
            record(result, stats)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return []


def validate_directory(
    pair: SchemaPair,
    directory: str,
    *,
    pattern: str = "*.xml",
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
    limits: Optional[Limits] = None,
    retries: int = 0,
    memo_size: Optional[int] = None,
    artifact_path: Optional[str] = None,
    stream_skip: bool = False,
) -> BatchResult:
    """Validate every ``pattern`` file directly under ``directory``.

    Non-file entries (subdirectories, sockets, dangling symlinks) are
    skipped even when their names match.  A missing or unreadable
    ``directory`` raises :class:`~repro.errors.BatchError` — the batch
    cannot start, which is different from a per-document failure.
    """
    if not os.path.isdir(directory):
        raise BatchError(
            f"input directory {directory!r} does not exist or is not a "
            "directory"
        )
    try:
        names = os.listdir(directory)
    except OSError as error:
        raise BatchError(
            f"cannot read input directory {directory!r}: {error}"
        ) from error
    paths = sorted(
        path
        for name in names
        if fnmatch.fnmatch(name, pattern)
        and os.path.isfile(path := os.path.join(directory, name))
    )
    return validate_batch(
        pair,
        paths,
        jobs=jobs,
        use_string_cast=use_string_cast,
        collect_stats=collect_stats,
        limits=limits,
        retries=retries,
        memo_size=memo_size,
        artifact_path=artifact_path,
        stream_skip=stream_skip,
    )
