"""Parallel, fault-tolerant, resumable multi-document validation.

The paper's cost model splits validation into static preprocessing
(schemas only) and a per-document runtime.  When many documents must be
revalidated against the same pair — a feed migration, a corpus audit —
the static part should be paid once and the per-document part should
use every core.  This module is the *scheduler* over that idea; the
mechanics live in :mod:`repro.core.fleet`:

* :func:`validate_batch` dispatches path-chunks over a
  :class:`~repro.core.fleet.WorkerFleet` — a resident worker pool with
  work-stealing, bounded in-flight backpressure, and zero-copy
  compiled-pair transport (the pair bytes materialize at most once per
  fleet, regardless of worker count).  Pass your own ``fleet`` to reuse
  one pool across many batch calls; otherwise a transient fleet is
  created and retired inside the call.
* A **checkpoint journal** (:mod:`repro.core.checkpoint`) makes runs
  interruptible: with ``checkpoint=PATH`` every completed document is
  appended as it finishes, and ``resume=True`` restores unchanged
  documents' verdicts instead of revalidating them — the resumed
  :class:`BatchResult` carries verdicts and merged stats identical to
  an uninterrupted run.
* :func:`validate_directory` discovers documents (optionally
  ``recursive=True``) with deterministic ordering.

Fault tolerance is the batch contract, preserved on the new scheduler:

* **No per-document exception is fatal.**  Workers catch every
  exception below ``KeyboardInterrupt``/``SystemExit`` — typed
  :class:`~repro.errors.ReproError` failures (syntax, resource limits,
  deadlines), ``OSError``, and unexpected bugs alike — and report them
  through :attr:`DocumentResult.error`.
* **Worker death is survivable.**  A dead worker costs only the
  unreported documents of the chunk it had claimed; those re-run in a
  serial quarantine that names the crashing document exactly, while a
  replacement worker keeps the fleet at full width.
* **Per-document budgets.**  ``limits`` (ambient defaults when
  ``None``) bound each document's size, depth, entity expansions, and —
  via ``deadline_seconds`` — wall-clock time.
* **Transient IO retries.**  ``retries`` re-runs a document whose
  ``OSError`` may be transient before recording the failure.
* **Clean interrupts.**  ``KeyboardInterrupt`` kills the fleet without
  waiting on stuck workers; with a checkpoint journal, everything
  finished before the interrupt is already on disk.

The parent merges worker :class:`ValidationStats` into one batch total
that equals the sequential sum exactly — parallelism changes wall-clock
time, never verdicts or counters.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from repro.core.checkpoint import CheckpointJournal
from repro.core.fleet import (
    DocumentResult,
    FaultHook,
    FleetConfig,
    WorkerFleet,
    run_serial,
)
from repro.core.result import ValidationStats
from repro.errors import BatchError, code_for_error_type
from repro.guards import Limits, resolve_limits
from repro.schema.registry import SchemaPair

__all__ = [
    "BatchResult",
    "DocumentResult",
    "FaultHook",
    "discover_documents",
    "validate_batch",
    "validate_directory",
]


@dataclass
class BatchResult:
    """All per-document outcomes plus the merged counters."""

    results: list[DocumentResult] = field(default_factory=list)
    stats: Optional[ValidationStats] = None
    #: Documents whose verdicts were restored from a checkpoint journal
    #: instead of being revalidated (0 outside resumed runs).
    resumed: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def valid_count(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def invalid(self) -> list[DocumentResult]:
        return [result for result in self.results if not result.ok]

    @property
    def all_valid(self) -> bool:
        return self.valid_count == self.total

    @property
    def errors(self) -> list[DocumentResult]:
        """Documents that did not produce a verdict (error is set)."""
        return [result for result in self.results if result.error]


def _result_from_dict(data: dict) -> DocumentResult:
    error_type = data.get("error_type", "")
    return DocumentResult(
        path=data["path"],
        valid=data["valid"],
        reason=data.get("reason", ""),
        error=data.get("error", ""),
        error_type=error_type,
        # Journals written before the code field existed carry only the
        # class name; heal them through the taxonomy lookup.
        error_code=data.get("error_code") or code_for_error_type(error_type),
        attempts=data.get("attempts", 1),
    )


def validate_batch(
    pair: SchemaPair,
    paths: Sequence[str],
    *,
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
    warm: bool = True,
    limits: Optional[Limits] = None,
    retries: int = 0,
    fault_hook: Optional[FaultHook] = None,
    memo_size: Optional[int] = None,
    artifact_path: Optional[str] = None,
    stream_skip: bool = False,
    fleet: Optional[WorkerFleet] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
) -> BatchResult:
    """Validate many documents against one schema pair.

    Args:
        pair: the preprocessed pair; warmed here (once, in the parent)
            unless ``warm=False``, so workers inherit finished machines.
        paths: document files; results come back sorted by path.
        jobs: worker processes; ``1`` validates sequentially in-process
            (no pool, the baseline the tests compare against — and the
            one mode without worker-crash isolation).
        use_string_cast: as for :class:`~repro.core.cast.CastValidator`.
        collect_stats: gather per-document counters and merge them into
            ``BatchResult.stats`` (the merged total equals the
            sequential sum).  Off by default — throughput mode.
        warm: pre-build the pair's machines before dispatch.
        limits: per-document resource budgets (ambient defaults when
            ``None``); ``limits.deadline_seconds`` is the per-document
            timeout, enforced cooperatively inside the worker.
        retries: extra attempts for documents failing with ``OSError``.
        fault_hook: test-only callable run before each document in the
            worker (see :data:`~repro.core.fleet.FaultHook`).
        memo_size: when set, each worker shares one bounded
            :class:`~repro.core.memo.ValidationMemo` of this capacity
            across all its documents (and, on a reused fleet, across
            batch calls); memo counters land in ``BatchResult.stats``
            even with ``collect_stats=False``.  ``None`` disables it.
        artifact_path: a persisted pair artifact
            (:mod:`repro.schema.artifacts`) for this pair — the
            transport fallback on platforms without shared memory;
            ignored where fork inheritance or shared memory is cheaper.
        stream_skip: validate DOM-free through the streaming cast's
            byte-level skip-scan path (see :mod:`repro.core.streaming`).
            No tree is built, so ``memo_size`` and ``use_string_cast``
            are ignored; parse and validation are one fused phase.
        fleet: a caller-owned resident :class:`WorkerFleet` to dispatch
            on instead of creating a transient pool.  Its config must
            match this call's arguments (:class:`BatchError` otherwise);
            ``jobs`` is ignored in favour of the fleet's width.  The
            fleet stays open for further calls — closing it is the
            caller's job.
        checkpoint: path of an append-only journal; every completed
            document is recorded as it finishes.
        resume: with ``checkpoint``, restore verdicts for documents
            already journaled (and unchanged on disk per mtime+size)
            instead of revalidating them.  Without ``resume`` the
            journal is truncated and started fresh.
        chunk_size: paths per work-stealing chunk (default: sized from
            the corpus and worker count).

    A document that fails — bad syntax, resource limit, IO error, even
    a worker crash — is reported via ``error`` and counts as not ok; it
    never aborts the rest of the batch.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if memo_size is not None and memo_size < 1:
        raise ValueError(f"memo_size must be >= 1, got {memo_size}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    limits = resolve_limits(limits)
    if warm:
        pair.warm()
    config = FleetConfig(
        use_string_cast=use_string_cast,
        collect_stats=collect_stats,
        limits=limits,
        retries=retries,
        fault_hook=fault_hook,
        memo_size=memo_size,
        stream_skip=stream_skip,
    )
    if fleet is not None:
        if fleet.config != config.resolved():
            raise BatchError(
                "the provided fleet was built with a different "
                "configuration than this batch call; create the fleet "
                "with matching arguments (or omit it)"
            )
        jobs = fleet.jobs

    merged = (
        ValidationStats()
        if collect_stats or memo_size is not None
        else None
    )
    outcomes: list[DocumentResult] = []
    resumed_count = 0
    journal: Optional[CheckpointJournal] = None
    run_paths = list(paths)

    try:
        if checkpoint is not None:
            from repro.schema.artifacts import pair_cache_key

            key = pair_cache_key(pair.source, pair.target)
            if resume:
                journal = CheckpointJournal.resume(checkpoint, key)
            else:
                journal = CheckpointJournal.fresh(checkpoint, key)
            if journal.restored:
                remaining = []
                for path in run_paths:
                    entry = journal.restored.get(path)
                    if entry is not None and journal.entry_is_current(
                        entry
                    ):
                        outcomes.append(_result_from_dict(entry["result"]))
                        if merged is not None and entry.get("stats"):
                            merged.merge(
                                ValidationStats.from_dict(entry["stats"])
                            )
                        resumed_count += 1
                    else:
                        remaining.append(path)
                run_paths = remaining

        def record(
            result: DocumentResult, stats: Optional[ValidationStats]
        ) -> None:
            outcomes.append(result)
            if merged is not None and stats is not None:
                merged.merge(stats)
            if journal is not None:
                journal.record(
                    result.path,
                    asdict(result),
                    stats.as_dict() if stats is not None else None,
                )

        if fleet is not None:
            fleet.validate(run_paths, on_result=record)
        elif jobs == 1 or len(run_paths) <= 1:
            run_serial(pair, run_paths, config, record)
        else:
            with WorkerFleet(
                pair,
                jobs,
                config=config,
                artifact_path=artifact_path,
                chunk_size=chunk_size,
                warm=False,  # warmed above
            ) as transient:
                transient.validate(run_paths, on_result=record)
    finally:
        if journal is not None:
            journal.close()
    outcomes.sort(key=lambda result: result.path)
    return BatchResult(results=outcomes, stats=merged, resumed=resumed_count)


def discover_documents(
    directory: str,
    *,
    pattern: str = "*.xml",
    recursive: bool = False,
) -> list[str]:
    """Find ``pattern`` documents under ``directory``, deterministically.

    Non-file entries (subdirectories, sockets, dangling symlinks) are
    skipped even when their names match.  With ``recursive=True`` the
    whole tree is walked; ordering is always the sorted full path, so
    sharded corpora in nested directories enumerate identically on
    every run — which is what makes checkpointed resumption and
    jobs-independent result ordering possible.  A missing or unreadable
    ``directory`` raises :class:`~repro.errors.BatchError` — the batch
    cannot start, which is different from a per-document failure.
    """
    if not os.path.isdir(directory):
        raise BatchError(
            f"input directory {directory!r} does not exist or is not a "
            "directory"
        )
    paths: list[str] = []
    if recursive:
        try:
            walker = os.walk(directory, onerror=_raise_walk_error)
            for root, dirnames, filenames in walker:
                dirnames.sort()
                for name in filenames:
                    if fnmatch.fnmatch(name, pattern):
                        path = os.path.join(root, name)
                        if os.path.isfile(path):
                            paths.append(path)
        except _WalkError as error:
            raise BatchError(
                f"cannot read input directory {error.args[0]!r}: "
                f"{error.args[1]}"
            ) from None
    else:
        try:
            names = os.listdir(directory)
        except OSError as error:
            raise BatchError(
                f"cannot read input directory {directory!r}: {error}"
            ) from error
        paths = [
            path
            for name in names
            if fnmatch.fnmatch(name, pattern)
            and os.path.isfile(path := os.path.join(directory, name))
        ]
    return sorted(paths)


class _WalkError(Exception):
    pass


def _raise_walk_error(error: OSError) -> None:
    raise _WalkError(getattr(error, "filename", "?"), error)


def validate_directory(
    pair: SchemaPair,
    directory: str,
    *,
    pattern: str = "*.xml",
    recursive: bool = False,
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
    limits: Optional[Limits] = None,
    retries: int = 0,
    memo_size: Optional[int] = None,
    artifact_path: Optional[str] = None,
    stream_skip: bool = False,
    fleet: Optional[WorkerFleet] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
) -> BatchResult:
    """Validate every ``pattern`` file under ``directory``.

    Discovery is :func:`discover_documents` (top-level by default,
    ``recursive=True`` for nested corpora); everything else is
    :func:`validate_batch`, including fleet reuse and checkpointed
    resumption.
    """
    paths = discover_documents(
        directory, pattern=pattern, recursive=recursive
    )
    return validate_batch(
        pair,
        paths,
        jobs=jobs,
        use_string_cast=use_string_cast,
        collect_stats=collect_stats,
        limits=limits,
        retries=retries,
        memo_size=memo_size,
        artifact_path=artifact_path,
        stream_skip=stream_skip,
        fleet=fleet,
        checkpoint=checkpoint,
        resume=resume,
        chunk_size=chunk_size,
    )
