"""Parallel multi-document validation over one warmed schema pair.

The paper's cost model splits validation into static preprocessing
(schemas only) and a per-document runtime.  When many documents must be
revalidated against the same pair — a feed migration, a corpus audit —
the static part should be paid once and the per-document part should
use every core.  :func:`validate_batch` does exactly that: the warmed
:class:`~repro.schema.registry.SchemaPair` is shipped to each worker
process once (via the pool initializer, so fork-based platforms share
it copy-on-write and spawn-based ones pickle it once per worker, not
once per document), and documents are distributed in chunks over an
``imap_unordered`` queue.

Workers parse, validate, and return compact per-document results;
the parent merges their :class:`ValidationStats` into one batch total
that equals the sequential sum exactly — parallelism changes wall-clock
time, never verdicts or counters.
"""

from __future__ import annotations

import fnmatch
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cast import CastValidator
from repro.core.result import ValidationStats
from repro.errors import ReproError
from repro.schema.registry import SchemaPair
from repro.xmltree.parser import parse_file


@dataclass(frozen=True)
class DocumentResult:
    """Outcome of validating one file of the batch."""

    path: str
    valid: bool
    reason: str = ""
    error: str = ""  # parse/IO failure text; empty when the file loaded

    @property
    def ok(self) -> bool:
        """Loaded and valid."""
        return self.valid and not self.error


@dataclass
class BatchResult:
    """All per-document outcomes plus the merged counters."""

    results: list[DocumentResult] = field(default_factory=list)
    stats: Optional[ValidationStats] = None

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def valid_count(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def invalid(self) -> list[DocumentResult]:
        return [result for result in self.results if not result.ok]

    @property
    def all_valid(self) -> bool:
        return self.valid_count == self.total


#: Per-worker state, set once by :func:`_init_worker`.  A module global
#: (not a closure) so the work function stays picklable for the pool.
_WORKER: Optional[tuple[CastValidator, bool]] = None


def _init_worker(
    pair: SchemaPair, use_string_cast: bool, collect_stats: bool
) -> None:
    global _WORKER
    _WORKER = (
        CastValidator(
            pair,
            use_string_cast=use_string_cast,
            collect_stats=collect_stats,
        ),
        collect_stats,
    )


def _validate_one(path: str) -> tuple[DocumentResult, Optional[ValidationStats]]:
    assert _WORKER is not None, "worker used before _init_worker"
    validator, collect_stats = _WORKER
    try:
        document = parse_file(path)
    except (ReproError, OSError) as error:
        return DocumentResult(path, valid=False, error=str(error)), None
    report = validator.validate(document)
    stats = report.stats if collect_stats else None
    return DocumentResult(path, valid=report.valid, reason=report.reason), stats


def validate_batch(
    pair: SchemaPair,
    paths: Sequence[str],
    *,
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
    warm: bool = True,
) -> BatchResult:
    """Validate many documents against one schema pair.

    Args:
        pair: the preprocessed pair; warmed here (once, in the parent)
            unless ``warm=False``, so workers inherit finished machines.
        paths: document files; results come back sorted by path.
        jobs: worker processes; ``1`` validates sequentially in-process
            (no pool, the baseline the tests compare against).
        use_string_cast: as for :class:`CastValidator`.
        collect_stats: gather per-document counters and merge them into
            ``BatchResult.stats`` (the merged total equals the
            sequential sum).  Off by default — throughput mode.
        warm: pre-build the pair's machines before dispatch.

    A document that fails to parse is reported via ``error`` and counts
    as not ok; it never aborts the rest of the batch.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if warm:
        pair.warm()
    merged = ValidationStats() if collect_stats else None
    outcomes: list[DocumentResult] = []
    if jobs == 1 or len(paths) <= 1:
        _init_worker(pair, use_string_cast, collect_stats)
        try:
            for path in paths:
                result, stats = _validate_one(path)
                outcomes.append(result)
                if merged is not None and stats is not None:
                    merged.merge(stats)
        finally:
            global _WORKER
            _WORKER = None
    else:
        chunksize = max(1, len(paths) // (jobs * 4))
        with multiprocessing.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(pair, use_string_cast, collect_stats),
        ) as pool:
            for result, stats in pool.imap_unordered(
                _validate_one, paths, chunksize=chunksize
            ):
                outcomes.append(result)
                if merged is not None and stats is not None:
                    merged.merge(stats)
    outcomes.sort(key=lambda result: result.path)
    return BatchResult(results=outcomes, stats=merged)


def validate_directory(
    pair: SchemaPair,
    directory: str,
    *,
    pattern: str = "*.xml",
    jobs: int = 1,
    use_string_cast: bool = True,
    collect_stats: bool = False,
) -> BatchResult:
    """Validate every ``pattern`` file directly under ``directory``."""
    names = sorted(
        name
        for name in os.listdir(directory)
        if fnmatch.fnmatch(name, pattern)
    )
    paths = [os.path.join(directory, name) for name in names]
    return validate_batch(
        pair,
        paths,
        jobs=jobs,
        use_string_cast=use_string_cast,
        collect_stats=collect_stats,
    )
