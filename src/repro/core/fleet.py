"""Resident worker fleet: a persistent pool with zero-copy pair sharing.

The paper's cost model pays schema-pair preprocessing once and a small
per-document runtime many times.  The original batch driver honoured
that per *call*: every ``validate_batch(jobs=N)`` built a fresh
``ProcessPoolExecutor``, re-shipped the compiled pair to every worker,
and submitted one future per document — so corpus-scale throughput was
bounded by pool spin-up and per-future dispatch, not by the pair-DFA.

:class:`WorkerFleet` replaces that with a *resident* pool:

* **Workers survive across batch calls.**  One fleet can validate many
  corpora; the pool (and each worker's lazily built validator, symbol
  table, and verdict memo) is paid for once per fleet, not once per
  call.
* **Chunked work-stealing.**  The parent shards the corpus into
  path-chunks on a shared queue; idle workers pull the next chunk
  themselves.  Dispatch cost is per *chunk*, and a fast worker
  naturally steals more chunks than a slow one.
* **Bounded in-flight backpressure.**  At most ``max_inflight_chunks``
  chunks sit on the queue at a time, so a million-document run keeps
  O(jobs · chunk) paths in IPC buffers, never the whole corpus.
* **Zero-copy pair transport.**  The compiled pair reaches workers by
  the cheapest route the platform offers, and the pickled pair bytes
  materialize **at most once per fleet** — counted by
  :attr:`PairTransport.pickle_count` and asserted by the fleet
  benchmark:

  - ``fork`` start method: workers inherit the parent's tables
    copy-on-write through a module global — nothing is pickled at all;
  - otherwise: the pair is serialized once with pickle protocol 5
    (out-of-band buffers preserved) into one
    ``multiprocessing.shared_memory`` segment; every worker attaches
    and unpickles straight from the shared view, so no per-worker copy
    of the serialized bytes ever exists;
  - if shared memory is unavailable, a persisted artifact path (a few
    bytes) or the single pickled blob rides the worker arguments.

The fault-tolerance contract of the old driver is preserved on the new
scheduler: per-document errors never abort the batch, a dead worker
costs only the unreported documents of its claimed chunk (re-run in a
serial quarantine that names the culprit exactly, while a replacement
worker keeps the fleet at full width), transient ``OSError`` retries
are bounded, and ``KeyboardInterrupt`` kills the fleet without waiting
on stuck workers.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_module
import struct
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.memo import ValidationMemo
from repro.core.result import ValidationStats
from repro.errors import (
    WORKER_CRASH_CODE,
    BatchError,
    ReproError,
    error_code,
)
from repro.guards import Limits, resolve_limits
from repro.schema.registry import SchemaPair

#: A test-only hook run in the worker before each document; raising (or
#: killing the process) simulates faults.  Must be a picklable top-level
#: callable so it survives spawn-based platforms.
FaultHook = Callable[[str], None]

#: ``on_result`` callback: one validated document's outcome plus its
#: per-document stats delta (``None`` when stats are off).
ResultSink = Callable[["DocumentResult", Optional[ValidationStats]], None]


@dataclass(frozen=True)
class DocumentResult:
    """Outcome of validating one file of a batch."""

    path: str
    valid: bool
    reason: str = ""
    error: str = ""  # parse/IO/limit/crash text; empty when validated
    #: Exception class name behind ``error`` (``"WorkerCrash"`` for a
    #: died worker); empty when the document validated normally.
    error_type: str = ""
    #: Stable machine code for ``error`` (:func:`repro.errors.error_code`
    #: vocabulary, shared with the CLI and the HTTP service); empty when
    #: the document validated normally.
    error_code: str = ""
    #: 1 + the number of OSError retries this document consumed.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Loaded and valid."""
        return self.valid and not self.error


@dataclass(frozen=True)
class FleetConfig:
    """Per-worker validation configuration, fixed for a fleet's life.

    A fleet's workers build their validator lazily from this config on
    their first document; reusing a fleet therefore requires the same
    config, which :func:`repro.core.batch.validate_batch` enforces.
    """

    use_string_cast: bool = True
    collect_stats: bool = False
    limits: Optional[Limits] = None
    retries: int = 0
    fault_hook: Optional[FaultHook] = None
    memo_size: Optional[int] = None
    stream_skip: bool = False

    def resolved(self) -> "FleetConfig":
        """This config with the ambient-default limits pinned in."""
        return FleetConfig(
            use_string_cast=self.use_string_cast,
            collect_stats=self.collect_stats,
            limits=resolve_limits(self.limits),
            retries=self.retries,
            fault_hook=self.fault_hook,
            memo_size=self.memo_size,
            stream_skip=self.stream_skip,
        )


# -- pair transport ----------------------------------------------------------

#: Fork-inheritance channel: pairs parked here by the parent are
#: inherited copy-on-write by every worker forked while the fleet
#: lives.  Keyed by a per-fleet token so concurrent fleets coexist.
_FORK_PAIRS: dict[int, SchemaPair] = {}
_FORK_TOKENS = itertools.count(1)


class PairTransport:
    """Delivers one compiled pair to every worker of a fleet.

    The invariant that makes a fleet cheaper than a per-call pool:
    ``pickle.dumps`` runs on the pair **at most once** for the whole
    fleet (:attr:`pickle_count`), regardless of worker count or how
    many batches the fleet validates.
    """

    def __init__(
        self,
        pair: SchemaPair,
        start_method: str,
        artifact_path: Optional[str] = None,
    ):
        self.pickle_count = 0
        self.blob_bytes = 0
        self._shm = None
        self._fork_token: Optional[int] = None
        if start_method == "fork":
            token = next(_FORK_TOKENS)
            _FORK_PAIRS[token] = pair
            self._fork_token = token
            self.kind = "fork"
            self.route = ("fork", token)
            return
        segments = self._dumps(pair)
        try:
            self._shm = _write_segments_to_shm(segments)
            self.kind = "shm"
            self.route = ("shm", self._shm.name)
            return
        except Exception:
            self._shm = None
        if artifact_path is not None:
            # Disk fallback: only the path (a few bytes) travels; each
            # worker loads the persisted artifact on its first document.
            self.kind = "artifact"
            self.route = ("artifact", artifact_path)
            return
        # Last resort: the already-produced blob rides the worker
        # arguments.  Still one dumps() per fleet — the OS copies the
        # bytes to each worker, but the parent never re-pickles.
        self.kind = "inline"
        self.route = ("inline", segments)

    def _dumps(self, pair: SchemaPair) -> list:
        self.pickle_count += 1
        buffers: list = []
        main = pickle.dumps(
            pair, protocol=5, buffer_callback=buffers.append
        )
        segments = [main] + [b.raw() for b in buffers]
        self.blob_bytes = sum(memoryview(s).nbytes for s in segments)
        return segments

    def close(self) -> None:
        if self._fork_token is not None:
            _FORK_PAIRS.pop(self._fork_token, None)
            self._fork_token = None
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except OSError:
                pass
            self._shm = None


def _write_segments_to_shm(segments: list):
    """One shared-memory block holding the protocol-5 pickle stream and
    its out-of-band buffers: ``<count><len...><bytes...>``."""
    from multiprocessing import shared_memory

    header = struct.pack("<I", len(segments)) + b"".join(
        struct.pack("<Q", memoryview(s).nbytes) for s in segments
    )
    total = len(header) + sum(memoryview(s).nbytes for s in segments)
    shm = shared_memory.SharedMemory(create=True, size=total)
    view = memoryview(shm.buf)
    view[: len(header)] = header
    offset = len(header)
    for segment in segments:
        raw = memoryview(segment).cast("B")
        view[offset : offset + raw.nbytes] = raw
        offset += raw.nbytes
    return shm


def _load_pair_from_shm(name: str) -> SchemaPair:
    """Attach to the fleet's segment and unpickle from the shared view.

    The serialized bytes are read in place — no per-worker copy of the
    blob.  The reconstructed tables are ordinary owned objects, so the
    segment can be detached immediately afterwards.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    view = memoryview(shm.buf)
    segments: list = []
    try:
        (count,) = struct.unpack_from("<I", view, 0)
        offset = 4
        lengths = []
        for _ in range(count):
            (length,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            lengths.append(length)
        for length in lengths:
            segments.append(view[offset : offset + length])
            offset += length
        pair = pickle.loads(segments[0], buffers=segments[1:])
    finally:
        for segment in segments:
            segment.release()
        view.release()
        # The worker only ever attaches; the parent owns the segment's
        # lifetime and unlinks (and unregisters) it at fleet close.
        shm.close()
    assert isinstance(pair, SchemaPair)
    return pair


def resolve_pair_route(route) -> SchemaPair:
    """Materialize the compiled pair a :class:`PairTransport` route
    names — the worker-side half of the transport contract.  Public so
    other process pools (the service's ``FleetExecutor``) can ship
    pairs over the same zero-copy routes."""
    kind, payload = route
    if kind == "direct":
        assert isinstance(payload, SchemaPair)
        return payload
    if kind == "fork":
        pair = _FORK_PAIRS.get(payload)
        assert pair is not None, "fork pair not parked by the parent"
        return pair
    if kind == "shm":
        return _load_pair_from_shm(payload)
    if kind == "artifact":
        from repro.schema import artifacts

        # load() size-checks the file against the ambient byte budget
        # before unpickling, so a corrupt or runaway artifact is an
        # error report, not an OOM.
        assert isinstance(payload, str)
        return artifacts.load(payload)
    assert kind == "inline"
    main, *buffers = payload
    return pickle.loads(main, buffers=buffers)


# -- worker side -------------------------------------------------------------


class _WorkerState:
    """One worker's lazily built validator (resident across chunks and
    across batch calls)."""

    def __init__(self, route, config: FleetConfig):
        self.route = route
        self.config = config.resolved()
        self.validator = None

    def ensure_validator(self):
        if self.validator is None:
            config = self.config
            if config.stream_skip:
                # DOM-free skip-scan mode: subtrees are never
                # materialized, so there is nothing to hash — the memo
                # is ignored.
                from repro.core.streaming import StreamingCastValidator

                self.validator = StreamingCastValidator(
                    resolve_pair_route(self.route), limits=config.limits
                )
            else:
                from repro.core.cast import CastValidator

                memo = (
                    ValidationMemo(config.memo_size, limits=config.limits)
                    if config.memo_size is not None
                    else None
                )
                self.validator = CastValidator(
                    resolve_pair_route(self.route),
                    use_string_cast=config.use_string_cast,
                    collect_stats=config.collect_stats,
                    limits=config.limits,
                    memo=memo,
                )
        return self.validator


def _validate_document(
    state: _WorkerState, path: str
) -> tuple[DocumentResult, Optional[ValidationStats]]:
    """Validate one document; never raises (KeyboardInterrupt and
    SystemExit excepted — those are how a worker is told to die)."""
    config = state.config
    attempt = 0
    while True:
        attempt += 1
        try:
            # Built here, not at worker startup, so a transport/artifact
            # failure is a per-document error report, not a dead worker.
            validator = state.ensure_validator()
            limits = config.limits
            if config.fault_hook is not None:
                config.fault_hook(path)
            if config.stream_skip:
                # DOM-free skip-scan cast: one fused pass, timed as
                # validation (there is no separate parse phase).  A
                # syntax error propagates as ReproError, matching the
                # DOM path's per-document error capture below.
                from repro.guards import check_document_size
                from repro.xmltree.events import PullParser

                check_document_size(
                    os.path.getsize(path), limits, what=f"file {path!r}"
                )
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                run_start = time.perf_counter()
                report = validator.validate_pull(
                    PullParser(
                        text,
                        limits=limits,
                        deadline=limits.deadline(),
                        symbols=validator.pair.symbols,
                    ),
                    interned=True,
                )
                if config.collect_stats:
                    report.stats.validate_seconds += (
                        time.perf_counter() - run_start
                    )
            else:
                from repro.xmltree.parser import parse_file

                # One deadline token spans parse + validation.  Parsing
                # against the pair's symbol table interns element names
                # at lex time, so validation runs on dense ids.
                deadline = limits.deadline()
                parse_start = time.perf_counter()
                document = parse_file(
                    path,
                    limits=limits,
                    deadline=deadline,
                    symbols=validator.pair.symbols,
                )
                parse_end = time.perf_counter()
                report = validator.validate(document, deadline=deadline)
                if config.collect_stats:
                    report.stats.parse_seconds += parse_end - parse_start
                    report.stats.validate_seconds += (
                        time.perf_counter() - parse_end
                    )
        except ReproError as error:
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    error_code=error_code(error),
                    attempts=attempt,
                ),
                None,
            )
        except OSError as error:
            if attempt <= config.retries:
                continue  # transient IO: bounded retry
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=str(error),
                    error_type=type(error).__name__,
                    error_code=error_code(error),
                    attempts=attempt,
                ),
                None,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:  # noqa: BLE001 — the batch contract
            return (
                DocumentResult(
                    path,
                    valid=False,
                    error=f"unexpected {type(error).__name__}: {error}",
                    error_type=type(error).__name__,
                    error_code=error_code(error),
                    attempts=attempt,
                ),
                None,
            )
        # In throughput mode with a memo, report.stats still carries the
        # per-document memo deltas (and nothing else) — ship those so
        # the parent can merge a fleet-wide hit rate.
        validator = state.validator
        stats = (
            report.stats
            if config.collect_stats
            or getattr(validator, "_memo", None) is not None
            else None
        )
        return (
            DocumentResult(
                path,
                valid=report.valid,
                reason=report.reason,
                attempts=attempt,
            ),
            stats,
        )


def _fleet_worker_main(worker_id, task_queue, result_queue, route, config):
    """A resident worker: pull chunks until the ``None`` sentinel.

    Message protocol (worker → parent):

    * ``("claim", worker_id, chunk_id)`` — the chunk left the queue;
    * ``("doc", worker_id, chunk_id, index, result, stats)`` — one
      document of the chunk finished;
    * ``("done", worker_id, chunk_id)`` — every document reported.

    The claim message is what makes worker death recoverable: the
    parent knows which chunk a dead worker held and which of its
    documents were never reported.
    """
    state = _WorkerState(route, config)
    try:
        while True:
            item = task_queue.get()
            if item is None:
                return
            chunk_id, paths = item
            result_queue.put(("claim", worker_id, chunk_id))
            for index, path in enumerate(paths):
                result, stats = _validate_document(state, path)
                result_queue.put(
                    ("doc", worker_id, chunk_id, index, result, stats)
                )
            result_queue.put(("done", worker_id, chunk_id))
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - teardown
        return


def run_serial(
    pair: SchemaPair,
    paths: Sequence[str],
    config: FleetConfig,
    on_result: ResultSink,
) -> None:
    """In-process sequential validation — the ``jobs=1`` baseline the
    tests compare every parallel run against (and the one mode without
    worker-crash isolation)."""
    state = _WorkerState(("direct", pair), config)
    for path in paths:
        on_result(*_validate_document(state, path))


def _crash_result(path: str) -> DocumentResult:
    return DocumentResult(
        path,
        valid=False,
        error="worker process died while validating this document",
        error_type="WorkerCrash",
        error_code=WORKER_CRASH_CODE,
    )


# -- the fleet ---------------------------------------------------------------


def _auto_chunk_size(path_count: int, jobs: int) -> int:
    """Chunks big enough to amortize IPC, small enough that every
    worker gets several (work-stealing needs slack to steal)."""
    return max(1, min(64, path_count // (jobs * 4)))


class WorkerFleet:
    """A resident pool of validation workers bound to one schema pair.

    Create once, call :meth:`validate` many times, :meth:`close` when
    done (or use it as a context manager).  Worker processes, the
    transported pair, and per-worker memos all persist across calls —
    that persistence is the warm-pool speedup the fleet benchmark
    gates.
    """

    #: Seconds without progress (after a crash) before the stall sweep
    #: reclaims chunks lost in the pop-to-claim window of a dead worker.
    stall_grace = 2.0

    def __init__(
        self,
        pair: SchemaPair,
        jobs: int,
        *,
        config: Optional[FleetConfig] = None,
        start_method: Optional[str] = None,
        artifact_path: Optional[str] = None,
        chunk_size: Optional[int] = None,
        max_inflight_chunks: Optional[int] = None,
        warm: bool = True,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.config = (config or FleetConfig()).resolved()
        self._chunk_size = chunk_size
        self._max_inflight = max_inflight_chunks or max(2 * jobs, 4)
        self._ctx = multiprocessing.get_context(start_method)
        if warm:
            pair.warm()
        self.transport = PairTransport(
            pair, self._ctx.get_start_method(), artifact_path
        )
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._workers: dict[int, object] = {}
        self._worker_seq = itertools.count(1)
        self._chunk_seq = itertools.count(1)
        self._closed = False
        #: Batches completed and chunks dispatched over the fleet's
        #: lifetime (observability + the warm-reuse benchmark).
        self.batches_run = 0
        self.chunks_dispatched = 0
        for _ in range(jobs):
            self._spawn_worker()

    # -- lifecycle ----------------------------------------------------------

    def _spawn_worker(self) -> int:
        worker_id = next(self._worker_seq)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(
                worker_id,
                self._task_queue,
                self._result_queue,
                self.transport.route,
                self.config,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process
        return worker_id

    def close(self) -> None:
        """Retire the fleet: drain workers, release the transport."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._task_queue.put_nowait(None)
            except Exception:
                break
        for process in self._workers.values():
            process.join(timeout=2.0)
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
        self._workers.clear()
        self._release_queues()
        self.transport.close()

    def kill(self) -> None:
        """Immediate teardown (KeyboardInterrupt): no waiting on stuck
        workers, no queue draining."""
        if self._closed:
            return
        self._closed = True
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
        self._workers.clear()
        self._release_queues()
        self.transport.close()

    def _release_queues(self) -> None:
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- scheduling ---------------------------------------------------------

    def validate(
        self, paths: Sequence[str], *, on_result: ResultSink
    ) -> None:
        """Validate ``paths`` over the resident pool.

        ``on_result`` fires in the parent as each document completes
        (in completion order, not path order) — the batch driver uses
        it to merge stats and append the checkpoint journal
        incrementally, so an interrupt never loses finished work.
        """
        if self._closed:
            raise BatchError("worker fleet is closed")
        paths = list(paths)
        if not paths:
            self.batches_run += 1
            return
        size = self._chunk_size or _auto_chunk_size(len(paths), self.jobs)
        chunks: dict[int, dict] = {}
        pending: deque[int] = deque()
        for start in range(0, len(paths), size):
            chunk_id = next(self._chunk_seq)
            chunks[chunk_id] = {
                "paths": paths[start : start + size],
                "claimed": None,
                "reported": set(),
            }
            pending.append(chunk_id)
        inflight: set[int] = set()
        done: set[int] = set()
        suspects: list[str] = []
        crash_seen = False
        deaths_without_sign_of_life = 0
        death_budget = max(2 * self.jobs, 4)
        last_progress = time.monotonic()

        def refill() -> None:
            while pending and len(inflight) < self._max_inflight:
                chunk_id = pending.popleft()
                self._task_queue.put((chunk_id, chunks[chunk_id]["paths"]))
                inflight.add(chunk_id)
                self.chunks_dispatched += 1

        def finish(chunk_id: int) -> None:
            done.add(chunk_id)
            inflight.discard(chunk_id)
            refill()

        def handle(message) -> None:
            kind = message[0]
            if kind == "claim":
                chunks[message[2]]["claimed"] = message[1]
            elif kind == "doc":
                _, _, chunk_id, index, result, stats = message
                state = chunks[chunk_id]
                if index not in state["reported"]:
                    state["reported"].add(index)
                    on_result(result, stats)
            elif kind == "done":
                if message[2] not in done:
                    finish(message[2])

        def reap_dead() -> list[int]:
            return [
                worker_id
                for worker_id, process in self._workers.items()
                if not process.is_alive()
            ]

        refill()
        try:
            while len(done) < len(chunks):
                try:
                    message = self._result_queue.get(timeout=0.1)
                except queue_module.Empty:
                    dead = reap_dead()
                    if dead:
                        crash_seen = True
                        # Pick up everything the dead worker managed to
                        # report before dying, then bury it.
                        self._drain(handle)
                        deaths_without_sign_of_life += len(dead)
                        for worker_id in dead:
                            self._workers.pop(worker_id, None)
                            for chunk_id, state in chunks.items():
                                if (
                                    state["claimed"] == worker_id
                                    and chunk_id not in done
                                ):
                                    suspects.extend(
                                        path
                                        for index, path in enumerate(
                                            state["paths"]
                                        )
                                        if index not in state["reported"]
                                    )
                                    finish(chunk_id)
                        if deaths_without_sign_of_life > death_budget:
                            # Workers cannot even start (broken
                            # environment, unloadable pair): stop
                            # respawning, reclaim the queue, and let
                            # quarantine blame each document.
                            self._recover_unclaimed()
                            for chunk_id, state in chunks.items():
                                if chunk_id not in done:
                                    suspects.extend(
                                        path
                                        for index, path in enumerate(
                                            state["paths"]
                                        )
                                        if index not in state["reported"]
                                    )
                                    finish(chunk_id)
                        else:
                            for _ in dead:
                                self._spawn_worker()
                        last_progress = time.monotonic()
                    elif (
                        crash_seen
                        and time.monotonic() - last_progress
                        > self.stall_grace
                    ):
                        # Backstop for the tiny pop-to-claim window: a
                        # worker died between taking a chunk off the
                        # queue and announcing the claim.  Recover what
                        # is still queued; whatever is neither queued
                        # nor claimed is lost — quarantine it.
                        requeued = self._recover_unclaimed()
                        recovered_ids = set()
                        for chunk_id, chunk_paths in requeued:
                            recovered_ids.add(chunk_id)
                            if chunk_id not in done:
                                self._task_queue.put(
                                    (chunk_id, chunk_paths)
                                )
                        for chunk_id, state in chunks.items():
                            if (
                                chunk_id not in done
                                and state["claimed"] is None
                                and chunk_id not in recovered_ids
                            ):
                                suspects.extend(
                                    path
                                    for index, path in enumerate(
                                        state["paths"]
                                    )
                                    if index not in state["reported"]
                                )
                                finish(chunk_id)
                        last_progress = time.monotonic()
                    continue
                last_progress = time.monotonic()
                deaths_without_sign_of_life = 0
                handle(message)
        except KeyboardInterrupt:
            self.kill()
            raise
        if suspects:
            self._quarantine(suspects, on_result)
        self.batches_run += 1

    def _drain(self, handle) -> None:
        while True:
            try:
                handle(self._result_queue.get_nowait())
            except queue_module.Empty:
                return

    def _recover_unclaimed(self) -> list[tuple[int, list[str]]]:
        recovered = []
        while True:
            try:
                item = self._task_queue.get_nowait()
            except queue_module.Empty:
                return recovered
            if item is not None:
                recovered.append(item)

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, paths: list[str], on_result: ResultSink) -> None:
        """Serial re-run of crash-suspect paths, one fresh single-doc
        worker chain at a time: a repeat crash blames the in-flight
        document exactly; the survivors continue."""
        remaining = sorted(paths)
        while remaining:
            remaining = self._quarantine_round(remaining, on_result)

    def _quarantine_round(
        self, paths: list[str], on_result: ResultSink
    ) -> list[str]:
        task_queue = self._ctx.Queue()
        result_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(0, task_queue, result_queue,
                  self.transport.route, self.config),
            daemon=True,
        )
        process.start()
        try:
            for index, path in enumerate(paths):
                task_queue.put((next(self._chunk_seq), [path]))
                outcome = None
                finished = False
                while not finished:
                    try:
                        message = result_queue.get(timeout=0.05)
                    except queue_module.Empty:
                        if not process.is_alive():
                            break
                        continue
                    if message[0] == "doc":
                        outcome = (message[4], message[5])
                    elif message[0] == "done":
                        finished = True
                if outcome is not None:
                    # The document finished even if the worker died
                    # right after (e.g. a crash during teardown).
                    on_result(*outcome)
                elif not finished:
                    on_result(_crash_result(path), None)
                if not finished:
                    return paths[index + 1 :]
            return []
        finally:
            try:
                task_queue.put_nowait(None)
            except Exception:
                pass
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
            for q in (task_queue, result_queue):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass
