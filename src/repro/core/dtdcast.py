"""DTD-mode schema cast with a label index (Section 3.4).

For DTDs an element label determines its type, so the parallel top-down
traversal is unnecessary: with direct access to all instances of a label
(the :meth:`Document.elements_with_label` index), one only visits
elements whose label's (source type, target type) pair is *neither
subsumed nor disjoint*, and verifies just their immediate content
models.  Labels with subsumed pairs contribute nothing; labels with
disjoint pairs make the document invalid the moment one instance exists.

The traversal order is by label, not document order — sound because
target-validity of a tree decomposes into independent per-node content
checks once types are label-determined.
"""

from __future__ import annotations

from typing import Optional

from repro.core.memo import ValidationMemo
from repro.core.result import ValidationReport, ValidationStats
from repro.errors import SchemaError
from repro.schema.dtd import is_dtd_schema, label_type
from repro.schema.model import ComplexType, SimpleType
from repro.schema.registry import SchemaPair
from repro.xmltree.dom import Document, Element, Text


class DTDCastValidator:
    """Label-indexed schema cast for DTD pairs.

    The per-label classification (skip / fail / check) is computed once
    at construction — it depends only on the schemas.
    """

    def __init__(
        self,
        pair: SchemaPair,
        *,
        use_string_cast: bool = True,
        collect_stats: bool = True,
        memo: Optional[ValidationMemo] = None,
    ):
        if not is_dtd_schema(pair.source) or not is_dtd_schema(pair.target):
            raise SchemaError(
                "DTDCastValidator requires DTD-style schemas (one type "
                "per label); use CastValidator for general XML Schemas"
            )
        self.pair = pair
        self.use_string_cast = use_string_cast
        self.collect_stats = collect_stats
        #: Optional verdict cache shared with the general cast layer.
        #: Keys carry an ``"imm"`` discriminator because this validator
        #: only vouches for an element's *immediate* content, not the
        #: whole subtree — the two verdict kinds must never collide.
        self._memo = memo.bind(pair) if memo is not None else None
        #: label → (source type, target type) for labels known to both.
        self.label_pairs: dict[str, tuple[str, str]] = {}
        #: labels whose pair needs a per-instance content check.
        self.check_labels: set[str] = set()
        #: labels whose pair is disjoint — any instance is fatal.
        self.fatal_labels: set[str] = set()
        #: labels whose pair is subsumed — never visited.
        self.skip_labels: set[str] = set()
        self._classify()

    def _classify(self) -> None:
        labels = self.pair.source.alphabet | self.pair.target.alphabet
        for label in labels:
            source_type = label_type(self.pair.source, label)
            target_type = label_type(self.pair.target, label)
            if source_type is None or target_type is None:
                continue  # occurrences are caught by the parent's check
            self.label_pairs[label] = (source_type, target_type)
            if self.pair.is_subsumed(source_type, target_type):
                self.skip_labels.add(label)
            elif self.pair.is_disjoint(source_type, target_type):
                self.fatal_labels.add(label)
            else:
                self.check_labels.add(label)

    # -- validation --------------------------------------------------------

    def validate(self, document: Document) -> ValidationReport:
        """Decide target-validity of a source-valid document using only
        the label index."""
        stats = ValidationStats() if self.collect_stats else None
        root_label = document.root.label
        if self.pair.target.root_type(root_label) is None:
            return ValidationReport.failure(
                f"label {root_label!r} is not a permitted root of the "
                "target schema",
                stats=stats,
            )
        memo_base = (
            self._memo.snapshot() if self._memo is not None else None
        )
        interned = document.symbols is self.pair.symbols
        report = self._validate_labels(document, stats, interned)
        if memo_base is not None:
            assert self._memo is not None
            hits, misses, evictions = self._memo.snapshot()
            report.stats.memo_hits += hits - memo_base[0]
            report.stats.memo_misses += misses - memo_base[1]
            report.stats.memo_evictions += evictions - memo_base[2]
        return report

    def _validate_labels(
        self,
        document: Document,
        stats: Optional[ValidationStats],
        interned: bool,
    ) -> ValidationReport:
        for label in self.fatal_labels:
            instances = document.elements_with_label(label)
            if instances:
                if stats is not None:
                    stats.disjoint_rejections += 1
                return ValidationReport.failure(
                    f"label {label!r} has disjoint source/target types",
                    path=str(instances[0].dewey()),
                    stats=stats,
                )
        for label in sorted(self.check_labels):
            source_type, target_type = self.label_pairs[label]
            for instance in document.elements_with_label(label):
                report = self._check_instance(
                    source_type, target_type, instance, stats, interned
                )
                if not report.valid:
                    return report
        if stats is not None:
            stats.subtrees_skipped += sum(
                len(document.elements_with_label(label))
                for label in self.skip_labels
            )
        return ValidationReport.success(stats)

    def _check_instance(
        self,
        source_type: str,
        target_type: str,
        element: Element,
        stats: Optional[ValidationStats],
        interned: bool = False,
    ) -> ValidationReport:
        """Verify one element's *immediate* content (no recursion —
        descendants are covered by their own labels' checks)."""
        memo = self._memo
        memo_key = None
        if memo is not None:
            memo_key = (
                source_type,
                target_type,
                element.structural_hash(),
                "imm",
            )
            if memo.contains(memo_key):
                return ValidationReport.success(stats)
        if stats is not None:
            stats.elements_visited += 1
        target_decl = self.pair.target.type(target_type)
        if element._attributes or (
            isinstance(target_decl, ComplexType) and target_decl.attributes
        ):
            from repro.core.validator import attribute_violation

            violation = attribute_violation(
                self.pair.target, target_decl, element
            )
            if violation:
                return ValidationReport.failure(
                    violation, path=str(element.dewey()), stats=stats
                )
        if isinstance(target_decl, SimpleType):
            if any(isinstance(child, Element) for child in element.children):
                return ValidationReport.failure(
                    f"simple type {target_decl.name!r} does not allow "
                    "child elements",
                    path=str(element.dewey()),
                    stats=stats,
                )
            if stats is not None:
                stats.simple_values_checked += 1
                stats.text_nodes_visited += sum(
                    1 for child in element.children if isinstance(child, Text)
                )
            text = element.text()
            if not target_decl.validate(text):
                return ValidationReport.failure(
                    f"value {text!r} does not conform to simple type "
                    f"{target_decl.name!r}",
                    path=str(element.dewey()),
                    stats=stats,
                )
            if memo_key is not None:
                memo.add(memo_key)
            return ValidationReport.success(stats)
        assert isinstance(target_decl, ComplexType)
        # Stats-free runs scan pre-interned symbol ids (``-1`` for
        # unknown labels, which the compiled tables reject); the stats
        # path keeps label strings for the counting scanners.
        collect_syms = stats is None
        ids = self.pair.symbols.ids
        labels: list[str] = []
        syms: list[int] = []
        for child in element.children:
            if isinstance(child, Text):
                if child.value.strip() == "":
                    continue
                if stats is not None:
                    stats.text_nodes_visited += 1
                return ValidationReport.failure(
                    f"complex type {target_type!r} does not allow "
                    "character data",
                    path=str(child.dewey()),
                    stats=stats,
                )
            if collect_syms:
                sid = child.sym if interned else -1
                if sid < 0:
                    sid = ids.get(child._label, -1)
                syms.append(sid)
            else:
                labels.append(child.label)
        source_is_complex = isinstance(
            self.pair.source.type(source_type), ComplexType
        )
        if self.use_string_cast and source_is_complex:
            machine = self.pair.string_cast(source_type, target_type)
            if machine.always_accepts or machine.never_accepts:
                if stats is not None:
                    stats.early_content_decisions += 1
                accepted = machine.always_accepts
            elif stats is None:
                compiled = machine.c_immed_compiled
                assert compiled is not None
                accepted = compiled.decide(syms)
            else:
                result = machine.c_immed.scan(labels)
                stats.content_symbols_scanned += result.symbols_scanned
                accepted = result.accepted
                if result.early:
                    stats.early_content_decisions += 1
        elif stats is None:
            accepted = self.pair.target_immed_compiled(target_type).decide(
                syms
            )
        else:
            scan = self.pair.target_immed(target_type).scan(labels)
            stats.content_symbols_scanned += scan.symbols_scanned
            accepted = scan.accepted
        if not accepted:
            return ValidationReport.failure(
                f"children of {element.label!r} do not match content "
                f"model {target_decl.content.to_source()} of type "
                f"{target_type!r}",
                path=str(element.dewey()),
                stats=stats,
            )
        if memo_key is not None:
            memo.add(memo_key)
        return ValidationReport.success(stats)
