"""Automatic document correction — the paper's Section 7 future work.

Given a document valid under a source schema and a target schema it
fails against, produce a *minimally edited* document that conforms to
the target, together with the list of repairs performed:

* content-model violations are fixed with an optimal edit script from
  :func:`repro.automata.repair.language_edit_distance` (insert / delete
  / relabel children);
* missing required elements are fabricated with
  :func:`repro.schema.synthesis.minimal_tree`;
* non-conforming simple values are replaced with
  :func:`repro.schema.synthesis.canonical_value`;
* subtrees whose (source, target) type pair is subsumed are left
  untouched — the same skip the cast validator performs, reused here to
  bound repair work.

Minimality is per content model and per value (each node's child
sequence is repaired optimally); the composition is a greedy
approximation of global tree edit distance, which is enough for the
"correct the document" use case and is documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.automata.edits import Delete, Insert, Replace
from repro.automata.repair import language_edit_distance
from repro.core.result import ValidationReport
from repro.core.validator import validate_document
from repro.errors import SchemaError
from repro.schema.model import ComplexType, Schema, SimpleType
from repro.schema.registry import SchemaPair
from repro.schema.synthesis import canonical_value, minimal_tree
from repro.xmltree.dom import Document, Element, Text


@dataclass(frozen=True)
class RepairAction:
    """One repair performed on the document."""

    kind: str          # "insert" | "delete" | "relabel" | "retext" | ...
    path: str          # Dewey path of the affected node (post-repair)
    detail: str

    def __str__(self) -> str:
        return f"{self.kind:8s} at {self.path or '<root>'}: {self.detail}"


@dataclass
class RepairResult:
    """Outcome of a repair run."""

    document: Document
    actions: list[RepairAction] = field(default_factory=list)
    verification: Optional[ValidationReport] = None

    @property
    def changed(self) -> bool:
        return bool(self.actions)

    @property
    def edit_count(self) -> int:
        return len(self.actions)


class DocumentRepairer:
    """Corrects source-valid documents into target-valid ones."""

    def __init__(self, pair: SchemaPair, *, trust_source: bool = True):
        self.pair = pair
        self.target = pair.target
        #: When False, the source-validity promise is not assumed and no
        #: subsumption skip is taken — every subtree is examined.
        self.trust_source = trust_source

    @classmethod
    def for_schema(cls, target: Schema) -> "DocumentRepairer":
        """Repair arbitrary documents against one schema — no source
        knowledge, so nothing is skipped."""
        return cls(SchemaPair(target, target), trust_source=False)

    # -- entry point -----------------------------------------------------

    def repair(self, document: Document) -> RepairResult:
        """A corrected deep copy of ``document`` plus the action log.

        Raises :class:`SchemaError` when no correction exists (the
        target accepts no document with any permitted root label).
        """
        working = document.copy()
        result = RepairResult(document=working)
        root = working.root
        target_type = self.target.root_type(root.label)
        if target_type is None:
            root_label, target_type = self._pick_root()
            result.actions.append(
                RepairAction(
                    "relabel", "", f"root {root.label!r} -> {root_label!r}"
                )
            )
            root.label = root_label
        source_type = (
            self.pair.source.root_type(document.root.label)
            if self.trust_source
            else None
        )
        self._repair_element(source_type, target_type, root, result)
        result.verification = validate_document(self.target, working)
        if not result.verification.valid:  # pragma: no cover - invariant
            raise SchemaError(
                "repair failed to produce a valid document: "
                f"{result.verification.reason}"
            )
        return result

    def _pick_root(self) -> tuple[str, str]:
        from repro.schema.productive import productive_types

        productive = productive_types(self.target)
        for label in sorted(self.target.roots):
            type_name = self.target.roots[label]
            if type_name in productive:
                return label, type_name
        raise SchemaError("the target schema accepts no document at all")

    # -- recursive repair ----------------------------------------------------

    def _repair_element(
        self,
        source_type: Optional[str],
        target_type: str,
        element: Element,
        result: RepairResult,
    ) -> None:
        if source_type is not None and self.pair.is_subsumed(
            source_type, target_type
        ):
            return  # valid as-is, untouched
        declaration = self.target.type(target_type)
        if isinstance(declaration, SimpleType):
            self._repair_simple(declaration, element, result)
            return
        assert isinstance(declaration, ComplexType)
        self._repair_complex(source_type, declaration, element, result)

    def _repair_simple(
        self,
        declaration: SimpleType,
        element: Element,
        result: RepairResult,
    ) -> None:
        from repro.core.validator import _is_reserved_attribute

        for name in [
            n for n in element.attributes if not _is_reserved_attribute(n)
        ]:
            del element.attributes[name]
            result.actions.append(
                RepairAction(
                    "delattr", str(element.dewey()),
                    f"removed attribute {name!r} from simple-typed "
                    "element",
                )
            )
        removed = [c for c in element.children if isinstance(c, Element)]
        for child in removed:
            element.remove(child)
            result.actions.append(
                RepairAction(
                    "delete", str(element.dewey()),
                    f"removed element child <{child.label}> of "
                    f"simple-typed element",
                )
            )
        text = element.text()
        if not declaration.validate(text):
            replacement = canonical_value(declaration)
            for child in list(element.children):
                element.remove(child)
            if replacement:
                element.append(Text(replacement))
            result.actions.append(
                RepairAction(
                    "retext", str(element.dewey()),
                    f"{text!r} -> {replacement!r} "
                    f"({declaration.name})",
                )
            )

    def _repair_attributes(
        self,
        declaration: ComplexType,
        element: Element,
        result: RepairResult,
    ) -> None:
        from repro.core.validator import _is_reserved_attribute

        declared = declaration.attributes
        for name in [
            n for n in element.attributes
            if not _is_reserved_attribute(n) and n not in declared
        ]:
            del element.attributes[name]
            result.actions.append(
                RepairAction(
                    "delattr", str(element.dewey()),
                    f"removed undeclared attribute {name!r}",
                )
            )
        for name, attr in declared.items():
            value_type = self.target.type(attr.type_name)
            assert isinstance(value_type, SimpleType)
            present = name in element.attributes
            if present and value_type.validate(element.attributes[name]):
                continue
            if not present and not attr.required:
                continue
            replacement = canonical_value(value_type)
            old = element.attributes.get(name)
            element.attributes[name] = replacement
            detail = (
                f"{name}={old!r} -> {replacement!r}"
                if present
                else f"added required {name}={replacement!r}"
            )
            result.actions.append(
                RepairAction("setattr", str(element.dewey()), detail)
            )

    def _repair_complex(
        self,
        source_type: Optional[str],
        declaration: ComplexType,
        element: Element,
        result: RepairResult,
    ) -> None:
        self._repair_attributes(declaration, element, result)
        # Character data has no place in element content.
        for child in [c for c in element.children if isinstance(c, Text)]:
            if child.value.strip():
                result.actions.append(
                    RepairAction(
                        "delete", str(element.dewey()),
                        f"removed character data {child.value[:20]!r} "
                        "from element content",
                    )
                )
            element.remove(child)

        children: list[Element] = [
            c for c in element.children if isinstance(c, Element)
        ]
        labels = [c.label for c in children]
        dfa = self._productive_dfa(declaration)
        outcome = language_edit_distance(dfa, labels)
        if outcome is None:  # pragma: no cover - productive by invariant
            raise SchemaError(
                f"type {declaration.name!r} accepts no content at all"
            )
        _, ops = outcome
        fabricated_ids: set[int] = set()   # already target-valid, skip
        relabelled_ids: set[int] = set()   # original content, no source info
        for op in ops:
            if isinstance(op, Insert):
                child_type = declaration.child_types[op.symbol]
                fabricated = minimal_tree(self.target, child_type, op.symbol)
                self._insert_child(element, children, op.position, fabricated)
                fabricated_ids.add(id(fabricated))
                result.actions.append(
                    RepairAction(
                        "insert", str(fabricated.dewey()),
                        f"fabricated required <{op.symbol}> "
                        f"({child_type})",
                    )
                )
            elif isinstance(op, Delete):
                victim = children.pop(op.position)
                element.remove(victim)
                result.actions.append(
                    RepairAction(
                        "delete", str(element.dewey()),
                        f"removed disallowed <{victim.label}>",
                    )
                )
            else:
                assert isinstance(op, Replace)
                node = children[op.position]
                result.actions.append(
                    RepairAction(
                        "relabel", str(node.dewey()),
                        f"<{node.label}> -> <{op.symbol}>",
                    )
                )
                node.label = op.symbol
                relabelled_ids.add(id(node))

        source_decl = (
            self.pair.source.type(source_type)
            if source_type is not None
            else None
        )
        for child in children:
            if id(child) in fabricated_ids:
                continue  # minimal_tree output is target-valid already
            child_target = declaration.child_types[child.label]
            if id(child) in relabelled_ids or not isinstance(
                source_decl, ComplexType
            ):
                child_source: Optional[str] = None
            else:
                child_source = source_decl.child_types.get(child.label)
            self._repair_element(child_source, child_target, child, result)

    def _insert_child(
        self,
        element: Element,
        children: list[Element],
        position: int,
        fabricated: Element,
    ) -> None:
        """Insert among the *element* children at ``position``."""
        if position >= len(children):
            element.append(fabricated)
            children.append(fabricated)
            return
        anchor = children[position]
        element.insert(anchor.index, fabricated)
        children.insert(position, fabricated)

    def _productive_dfa(self, declaration: ComplexType):
        """The content DFA restricted to productive child labels, so the
        repair never inserts a label whose subtree cannot be built."""
        from repro.schema.productive import productive_types
        from repro.remodel.toregex import restrict_language

        dfa = self.target.content_dfa(declaration.name)
        productive = productive_types(self.target)
        allowed = frozenset(
            label
            for label, child in declaration.child_types.items()
            if child in productive
        )
        if allowed == declaration.content.symbols():
            return dfa
        return restrict_language(dfa, allowed)
