"""Kernel backend selection for the validation hot loops.

The validation kernel has two interchangeable backends:

* ``py`` — pure-python walks over the flat tables (always available).
* ``compiled`` — a small C extension (:mod:`repro.kernel.build`
  compiles ``_kernel.c`` on demand with the platform C compiler) that
  performs the same flat-table walks and leaf-tag lexing in C.

Selection is by the ``REPRO_KERNEL`` environment variable, read once at
import:

* ``py`` (default, also ``python``/``pure``) — pure-python.
* ``compiled`` (also ``c``) — build/load the extension; on *any*
  failure (no compiler, no headers, bad build) fall back to pure
  python and record the reason in :data:`BUILD_ERROR`.
* ``auto`` — same as ``compiled``.

Both backends are verdict- and stats-identical by construction; the
equivalence fuzzer in ``tests/core/test_kernel_equivalence.py`` and the
dual-backend CI matrix hold them to that.

Hot loops read :data:`C` (the extension module, or ``None``) through
this module on each call, so :func:`activate` can switch backends at
runtime for tests and benchmarks.
"""

from __future__ import annotations

import importlib.util
import os
from importlib.machinery import ExtensionFileLoader
from typing import Optional

from repro.kernel.build import KernelBuildError, ensure_built

__all__ = [
    "BACKEND",
    "BUILD_ERROR",
    "C",
    "KernelBuildError",
    "activate",
    "backend_name",
    "load_compiled",
]

#: The active backend name: ``"py"`` or ``"compiled"``.
BACKEND: str = "py"

#: The loaded extension module when the compiled backend is active,
#: else ``None``.  Hot loops branch on this.
C = None

#: Why the compiled backend was requested but not activated (or None).
BUILD_ERROR: Optional[BaseException] = None


def load_compiled():
    """Build (if needed), load, and self-test the C extension.

    Returns the extension module; raises :class:`KernelBuildError` when
    it cannot be built or fails the smoke test.
    """
    path = ensure_built()
    loader = ExtensionFileLoader("_kernel", path)
    spec = importlib.util.spec_from_loader("_kernel", loader, origin=path)
    module = importlib.util.module_from_spec(spec)
    try:
        loader.exec_module(module)
    except Exception as error:
        raise KernelBuildError(
            f"built kernel at {path!r} failed to load: {error}"
        ) from error
    _self_test(module)
    return module


def _self_test(module) -> None:
    """One tiny walk through each entry point guards against a stale or
    mis-built cache object answering garbage."""
    from array import array

    # Two states over a two-symbol alphabet: 0 --a--> 1 (final).
    table = array("i", [1, -1, -1, -1])
    flags = bytes([0, 1])
    ok = (
        module.dfa_run(table, 2, 0, [0]) == 1
        and module.dfa_run(table, 2, 0, [1]) == -1
        and module.imm_decide(table, flags, 2, 0, [0]) is True
        and module.imm_scan(table, flags, 2, 0, [0]) == (True, 1, False, 1)
        and module.leaf_scan("<a>x</a>", 0) == ("a", "x", 3, 8)
        and module.leaf_scan("<a b='c'>x</a>", 0) is None
    )
    if not ok:
        raise KernelBuildError("kernel extension failed its self-test")


def activate(name: str) -> str:
    """Force a backend at runtime (tests and benchmarks).

    ``activate("py")`` always succeeds; ``activate("compiled")`` raises
    :class:`KernelBuildError` when the extension cannot be built.
    Returns the now-active backend name.
    """
    global BACKEND, C, BUILD_ERROR
    if name in ("py", "python", "pure"):
        BACKEND, C = "py", None
        return BACKEND
    if name in ("compiled", "c", "auto"):
        module = load_compiled()
        BACKEND, C, BUILD_ERROR = "compiled", module, None
        return BACKEND
    raise ValueError(f"unknown kernel backend {name!r}")


def backend_name() -> str:
    """The active backend, for bench records and stats stamps."""
    return BACKEND


def _initialize() -> None:
    global BACKEND, C, BUILD_ERROR
    want = os.environ.get("REPRO_KERNEL", "py").strip().lower() or "py"
    if want in ("compiled", "c", "auto"):
        try:
            C = load_compiled()
            BACKEND = "compiled"
        except Exception as error:
            BUILD_ERROR = error
            BACKEND, C = "py", None
    else:
        BACKEND, C = "py", None


_initialize()
