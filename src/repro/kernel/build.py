"""Build-on-demand for the optional compiled kernel extension.

The C source in ``_kernel.c`` is tiny and has no dependencies beyond
``Python.h``, so it is compiled directly with the platform C compiler —
no setuptools build step, no wheel, no install hook.  The build product
is cached under a content-addressed name (source hash + interpreter
version + platform), so editing the C source or switching interpreters
rebuilds automatically and concurrent builders race benignly: both
write a temp file and ``os.replace`` it into place.

Nothing here runs unless the ``compiled`` backend is requested (see
:mod:`repro.kernel`); a missing compiler or failed compile surfaces as
:class:`KernelBuildError`, which the backend selector turns into a
pure-python fallback.
"""

from __future__ import annotations

import hashlib
import os
import shlex
import subprocess
import sys
import sysconfig
import tempfile

from repro.errors import ReproError


class KernelBuildError(ReproError):
    """The compiled kernel extension could not be built (no compiler,
    compile error, or unusable build product)."""

    code = "kernel-build-failed"


def source_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernel.c")


def cache_dir() -> str:
    """Where built extensions live; override with REPRO_KERNEL_CACHE."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-kernel")


def _build_key(source: str) -> str:
    digest = hashlib.sha256()
    with open(source, "rb") as handle:
        digest.update(handle.read())
    digest.update(sys.version.encode("utf-8"))
    digest.update(sys.platform.encode("utf-8"))
    return digest.hexdigest()[:24]


def _compiler_command() -> list[str]:
    """The C compiler invocation prefix, from sysconfig when available."""
    cc = sysconfig.get_config_var("CC") or ""
    command = shlex.split(cc) if cc else []
    if not command:
        command = ["cc"]
    return command


def ensure_built(*, verbose: bool = False) -> str:
    """Compile ``_kernel.c`` if needed; return the shared-object path.

    Raises :class:`KernelBuildError` on any failure.  A cached build for
    the same (source, interpreter, platform) triple is returned without
    invoking the compiler at all.
    """
    source = source_path()
    if not os.path.exists(source):
        raise KernelBuildError(f"kernel source missing at {source!r}")
    directory = cache_dir()
    output = os.path.join(directory, f"_kernel-{_build_key(source)}.so")
    if os.path.exists(output):
        return output
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as error:
        raise KernelBuildError(
            f"cannot create kernel cache dir {directory!r}: {error}"
        ) from error
    include = sysconfig.get_paths().get("include")
    if not include or not os.path.exists(os.path.join(include, "Python.h")):
        raise KernelBuildError(
            f"Python.h not found under {include!r}; no C toolchain headers"
        )
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".so.tmp")
    os.close(fd)
    command = _compiler_command() + [
        "-O2",
        "-fPIC",
        "-shared",
        "-I",
        include,
        source,
        "-o",
        temp_path,
    ]
    try:
        proc = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError) as error:
        _unlink(temp_path)
        raise KernelBuildError(
            f"cannot run C compiler {command[0]!r}: {error}"
        ) from error
    if proc.returncode != 0:
        detail = proc.stdout.decode("utf-8", "replace").strip()
        _unlink(temp_path)
        raise KernelBuildError(
            f"kernel compile failed (exit {proc.returncode}): {detail[:2000]}"
        )
    if verbose:
        print(f"built kernel extension: {' '.join(command)}", file=sys.stderr)
    os.replace(temp_path, output)
    return output


def _unlink(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
