/* Compiled kernel for flat-table automaton walks and leaf lexing.
 *
 * The Python side (repro.automata.compiled, repro.core.castkernel)
 * stores transition tables as contiguous arrays of C ints in
 * state-major order: the successor of state q on symbol sid lives at
 * table[q * width + sid], with -1 as the reject sentinel.  Per-state
 * properties are a parallel bytes object of flag bits.  Every function
 * here replicates the pure-python walk bit for bit — same sentinel
 * handling, same IA-before-IR decision order, same counters — so the
 * two backends are interchangeable verdict- and stats-wise.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define FLAG_FINAL 1
#define FLAG_IA 2
#define FLAG_IR 4

/* Simplified XML 1.0 name characters, matching NAME_PATTERN in
 * repro.xmltree.lexer: start [A-Za-z_:], continue adds [0-9.-]. */
static int
name_start_char(Py_UCS4 ch)
{
    return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
           ch == '_' || ch == ':';
}

static int
name_char(Py_UCS4 ch)
{
    return name_start_char(ch) || (ch >= '0' && ch <= '9') ||
           ch == '.' || ch == '-';
}

static int
get_table(PyObject *obj, Py_buffer *view, const int **data,
          Py_ssize_t width, Py_ssize_t *nstates)
{
    if (PyObject_GetBuffer(obj, view, PyBUF_SIMPLE) < 0)
        return -1;
    *data = (const int *)view->buf;
    *nstates = width > 0 ? view->len / (Py_ssize_t)sizeof(int) / width : 0;
    return 0;
}

/* dfa_run(table, width, state, ids) -> end state, or -1 on reject. */
static PyObject *
kernel_dfa_run(PyObject *self, PyObject *args)
{
    PyObject *table_obj, *ids_obj;
    Py_ssize_t width;
    long state;
    if (!PyArg_ParseTuple(args, "OnlO", &table_obj, &width, &state, &ids_obj))
        return NULL;
    Py_buffer view;
    const int *table;
    Py_ssize_t nstates;
    if (get_table(table_obj, &view, &table, width, &nstates) < 0)
        return NULL;
    PyObject *seq = PySequence_Fast(ids_obj, "ids must be a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&view);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        long sid = PyLong_AsLong(items[i]);
        if (sid == -1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            PyBuffer_Release(&view);
            return NULL;
        }
        if (sid < 0 || sid >= width || state < 0 || state >= nstates) {
            state = -1;
            break;
        }
        state = table[state * width + sid];
        if (state < 0) {
            state = -1;
            break;
        }
    }
    Py_DECREF(seq);
    PyBuffer_Release(&view);
    return PyLong_FromLong(state);
}

/* imm_decide(table, flags, width, state, ids) -> bool verdict.
 * IA checked before IR, both before consuming the symbol. */
static PyObject *
kernel_imm_decide(PyObject *self, PyObject *args)
{
    PyObject *table_obj, *ids_obj;
    Py_ssize_t width, flag_len;
    long state;
    const char *flags;
    if (!PyArg_ParseTuple(args, "Oy#nlO", &table_obj, &flags, &flag_len,
                          &width, &state, &ids_obj))
        return NULL;
    Py_buffer view;
    const int *table;
    Py_ssize_t nstates;
    if (get_table(table_obj, &view, &table, width, &nstates) < 0)
        return NULL;
    if (flag_len < nstates)
        nstates = flag_len;
    PyObject *seq = PySequence_Fast(ids_obj, "ids must be a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&view);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    int verdict = -2; /* -2: ran off the word, consult FINAL */
    for (Py_ssize_t i = 0; i < n; i++) {
        if (state < 0 || state >= nstates) {
            verdict = 0;
            break;
        }
        unsigned char f = (unsigned char)flags[state];
        if (f & FLAG_IA) {
            verdict = 1;
            break;
        }
        if (f & FLAG_IR) {
            verdict = 0;
            break;
        }
        long sid = PyLong_AsLong(items[i]);
        if (sid == -1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            PyBuffer_Release(&view);
            return NULL;
        }
        if (sid < 0 || sid >= width) {
            verdict = 0;
            break;
        }
        state = table[state * width + sid];
        if (state < 0) {
            verdict = 0;
            break;
        }
    }
    if (verdict == -2)
        verdict = (state >= 0 && state < nstates &&
                   (flags[state] & FLAG_FINAL)) ? 1 : 0;
    Py_DECREF(seq);
    PyBuffer_Release(&view);
    if (verdict)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

/* imm_scan(table, flags, width, state, ids)
 *   -> (accepted, symbols_scanned, early, state)
 * with the same counting semantics as CompiledImmediate.scan. */
static PyObject *
kernel_imm_scan(PyObject *self, PyObject *args)
{
    PyObject *table_obj, *ids_obj;
    Py_ssize_t width, flag_len;
    long state;
    const char *flags;
    if (!PyArg_ParseTuple(args, "Oy#nlO", &table_obj, &flags, &flag_len,
                          &width, &state, &ids_obj))
        return NULL;
    Py_buffer view;
    const int *table;
    Py_ssize_t nstates;
    if (get_table(table_obj, &view, &table, width, &nstates) < 0)
        return NULL;
    if (flag_len < nstates)
        nstates = flag_len;
    PyObject *seq = PySequence_Fast(ids_obj, "ids must be a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&view);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    Py_ssize_t scanned = 0;
    int accepted = 0;
    int early = 0;
    int decided = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        unsigned char f = (state >= 0 && state < nstates)
                              ? (unsigned char)flags[state]
                              : 0;
        if (f & FLAG_IA) {
            accepted = 1;
            early = 1;
            decided = 1;
            break;
        }
        if (f & FLAG_IR) {
            accepted = 0;
            early = 1;
            decided = 1;
            break;
        }
        long sid = PyLong_AsLong(items[i]);
        if (sid == -1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            PyBuffer_Release(&view);
            return NULL;
        }
        long next_state = -1;
        if (sid >= 0 && sid < width && state >= 0 && state < nstates)
            next_state = table[state * width + sid];
        if (next_state < 0) {
            accepted = 0;
            early = 1;
            decided = 1;
            scanned += 1;
            break;
        }
        state = next_state;
        scanned += 1;
    }
    if (!decided)
        accepted = (state >= 0 && state < nstates &&
                    (flags[state] & FLAG_FINAL)) ? 1 : 0;
    Py_DECREF(seq);
    PyBuffer_Release(&view);
    return Py_BuildValue("OnOl", accepted ? Py_True : Py_False, scanned,
                         early ? Py_True : Py_False, state);
}

/* leaf_scan(text, pos) -> (name, value, value_start, end) or None.
 *
 * Recognizes exactly what the pure-python leaf fast-path regex does:
 *   < NAME > [^<&\]]* </ NAME [ \t\r\n]* >
 * i.e. an attribute-free start tag immediately followed by entity-free
 * bracket-free text and the matching close tag.  Anything else returns
 * None and the caller takes the general path.
 */
static PyObject *
kernel_leaf_scan(PyObject *self, PyObject *args)
{
    PyObject *text_obj;
    Py_ssize_t pos;
    if (!PyArg_ParseTuple(args, "Un", &text_obj, &pos))
        return NULL;
    Py_ssize_t n = PyUnicode_GET_LENGTH(text_obj);
    int kind = PyUnicode_KIND(text_obj);
    const void *data = PyUnicode_DATA(text_obj);
    Py_ssize_t i = pos;
    if (i >= n || PyUnicode_READ(kind, data, i) != '<')
        Py_RETURN_NONE;
    i += 1;
    if (i >= n || !name_start_char(PyUnicode_READ(kind, data, i)))
        Py_RETURN_NONE;
    Py_ssize_t name_start = i;
    i += 1;
    while (i < n && name_char(PyUnicode_READ(kind, data, i)))
        i += 1;
    Py_ssize_t name_end = i;
    if (i >= n || PyUnicode_READ(kind, data, i) != '>')
        Py_RETURN_NONE;
    i += 1;
    Py_ssize_t value_start = i;
    while (i < n) {
        Py_UCS4 ch = PyUnicode_READ(kind, data, i);
        if (ch == '<' || ch == '&' || ch == ']')
            break;
        i += 1;
    }
    Py_ssize_t value_end = i;
    if (i >= n || PyUnicode_READ(kind, data, i) != '<')
        Py_RETURN_NONE;
    if (i + 1 >= n || PyUnicode_READ(kind, data, i + 1) != '/')
        Py_RETURN_NONE;
    i += 2;
    Py_ssize_t name_len = name_end - name_start;
    if (i + name_len > n)
        Py_RETURN_NONE;
    for (Py_ssize_t j = 0; j < name_len; j++) {
        if (PyUnicode_READ(kind, data, i + j) !=
            PyUnicode_READ(kind, data, name_start + j))
            Py_RETURN_NONE;
    }
    i += name_len;
    /* The close-tag name must end here (not be a longer name). */
    if (i < n && name_char(PyUnicode_READ(kind, data, i)))
        Py_RETURN_NONE;
    while (i < n) {
        Py_UCS4 ch = PyUnicode_READ(kind, data, i);
        if (ch != ' ' && ch != '\t' && ch != '\r' && ch != '\n')
            break;
        i += 1;
    }
    if (i >= n || PyUnicode_READ(kind, data, i) != '>')
        Py_RETURN_NONE;
    i += 1;
    PyObject *name = PyUnicode_Substring(text_obj, name_start, name_end);
    if (name == NULL)
        return NULL;
    PyObject *value = PyUnicode_Substring(text_obj, value_start, value_end);
    if (value == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    PyObject *result = Py_BuildValue("NNnn", name, value, value_start, i);
    return result;
}

static PyMethodDef kernel_methods[] = {
    {"dfa_run", kernel_dfa_run, METH_VARARGS,
     "dfa_run(table, width, state, ids) -> end state or -1"},
    {"imm_decide", kernel_imm_decide, METH_VARARGS,
     "imm_decide(table, flags, width, state, ids) -> bool"},
    {"imm_scan", kernel_imm_scan, METH_VARARGS,
     "imm_scan(table, flags, width, state, ids) -> "
     "(accepted, scanned, early, state)"},
    {"leaf_scan", kernel_leaf_scan, METH_VARARGS,
     "leaf_scan(text, pos) -> (name, value, value_start, end) or None"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "_kernel",
    "Compiled flat-table walks for the validation kernel.",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    return PyModule_Create(&kernel_module);
}
