"""Abstract XML Schema: the paper's (Σ, T, ρ, R) model, simple-type
facet algebra, subsumption/disjointness fixpoints, DTD and XSD
front-ends, and the preprocessed SchemaPair registry."""

from repro.schema.disjoint import compute_disjoint, compute_nondisjoint
from repro.schema.dtd import dtd_schema, is_dtd_schema, label_type, parse_dtd
from repro.schema.identity import (
    IdentityConstraint,
    check_identity,
    constraint,
    validate_with_constraints,
)
from repro.schema.model import (
    AttributeDecl,
    ComplexType,
    Schema,
    TypeDef,
    attribute,
    complex_type,
    is_complex,
    is_simple,
    schema,
)
from repro.schema.productive import (
    is_fully_productive,
    productive_types,
    prune_nonproductive,
)
from repro.schema.registry import SchemaPair
from repro.schema.simple import (
    BUILTINS,
    AtomicKind,
    Interval,
    SimpleType,
    builtin,
    restrict,
)
from repro.schema.subsumption import compute_subsumption
from repro.schema.synthesis import canonical_value, minimal_tree
from repro.schema.xsd import parse_xsd, parse_xsd_file, schema_from_document

__all__ = [
    "compute_disjoint",
    "compute_nondisjoint",
    "dtd_schema",
    "is_dtd_schema",
    "label_type",
    "parse_dtd",
    "IdentityConstraint",
    "check_identity",
    "constraint",
    "validate_with_constraints",
    "AttributeDecl",
    "ComplexType",
    "Schema",
    "TypeDef",
    "attribute",
    "complex_type",
    "is_complex",
    "is_simple",
    "schema",
    "is_fully_productive",
    "productive_types",
    "prune_nonproductive",
    "SchemaPair",
    "BUILTINS",
    "AtomicKind",
    "Interval",
    "SimpleType",
    "builtin",
    "restrict",
    "compute_subsumption",
    "canonical_value",
    "minimal_tree",
    "parse_xsd",
    "parse_xsd_file",
    "schema_from_document",
]
